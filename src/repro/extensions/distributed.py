"""GGraphCon on a distributed cluster (Section IV-B's second remark).

"In these system settings, each working unit can be individually
responsible for the construction of one local graph and the search of
nearest neighbors of one point in the merged local graph in each
iteration."  Here the working units are cluster workers, and — unlike
the multi-core case — moving data between units costs real time, so the
simulation adds an explicit network model:

- Phase 1 needs no communication: workers build disjoint local graphs.
- Each merge iteration is a round: the coordinator *broadcasts* the
  rows G_0 gained in the previous round, workers search their share of
  the group in parallel, and the resulting backward-edge list is
  *gathered* back.

The algorithm itself is byte-identical to the GPU/multicore paths (the
graphs match edge-for-edge); the point of the module is the cost
structure: construction becomes latency-bound when rounds are small and
bandwidth-bound when ``d_max`` grows, which is exactly the trade-off a
practitioner sizing such a cluster would need to see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.cpu_cost import CpuModel, DEFAULT_CPU
from repro.core.params import BuildParams
from repro.core.results import ConstructionReport
from repro.errors import ConstructionError
from repro.extensions.multicore import build_nsw_multicore
from repro.faults.plan import (
    FAULT_NETWORK_PARTITION,
    FAULT_WORKER_LOSS,
    FaultPlan,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.span import SpanTracer


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point cluster network.

    Attributes:
        bandwidth_gbps: Link bandwidth in gigabytes per second.
        latency_ms: One-way message latency in milliseconds.
    """

    bandwidth_gbps: float = 1.25   # ~10 GbE
    latency_ms: float = 0.05       # datacenter RTT/2

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConstructionError(
                f"bandwidth must be positive, got {self.bandwidth_gbps}"
            )
        if self.latency_ms < 0:
            raise ConstructionError(
                f"latency must be non-negative, got {self.latency_ms}"
            )

    def transfer_seconds(self, n_bytes: float) -> float:
        """One message of ``n_bytes``: latency + serialization."""
        return (self.latency_ms * 1e-3
                + n_bytes / (self.bandwidth_gbps * 1e9))

    def broadcast_seconds(self, n_bytes: float, n_workers: int) -> float:
        """Binomial-tree broadcast to ``n_workers`` receivers."""
        if n_workers <= 0:
            return 0.0
        rounds = max(int(np.ceil(np.log2(n_workers + 1))), 1)
        return rounds * self.transfer_seconds(n_bytes)

    def gather_seconds(self, n_bytes_total: float,
                       n_workers: int) -> float:
        """Gather of ``n_bytes_total`` spread over the workers."""
        if n_workers <= 0:
            return 0.0
        rounds = max(int(np.ceil(np.log2(n_workers + 1))), 1)
        return (rounds * self.latency_ms * 1e-3
                + n_bytes_total / (self.bandwidth_gbps * 1e9))


#: Bytes of one adjacency entry on the wire (id + distance).
_EDGE_BYTES = 12


def shard_ground_truth(points: np.ndarray, queries: np.ndarray,
                       assignment: np.ndarray, k: int,
                       metric: str = "euclidean"
                       ) -> List[Dict[str, np.ndarray]]:
    """Per-shard exact top-k in *global* ids, safe for small shards.

    The serving cluster's correctness story needs a reference answer
    per shard: what each shard *should* return for every query.  The
    subtlety is a shard holding fewer than ``k`` points — naively
    asking :func:`~repro.datasets.ground_truth.exact_knn` for ``k``
    neighbors there raises, and naively padding with repeats would
    inflate recall denominators downstream.  This helper clamps the
    request to the shard size and pads the tail with ``-1`` ids and
    ``inf`` distances — the padding convention
    :func:`repro.metrics.recall.recall_per_query` excludes from the
    denominator and the scatter-gather merge treats as losing every
    comparison.

    Args:
        points: ``(n, d)`` corpus in global id order.
        queries: ``(m, d)`` query matrix.
        assignment: ``(n,)`` shard index per global point id.
        k: Neighbors requested per query.
        metric: Metric name.

    Returns:
        One dict per shard with ``"ids"`` (``(m, k)`` int64 global
        ids, ``-1``-padded) and ``"dists"`` (``(m, k)`` float64,
        ``inf``-padded), both sorted by ``(distance, id)`` per row.

    Raises:
        ConstructionError: On an empty corpus, a non-positive ``k``,
            or an assignment that does not cover the corpus.
    """
    from repro.datasets.ground_truth import exact_knn

    points = np.asarray(points)
    queries = np.asarray(queries)
    assignment = np.asarray(assignment, dtype=np.int64)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape "
            f"{points.shape}"
        )
    if assignment.shape != (len(points),):
        raise ConstructionError(
            f"assignment shape {assignment.shape} does not cover "
            f"{len(points)} points"
        )
    if k <= 0:
        raise ConstructionError(f"k must be positive, got {k}")
    if assignment.min() < 0:
        raise ConstructionError("assignment contains negative shards")
    n_shards = int(assignment.max()) + 1
    m = len(queries)
    results: List[Dict[str, np.ndarray]] = []
    for shard in range(n_shards):
        members = np.flatnonzero(assignment == shard)
        ids = np.full((m, k), -1, dtype=np.int64)
        dists = np.full((m, k), np.inf, dtype=np.float64)
        if len(members):
            # Clamp: a shard with fewer than k points answers with
            # everything it has; the tail stays padding.
            k_eff = min(k, len(members))
            local_ids, local_dists = exact_knn(
                points[members], queries, k_eff, metric=metric,
                return_distances=True)
            ids[:, :k_eff] = members[local_ids]
            dists[:, :k_eff] = local_dists
        results.append({"ids": ids, "dists": dists})
    return results


def build_nsw_distributed(points: np.ndarray, params: BuildParams,
                          n_workers: int = 8, cores_per_worker: int = 4,
                          metric: str = "euclidean",
                          network: NetworkModel = NetworkModel(),
                          cpu: CpuModel = DEFAULT_CPU,
                          exact: bool = False,
                          fault_plan: Optional[FaultPlan] = None,
                          tracer: Optional[SpanTracer] = None,
                          metrics: Optional[MetricsRegistry] = None
                          ) -> ConstructionReport:
    """Build an NSW graph with GGraphCon across cluster workers.

    The compute schedule reuses the multicore engine with
    ``n_workers * cores_per_worker`` cores (work placement is identical);
    this function adds the per-round communication costs on top and
    reports them separately.

    With a ``fault_plan``, the cluster also survives injected
    infrastructure faults: a ``worker_loss`` event reassigns the dead
    worker's shard to a survivor (charging detection, the shard
    re-shipment, and the shard's re-execution), and a
    ``network_partition`` event stalls merge-round communication for
    its duration.  The resulting graph is byte-identical either way —
    failover costs time, never correctness.

    Args:
        points: ``(n, d)`` float matrix.
        params: Build parameters (``n_blocks`` = group count = rounds+1).
        n_workers: Cluster size.
        cores_per_worker: Cores each worker contributes.
        metric: Metric name.
        network: Cluster network model.
        cpu: Per-core timing model.
        exact: Exact-search (theorem) mode.
        fault_plan: Optional :class:`repro.faults.plan.FaultPlan` whose
            cluster-scope events (worker loss, network partition) are
            applied to the build timeline.
        tracer: Optional :class:`repro.observability.span.SpanTracer`;
            when given, the build emits a ``build.distributed`` span on
            the ``build`` lane with one child per timeline phase
            (local construction, failover, merge, communication) and
            attaches every cluster fault as a span event.
        metrics: Optional
            :class:`repro.observability.metrics.MetricsRegistry`; the
            build publishes ``build.*`` counters/gauges (workers,
            rounds, per-phase seconds, worker losses) that reconcile
            exactly with the returned report.

    Returns:
        A :class:`ConstructionReport` with ``phase_seconds`` split into
        compute, communication and failover, and per-round stats in
        ``details``.
    """
    if n_workers <= 0 or cores_per_worker <= 0:
        raise ConstructionError(
            f"n_workers and cores_per_worker must be positive, got "
            f"{n_workers}, {cores_per_worker}"
        )
    compute = build_nsw_multicore(points, params,
                                  n_cores=n_workers * cores_per_worker,
                                  metric=metric, cpu=cpu, exact=exact)
    n = len(points)
    n_groups = int(compute.details["n_groups"])
    group_size = n / n_groups
    d_max, d_min = params.d_max, params.d_min

    # Per merge round: broadcast the rows G_0 gained last round (the
    # previous group's adjacency rows), gather the new backward edges.
    broadcast_bytes = group_size * d_max * _EDGE_BYTES
    gather_bytes = group_size * d_min * _EDGE_BYTES
    per_round = (network.broadcast_seconds(broadcast_bytes, n_workers)
                 + network.gather_seconds(gather_bytes, n_workers))
    n_rounds = max(n_groups - 1, 0)
    comm_seconds = n_rounds * per_round
    # Phase 1 bootstrap: shipping each worker its point shard, once.
    shard_bytes = n * points.shape[1] * 4 / max(n_workers, 1)
    comm_seconds += network.broadcast_seconds(shard_bytes, n_workers)

    # Cluster-scope fault tolerance: worker failover and partitions.
    failover_seconds = 0.0
    partition_seconds = 0.0
    n_losses = 0
    loss_events: List = []
    partition_events: List = []
    if fault_plan is not None:
        local_seconds = compute.phase_seconds.get("local_construction",
                                                  0.0)
        shard_seconds = local_seconds / n_workers
        survivors = n_workers
        for event in fault_plan.cluster_events():
            if event.kind == FAULT_WORKER_LOSS:
                survivors -= 1
                if survivors <= 0:
                    raise ConstructionError(
                        f"fault plan kills all {n_workers} workers; "
                        f"no survivor can adopt the final shard"
                    )
                n_losses += 1
                loss_events.append(event)
                # Detection (missed heartbeat), shard re-shipment to a
                # survivor, then serial re-execution of the lost shard.
                failover_seconds += (
                    network.transfer_seconds(0.0)
                    + network.transfer_seconds(shard_bytes)
                    + shard_seconds)
            elif event.kind == FAULT_NETWORK_PARTITION:
                # Merge rounds block until the partition heals.
                partition_seconds += event.magnitude
                partition_events.append(event)

    phase_seconds: Dict[str, float] = dict(compute.phase_seconds)
    phase_seconds["communication"] = comm_seconds + partition_seconds
    if fault_plan is not None:
        phase_seconds["failover"] = failover_seconds
    total = (compute.seconds + comm_seconds + failover_seconds
             + partition_seconds)

    local_seconds = compute.phase_seconds.get("local_construction", 0.0)
    if metrics is not None:
        metrics.counter("build.builds").inc()
        metrics.counter("build.workers").inc(n_workers)
        metrics.counter("build.rounds").inc(n_rounds)
        metrics.counter("build.points").inc(n)
        metrics.counter("build.worker_losses").inc(n_losses)
        metrics.counter("build.comm_seconds").inc(comm_seconds)
        metrics.counter("build.failover_seconds").inc(failover_seconds)
        metrics.counter("build.partition_seconds").inc(
            partition_seconds)
        for phase, seconds in phase_seconds.items():
            metrics.counter(f"build.phase_seconds.{phase}").inc(seconds)
        metrics.gauge("build.total_seconds").set(total)
    if tracer is not None:
        # Lay the phases out sequentially on the simulated build
        # timeline (local shards, then failover recovery, then the
        # merge compute, then the round communication + any partition
        # stalls), exactly the additive structure ``total`` sums.
        root = tracer.begin(
            "build.distributed", 0.0, lane="build",
            attributes={"n_workers": n_workers,
                        "cores_per_worker": cores_per_worker,
                        "n_points": n, "n_rounds": n_rounds})
        cursor = 0.0
        end = cursor + local_seconds
        tracer.add("build.local_construction", cursor, end,
                   parent_id=root, lane="build",
                   attributes={"seconds": local_seconds})
        cursor = end
        if fault_plan is not None:
            end = cursor + failover_seconds
            span = tracer.add("build.failover", cursor, end,
                              parent_id=root, lane="build",
                              attributes={"n_worker_losses": n_losses})
            for event in loss_events:
                tracer.event(span, cursor, "worker_loss",
                             {"kind": event.kind,
                              "scheduled_seconds": event.at_seconds})
            cursor = end
        merge_seconds = max(compute.seconds - local_seconds, 0.0)
        end = cursor + merge_seconds
        tracer.add("build.merge", cursor, end, parent_id=root,
                   lane="build", attributes={"n_rounds": n_rounds})
        cursor = end
        end = cursor + comm_seconds + partition_seconds
        span = tracer.add("build.communication", cursor, end,
                          parent_id=root, lane="build",
                          attributes={
                              "comm_seconds": comm_seconds,
                              "partition_seconds": partition_seconds})
        for event in partition_events:
            tracer.event(span, cursor, "network_partition",
                         {"kind": event.kind,
                          "scheduled_seconds": event.at_seconds,
                          "stall_seconds": event.magnitude})
        tracer.end(root, end, attributes={"total_seconds": total})

    return ConstructionReport(
        algorithm="ggraphcon-distributed",
        graph=compute.graph,
        seconds=total,
        phase_seconds=phase_seconds,
        n_points=n,
        details={
            "n_workers": float(n_workers),
            "cores_per_worker": float(cores_per_worker),
            "n_rounds": float(n_rounds),
            "comm_seconds": comm_seconds,
            "compute_seconds": compute.seconds,
            "n_worker_losses": float(n_losses),
            "failover_seconds": failover_seconds,
            "partition_seconds": partition_seconds,
        },
    )
