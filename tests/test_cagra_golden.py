"""Golden-file determinism for the CAGRA family, frozen byte-for-byte.

Pins two artifacts of the frozen scenario against
``tests/data/cagra_golden.npz``:

* the built graph's :func:`~repro.graphs.stats.graph_digest` (any bit
  of adjacency that moves — a changed detour count, a different
  tie-break in the reverse merge — changes the digest), and
* the GANNS search ids/dists over that graph.

Any change that shifts either must be a conscious act:

    PYTHONPATH=src python scripts/regen_golden.py --cagra
"""

import os

import numpy as np

from repro.core.cagra import build_cagra_gpu
from repro.core.ganns import ganns_search
from repro.core.params import BuildParams, SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.graphs.stats import graph_digest

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "cagra_golden.npz")

#: The frozen scenario.  Never change these values without regenerating
#: the golden file (and saying so in the commit message).
N_POINTS = 300
N_QUERIES = 25
N_DIMS = 16
SEED_POINTS = 52
SEED_QUERIES = 53
BUILD = BuildParams(d_min=8, d_max=16, seed=11)
SEARCH = SearchParams(k=10, l_n=32, e=24)


def compute_golden():
    """Run the frozen scenario from scratch (dataset, graph, search)."""
    points = gaussian_mixture(N_POINTS, N_DIMS, n_clusters=6,
                              cluster_std=0.3, intrinsic_dim=6,
                              seed=SEED_POINTS)
    queries = gaussian_mixture(N_QUERIES, N_DIMS, n_clusters=6,
                               cluster_std=0.3, intrinsic_dim=6,
                               seed=SEED_QUERIES)
    graph = build_cagra_gpu(points, BUILD).graph
    report = ganns_search(graph, points, queries, SEARCH)
    return graph, report.ids, report.dists


def write_golden(graph, ids, dists):
    """(Re)write the committed artifact; used by scripts/regen_golden.py."""
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    np.savez(GOLDEN_PATH,
             digest=np.array(graph_digest(graph)),
             ids=ids, dists=dists)


class TestCagraGolden:
    def test_golden_file_is_committed(self):
        assert os.path.exists(GOLDEN_PATH), (
            f"golden file missing at {GOLDEN_PATH}; regenerate with "
            f"PYTHONPATH=src python scripts/regen_golden.py --cagra"
        )

    def test_build_and_search_match_golden_byte_for_byte(self):
        graph, ids, dists = compute_golden()
        with np.load(GOLDEN_PATH) as golden:
            golden_digest = str(golden["digest"])
            golden_ids = golden["ids"]
            golden_dists = golden["dists"]
        assert graph_digest(graph) == golden_digest
        assert ids.dtype == golden_ids.dtype
        assert dists.dtype == golden_dists.dtype
        assert ids.tobytes() == golden_ids.tobytes()
        assert dists.tobytes() == golden_dists.tobytes()

    def test_back_to_back_builds_are_byte_identical(self):
        graph_a, ids_a, _ = compute_golden()
        graph_b, ids_b, _ = compute_golden()
        assert graph_digest(graph_a) == graph_digest(graph_b)
        assert ids_a.tobytes() == ids_b.tobytes()
