"""Tests for the single-core CPU timing model."""

import pytest

from repro.baselines.cpu_cost import CpuModel, CpuOpCounters, DEFAULT_CPU


class TestCounters:
    def test_add_accumulates(self):
        a = CpuOpCounters(n_distances=1, n_heap_ops=2, n_hash_probes=3,
                          n_adjacency_inserts=4)
        b = CpuOpCounters(n_distances=10, n_heap_ops=20, n_hash_probes=30,
                          n_adjacency_inserts=40)
        a.add(b)
        assert (a.n_distances, a.n_heap_ops, a.n_hash_probes,
                a.n_adjacency_inserts) == (11, 22, 33, 44)

    def test_default_zero(self):
        c = CpuOpCounters()
        assert c.n_distances == 0


class TestCpuModel:
    def test_distance_seconds(self):
        model = CpuModel(effective_flops=1e9)
        assert model.distance_seconds(1000, 1000) == pytest.approx(1e-3)

    def test_seconds_combines_all_costs(self):
        model = CpuModel(effective_flops=1e9, heap_op_ns=10,
                         hash_probe_ns=10, adjacency_insert_ns=10)
        counters = CpuOpCounters(n_distances=0, n_heap_ops=100,
                                 n_hash_probes=100,
                                 n_adjacency_inserts=100)
        assert model.seconds(counters, 384) == pytest.approx(3e-6)

    def test_calibration_magnitude(self):
        """The model must price one SIFT-like NSW insertion near the
        paper's measured 355 us (355 s / 1M points).  A typical insertion:
        ~50 beam iterations, ~1500 distances at 128 dims, ~3000 heap ops,
        ~1600 hash probes, 32 adjacency inserts."""
        counters = CpuOpCounters(n_distances=1500, n_heap_ops=3000,
                                 n_hash_probes=1600,
                                 n_adjacency_inserts=32)
        seconds = DEFAULT_CPU.seconds(counters, flops_per_distance=3 * 128)
        assert 150e-6 < seconds < 800e-6

    def test_distance_work_dominates(self):
        """Distance computation consumes over 95% of CPU search time
        (the SONG paper's premise, quoted in Section II-D)."""
        counters = CpuOpCounters(n_distances=1500, n_heap_ops=3000,
                                 n_hash_probes=1600,
                                 n_adjacency_inserts=32)
        total = DEFAULT_CPU.seconds(counters, flops_per_distance=3 * 128)
        distance = DEFAULT_CPU.distance_seconds(1500, 3 * 128)
        assert distance / total > 0.7
