"""Deadline fail-fast: hopeless requests never fan out.

Regression battery for the scatter-deadline bug: a request whose
deadline expires within one scatter round-trip used to be scattered
anyway, burning every shard on an answer that could only arrive dead.
Now the engine fails it fast with a typed
:class:`repro.errors.DeadlineExceededError` *before* fan-out — no
shard sub-trace entry, no round-robin pointer movement — and counts
it as ``ClusterStatus.DEADLINE`` in the report and the
``cluster.deadline_failfast`` metric.
"""

import numpy as np
import pytest

from repro.cluster import ClusterEngine, ClusterStatus
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import DeadlineExceededError, ServeError
from repro.observability import SpanTracer
from repro.serve import synthetic_trace
from repro.serve.request import QueryRequest

PARAMS = SearchParams(k=5, l_n=32)


def _corpus():
    points = gaussian_mixture(240, 12, n_clusters=3, cluster_std=0.4,
                              seed=31)
    pool = gaussian_mixture(30, 12, n_clusters=3, cluster_std=0.4,
                            seed=32)
    return points, pool


def _engine(points, **kwargs):
    return ClusterEngine(points, n_shards=3, n_replicas=2,
                         params=PARAMS, **kwargs)


def test_deadline_error_is_typed():
    assert issubclass(DeadlineExceededError, ServeError)


def test_hopeless_deadline_fails_fast_before_fanout():
    points, pool = _corpus()
    trace = synthetic_trace(pool, 40, mean_qps=20_000.0, seed=1)
    engine = _engine(points, default_deadline_seconds=1e-9)
    report = engine.replay(trace)
    assert report.n_deadline_failfast == len(trace)
    for outcome in report.outcomes:
        assert outcome.status == ClusterStatus.DEADLINE
        assert outcome.ids is None
        assert outcome.dists is None
        assert outcome.scatter_seconds == 0.0
        assert "DeadlineExceededError" in outcome.detail
    report.verify_against_metrics()
    # Nothing ever reached a shard.
    assert report.metrics.value("cluster.shard_queries",
                                 default=0.0) == 0.0


def test_generous_deadline_still_serves():
    points, pool = _corpus()
    trace = synthetic_trace(pool, 40, mean_qps=20_000.0, seed=1)
    engine = _engine(points, default_deadline_seconds=0.5)
    report = engine.replay(trace)
    assert report.n_deadline_failfast == 0
    assert report.n_served == len(trace)
    report.verify_against_metrics()


def test_per_request_deadline_overrides_default():
    points, pool = _corpus()
    doomed = QueryRequest(request_id=0, queries=pool[0],
                          arrival_seconds=1e-4,
                          deadline_seconds=1e-9)
    healthy = QueryRequest(request_id=1, queries=pool[1],
                           arrival_seconds=2e-4)
    engine = _engine(points, default_deadline_seconds=0.5)
    report = engine.replay((doomed, healthy))
    assert report.outcomes[0].status == ClusterStatus.DEADLINE
    assert report.outcomes[1].status == ClusterStatus.SERVED
    assert report.n_deadline_failfast == 1
    report.verify_against_metrics()


def test_failfast_does_not_perturb_routing_of_survivors():
    """Answers of surviving requests are identical whether or not a
    doomed request sat between them — fail-fast happens before any
    router state advances."""
    points, pool = _corpus()
    survivors = [QueryRequest(request_id=i, queries=pool[i],
                              arrival_seconds=1e-4 * (i + 1))
                 for i in range(6)]
    doomed = QueryRequest(request_id=99, queries=pool[10],
                          arrival_seconds=2.5e-4,
                          deadline_seconds=1e-9)
    with_doomed = sorted(survivors + [doomed],
                         key=lambda r: r.arrival_seconds)
    engine_a = _engine(points)
    clean = engine_a.replay(tuple(survivors))
    engine_b = _engine(points)
    mixed = engine_b.replay(tuple(with_doomed))
    mixed_by_id = {req.request_id: out
                   for req, out in zip(with_doomed, mixed.outcomes)}
    for req, out in zip(survivors, clean.outcomes):
        other = mixed_by_id[req.request_id]
        assert other.status == out.status
        assert np.array_equal(other.ids, out.ids)
        assert np.array_equal(other.dists, out.dists)


def test_deadline_outcomes_skip_scatter_spans():
    points, pool = _corpus()
    trace = synthetic_trace(pool, 20, mean_qps=20_000.0, seed=2)
    tracer = SpanTracer()
    engine = _engine(points, default_deadline_seconds=1e-9)
    report = engine.replay(trace, tracer=tracer)
    tracer.finish()
    tracer.validate()
    names = [span.name for span in tracer.spans]
    assert "cluster.scatter" not in names
    assert report.n_deadline_failfast == len(trace)


def test_deadline_failfast_is_deterministic():
    points, pool = _corpus()
    trace = synthetic_trace(pool, 40, mean_qps=20_000.0, seed=3)
    engine = _engine(points, default_deadline_seconds=1e-9)
    assert engine.replay(trace).to_bytes() == \
        engine.replay(trace).to_bytes()


def test_summary_counts_deadline_failfast():
    points, pool = _corpus()
    trace = synthetic_trace(pool, 10, mean_qps=20_000.0, seed=4)
    engine = _engine(points, default_deadline_seconds=1e-9)
    report = engine.replay(trace)
    assert "deadline" in report.summary()
