"""Property-based invariants for the mutable index (hypothesis).

Two families:

* **Snapshot isolation** — no mutation sequence, however shaped, may
  change what a pinned :class:`SnapshotHandle` returns, byte for byte.
* **Recall after delete** — with tombstoned ids masked out of the
  ground truth denominator, deletes must not silently destroy recall,
  and no tombstoned id may ever be returned.

Examples are kept small (corpus of ~80 points, d=8) because every
example pays for a full graph build; ``deadline=None`` for the same
reason.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.params import BuildParams, SearchParams
from repro.datasets.ground_truth import exact_knn
from repro.datasets.synthetic import gaussian_mixture
from repro.metrics.recall import mask_deleted_ground_truth, recall_at_k
from repro.mutable import MutableIndex, recover

# Denser than default_build_params(): the d_max=8 sim default leaves a
# tiny clustered corpus weakly connected (baseline recall ~0.35 with
# zero deletes), which would drown the recall-after-delete signal.
PARAMS = BuildParams(d_min=8, d_max=16, n_blocks=4, n_threads=32)
SEARCH = SearchParams(k=5, l_n=32)
N_BASE = 80
N_DIMS = 8

# An op is ("insert", batch_seed, batch_size) | ("delete", pick_seed)
# | ("compact",).  Seeds make the drawn sequence self-contained: the
# actual points/ids are derived deterministically at apply time.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 2**16),
                  st.integers(1, 6)),
        st.tuples(st.just("delete"), st.integers(0, 2**16)),
        st.tuples(st.just("compact")),
    ),
    min_size=1, max_size=6,
)

_SLOW = settings(max_examples=12, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _base_corpus(seed=0):
    return gaussian_mixture(N_BASE, N_DIMS, n_clusters=4,
                            seed=seed).astype(np.float64)


def _apply_ops(index, ops):
    """Replay a drawn op sequence; skipped ops return False."""
    now = 1.0
    for op in ops:
        if op[0] == "insert":
            _, batch_seed, batch_size = op
            rng = np.random.default_rng(batch_seed)
            index.insert(rng.standard_normal((batch_size, N_DIMS)),
                         now=now)
        elif op[0] == "delete":
            live = index.live_ids()
            if len(live) <= 1:
                continue
            rng = np.random.default_rng(op[1])
            n_del = int(min(1 + rng.integers(0, 3), len(live) - 1))
            ids = np.sort(rng.choice(live, size=n_del, replace=False))
            index.delete(ids, now=now)
        else:
            index.compact(now=now)
        now += 1.0


class TestSnapshotIsolation:
    @_SLOW
    @given(ops=_OPS, query_seed=st.integers(0, 2**16))
    def test_pinned_snapshot_is_immune_to_mutations(self, ops,
                                                    query_seed):
        index = MutableIndex.build(_base_corpus(), PARAMS)
        handle = index.snapshot()
        rng = np.random.default_rng(query_seed)
        queries = rng.standard_normal((3, N_DIMS))
        before = handle.search(queries, SEARCH)
        pinned = (before.ids.tobytes(), before.dists.tobytes())
        _apply_ops(index, ops)
        index.validate()
        after = handle.search(queries, SEARCH)
        assert (after.ids.tobytes(), after.dists.tobytes()) == pinned
        assert handle.digest() == handle.digest()

    @_SLOW
    @given(ops=_OPS)
    def test_recovery_replays_any_sequence_exactly(self, ops):
        """WAL replay equivalence is not just for the battery's
        hand-picked sequences — it holds for arbitrary ones."""
        index = MutableIndex.build(_base_corpus(), PARAMS)
        _apply_ops(index, ops)
        recovered = recover(index.store)
        assert recovered.digest() == index.digest()
        recovered.validate()


class TestRecallAfterDelete:
    @_SLOW
    @given(pick_seed=st.integers(0, 2**16),
           n_delete=st.integers(1, 20),
           compact=st.booleans())
    def test_deletes_never_return_tombstones_and_recall_survives(
            self, pick_seed, n_delete, compact):
        corpus = _base_corpus()
        index = MutableIndex.build(corpus, PARAMS)
        rng = np.random.default_rng(pick_seed)
        doomed = np.sort(rng.choice(N_BASE, size=n_delete,
                                    replace=False))
        index.delete(doomed, now=1.0)
        if compact:
            index.compact(now=2.0)
        # In-distribution queries: jittered corpus points.  Far-away
        # N(0,1) queries see near-equidistant ties a d_max=8 graph
        # legitimately misses; that would test the graph, not deletes.
        anchors = rng.choice(N_BASE, size=8, replace=False)
        queries = corpus[anchors] + 0.05 * rng.standard_normal(
            (8, N_DIMS))
        ids, dists = index.search(queries, SEARCH)
        returned = ids[ids >= 0]
        # Zero wrong answers: a tombstoned id is never returned.
        assert not np.any(index.tombstones[returned])
        # Recall against the surviving true neighbors only.
        truth = exact_knn(corpus, queries, k=SEARCH.k)
        truth = mask_deleted_ground_truth(truth, index.tombstones)
        assert recall_at_k(ids, truth) >= 0.5
        # Distances in each row stay sorted despite the filtering.
        for row in dists:
            finite = row[np.isfinite(row)]
            assert np.all(np.diff(finite) >= 0)
