"""Hypothesis property tests on cross-cutting search/graph invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.beam import beam_search
from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.ground_truth import exact_knn
from repro.datasets.synthetic import gaussian_mixture


@st.composite
def small_workload(draw):
    """A random small point cloud plus a query drawn near it."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=30, max_value=120))
    dims = draw(st.sampled_from([4, 8, 16]))
    points = gaussian_mixture(n, dims, n_clusters=4, cluster_std=0.3,
                              intrinsic_dim=min(4, dims), seed=seed)
    query = points[draw(st.integers(min_value=0, max_value=n - 1))] + 0.01
    return points, query


class TestSearchInvariants:
    @given(small_workload())
    @settings(max_examples=25, deadline=None)
    def test_beam_results_sorted_unique_valid(self, workload):
        points, query = workload
        graph = build_nsw_cpu(points, d_min=4, d_max=8).graph
        result = beam_search(graph, points, query, k=5, ef=16)
        assert (np.diff(result.dists) >= 0).all()
        assert len(set(result.ids.tolist())) == len(result.ids)
        assert (result.ids >= 0).all()
        assert (result.ids < len(points)).all()

    @given(small_workload())
    @settings(max_examples=20, deadline=None)
    def test_ganns_results_are_subset_of_reachable_truth(self, workload):
        """Every returned distance must be >= the true k-th NN distance
        (no algorithm can do better than exact)."""
        points, query = workload
        graph = build_nsw_cpu(points, d_min=4, d_max=8).graph
        report = ganns_search(graph, points, query[None, :],
                              SearchParams(k=5, l_n=32))
        _, true_dists = exact_knn(points, query[None, :], 5,
                                  return_distances=True)
        live = report.ids[0] >= 0
        assert (report.dists[0][live] >= true_dists[0][:live.sum()]
                - 1e-9).all()

    @given(small_workload())
    @settings(max_examples=20, deadline=None)
    def test_ganns_distances_match_metric(self, workload):
        points, query = workload
        graph = build_nsw_cpu(points, d_min=4, d_max=8).graph
        report = ganns_search(graph, points, query[None, :],
                              SearchParams(k=5, l_n=32))
        live = report.ids[0] >= 0
        ids = report.ids[0][live]
        expected = graph.metric.one_to_many(query, points[ids])
        assert np.allclose(report.dists[0][live], expected, rtol=1e-6)

    @given(small_workload(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_k_prefix_consistency(self, workload, k):
        """Searching for k results must return the prefix of searching
        for more, at identical parameters (deterministic pipeline)."""
        points, query = workload
        graph = build_nsw_cpu(points, d_min=4, d_max=8).graph
        small = ganns_search(graph, points, query[None, :],
                             SearchParams(k=k, l_n=32))
        large = ganns_search(graph, points, query[None, :],
                             SearchParams(k=k + 3, l_n=32))
        assert np.array_equal(small.ids[0], large.ids[0][:k])


class TestConstructionInvariants:
    @given(st.integers(min_value=0, max_value=5000),
           st.integers(min_value=20, max_value=80),
           st.integers(min_value=2, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_ggraphcon_exact_theorem_random_instances(self, seed, n,
                                                      n_blocks):
        """The Section IV-C theorem on random instances and group counts."""
        from repro.core.construction import build_nsw_gpu
        from repro.core.params import BuildParams
        points = gaussian_mixture(n, 6, n_clusters=3, intrinsic_dim=4,
                                  seed=seed)
        params = BuildParams(d_min=3, d_max=6, n_blocks=n_blocks)
        gpu = build_nsw_gpu(points, params, exact=True)
        cpu = build_nsw_cpu(points, 3, 6, exact=True)
        assert gpu.graph.edge_set() == cpu.graph.edge_set()

    @given(st.integers(min_value=0, max_value=5000))
    @settings(max_examples=10, deadline=None)
    def test_built_graphs_always_validate(self, seed):
        from repro.graphs.validation import validate_graph
        points = gaussian_mixture(60, 8, n_clusters=3, intrinsic_dim=4,
                                  seed=seed)
        graph = build_nsw_cpu(points, d_min=4, d_max=8).graph
        validate_graph(graph, points=points, check_distances=True)
