"""Tests for fault plans: events, serialization, generators, injection."""

import numpy as np
import pytest

from repro.core.params import SearchParams
from repro.core.pipeline import BatchTiming
from repro.errors import (
    ConfigurationError,
    DeviceMemoryError,
    FaultError,
    KernelTimeoutError,
    MemoryFaultError,
    ProcessCrashError,
    ReproError,
)
from repro.faults import (
    CrashInjector,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    named_fault_plan,
)
from repro.faults.plan import (
    ALL_FAULT_KINDS,
    CRASH_PHASES,
    FAULT_CRASH,
    FAULT_ECC_BITFLIP,
    FAULT_KERNEL_STALL,
    FAULT_KERNEL_TIMEOUT,
    FAULT_MEM_EXHAUSTION,
    FAULT_NETWORK_PARTITION,
    FAULT_WORKER_LOSS,
    fault_plan_names,
)


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultEvent(kind="meteor_strike", at_seconds=0.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError, match="at_seconds"):
            FaultEvent(kind=FAULT_KERNEL_STALL, at_seconds=-1.0)

    def test_rejects_non_positive_magnitude(self):
        with pytest.raises(ConfigurationError, match="magnitude"):
            FaultEvent(kind=FAULT_KERNEL_STALL, at_seconds=0.0,
                       magnitude=0.0)

    def test_dict_round_trip(self):
        event = FaultEvent(kind=FAULT_WORKER_LOSS, at_seconds=1.5,
                           magnitude=2.0, target=3)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_fault_errors_are_repro_errors(self):
        for exc in (FaultError, KernelTimeoutError, MemoryFaultError,
                    DeviceMemoryError):
            assert issubclass(exc, ReproError)


class TestFaultPlan:
    def test_events_sorted_regardless_of_construction_order(self):
        a = FaultEvent(kind=FAULT_KERNEL_STALL, at_seconds=2.0)
        b = FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=1.0)
        assert FaultPlan([a, b]) == FaultPlan([b, a])
        assert FaultPlan([a, b]).events[0] is b

    def test_kernel_cluster_mutation_split_covers_all_kinds(self):
        events = [FaultEvent(kind=k, at_seconds=float(i))
                  for i, k in enumerate(ALL_FAULT_KINDS)]
        plan = FaultPlan(events)
        split = (plan.kernel_events() + plan.cluster_events()
                 + plan.mutation_events())
        assert sorted(e.kind for e in split) == sorted(ALL_FAULT_KINDS)

    def test_json_round_trip(self):
        plan = FaultPlan([
            FaultEvent(kind=FAULT_ECC_BITFLIP, at_seconds=0.25),
            FaultEvent(kind=FAULT_NETWORK_PARTITION, at_seconds=0.5,
                       magnitude=0.1),
        ], seed=42)
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.to_json() == plan.to_json()

    def test_rng_streams_are_label_independent(self):
        plan = FaultPlan(seed=7)
        a = plan.rng("jitter").random(4)
        b = plan.rng("jitter").random(4)
        c = plan.rng("other").random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_different_seeds_different_streams(self):
        assert not np.array_equal(FaultPlan(seed=1).rng().random(4),
                                  FaultPlan(seed=2).rng().random(4))


class TestPoissonGenerator:
    def test_deterministic_for_equal_arguments(self):
        kwargs = dict(rates={FAULT_KERNEL_STALL: 100.0,
                             FAULT_ECC_BITFLIP: 50.0},
                      horizon_seconds=0.5, seed=9)
        assert FaultPlan.poisson(**kwargs) == FaultPlan.poisson(**kwargs)

    def test_adding_a_kind_never_perturbs_the_others(self):
        base = FaultPlan.poisson({FAULT_KERNEL_STALL: 100.0},
                                 horizon_seconds=0.5, seed=9)
        both = FaultPlan.poisson({FAULT_KERNEL_STALL: 100.0,
                                  FAULT_MEM_EXHAUSTION: 60.0},
                                 horizon_seconds=0.5, seed=9)
        stalls = [e for e in both.events if e.kind == FAULT_KERNEL_STALL]
        assert tuple(stalls) == base.events

    def test_events_within_horizon_and_rate_scales(self):
        plan = FaultPlan.poisson({FAULT_KERNEL_TIMEOUT: 200.0},
                                 horizon_seconds=1.0, seed=0)
        assert all(0 <= e.at_seconds < 1.0 for e in plan.events)
        assert 100 < len(plan) < 320  # ~Poisson(200)

    def test_worker_loss_targets_valid_workers(self):
        plan = FaultPlan.poisson({FAULT_WORKER_LOSS: 40.0},
                                 horizon_seconds=1.0, seed=3, n_workers=8)
        assert len(plan) > 0
        assert all(0 <= e.target < 8 for e in plan.events)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            FaultPlan.poisson({}, horizon_seconds=0.0)
        with pytest.raises(ConfigurationError, match="rate"):
            FaultPlan.poisson({FAULT_KERNEL_STALL: -1.0},
                              horizon_seconds=1.0)


class TestNamedPlans:
    def test_names_cover_the_recipes(self):
        names = fault_plan_names()
        for expected in ("none", "mild", "aggressive", "memory",
                         "blackout"):
            assert expected in names

    def test_none_recipe_is_empty(self):
        assert len(named_fault_plan("none", horizon_seconds=1.0)) == 0

    def test_aggressive_schedules_every_kernel_kind(self):
        plan = named_fault_plan("aggressive", horizon_seconds=1.0, seed=0)
        kinds = {e.kind for e in plan.events}
        assert kinds == {FAULT_KERNEL_TIMEOUT, FAULT_KERNEL_STALL,
                         FAULT_ECC_BITFLIP, FAULT_MEM_EXHAUSTION}

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan"):
            named_fault_plan("catastrophic", horizon_seconds=1.0)


class TestCrashEvents:
    def test_round_trip_preserves_phase(self):
        event = FaultEvent(kind=FAULT_CRASH, at_seconds=2.0,
                           phase="compaction.rewrite")
        restored = FaultEvent.from_dict(event.to_dict())
        assert restored == event
        assert restored.phase == "compaction.rewrite"

    def test_phaseless_crash_round_trips_without_phase_key(self):
        event = FaultEvent(kind=FAULT_CRASH, at_seconds=1.0)
        assert "phase" not in event.to_dict()
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_phase_must_be_a_known_crash_point(self):
        with pytest.raises(ConfigurationError, match="phase"):
            FaultEvent(kind=FAULT_CRASH, at_seconds=0.0,
                       phase="compaction.meteor")

    def test_phase_rejected_on_non_crash_kinds(self):
        with pytest.raises(ConfigurationError, match="phase"):
            FaultEvent(kind=FAULT_KERNEL_STALL, at_seconds=0.0,
                       phase=CRASH_PHASES[0])

    def test_plan_json_round_trip_with_crashes(self):
        plan = FaultPlan([
            FaultEvent(kind=FAULT_CRASH, at_seconds=0.5,
                       phase="checkpoint.write"),
            FaultEvent(kind=FAULT_KERNEL_STALL, at_seconds=0.25),
        ], seed=11)
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.mutation_events()[0].phase == "checkpoint.write"

    def test_compaction_crash_recipe_is_seed_deterministic(self):
        a = named_fault_plan("compaction-crash", horizon_seconds=30.0,
                             seed=5)
        b = named_fault_plan("compaction-crash", horizon_seconds=30.0,
                             seed=5)
        c = named_fault_plan("compaction-crash", horizon_seconds=30.0,
                             seed=6)
        assert a == b
        assert a != c
        assert all(e.kind == FAULT_CRASH for e in a.events)
        assert all(e.phase in CRASH_PHASES for e in a.events)

    def test_injector_matches_phase_and_consumes_once(self):
        plan = FaultPlan([FaultEvent(kind=FAULT_CRASH, at_seconds=1.0,
                                     phase="compaction.repair")])
        injector = CrashInjector(plan)
        assert injector.poll("compaction.repair", 0.5) is None
        assert injector.poll("compaction.scan", 2.0) is None
        event = injector.poll("compaction.repair", 2.0)
        assert event is not None
        assert injector.poll("compaction.repair", 3.0) is None
        assert injector.pending == 0
        assert injector.delivered == 1

    def test_phaseless_event_fires_at_any_boundary(self):
        plan = FaultPlan([FaultEvent(kind=FAULT_CRASH, at_seconds=0.0)])
        injector = CrashInjector(plan)
        with pytest.raises(ProcessCrashError) as excinfo:
            injector.check("checkpoint.serialize", 1.0)
        assert excinfo.value.phase == "checkpoint.serialize"

    def test_check_publishes_delivery_counter(self):
        from repro.observability.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        plan = FaultPlan([FaultEvent(kind=FAULT_CRASH, at_seconds=0.0,
                                     phase="compaction.scan")])
        injector = CrashInjector(plan)
        with pytest.raises(ProcessCrashError):
            injector.check("compaction.scan", 1.0, metrics=metrics)
        assert metrics.value("faults.delivered.crash") == 1


TIMING = BatchTiming(n_queries=8, upload_seconds=1e-4,
                     compute_seconds=2e-4, download_seconds=5e-5)


class TestFaultInjector:
    def test_poll_respects_arming_times(self):
        plan = FaultPlan([FaultEvent(kind=FAULT_KERNEL_STALL,
                                     at_seconds=1.0)])
        injector = FaultInjector(plan)
        assert injector.poll(0.5) is None
        assert injector.pending == 1
        event = injector.poll(1.5)
        assert event is not None and event.kind == FAULT_KERNEL_STALL
        assert injector.poll(2.0) is None  # consumed exactly once
        assert injector.pending == 0

    def test_stall_stretches_compute_only(self):
        injector = FaultInjector(FaultPlan())
        event = FaultEvent(kind=FAULT_KERNEL_STALL, at_seconds=0.0,
                           magnitude=3.0)
        stretched = injector.apply(event, TIMING)
        assert stretched.compute_seconds == \
            pytest.approx(3.0 * TIMING.compute_seconds)
        assert stretched.upload_seconds == TIMING.upload_seconds
        assert stretched.download_seconds == TIMING.download_seconds

    def test_timeout_charges_watchdog_seconds(self):
        injector = FaultInjector(FaultPlan())
        event = FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=0.0,
                           magnitude=5e-3)
        with pytest.raises(KernelTimeoutError) as excinfo:
            injector.apply(event, TIMING)
        assert excinfo.value.compute_seconds == pytest.approx(5e-3)
        assert excinfo.value.upload_seconds == \
            pytest.approx(TIMING.upload_seconds)

    def test_ecc_charges_full_compute(self):
        injector = FaultInjector(FaultPlan())
        event = FaultEvent(kind=FAULT_ECC_BITFLIP, at_seconds=0.0)
        with pytest.raises(MemoryFaultError) as excinfo:
            injector.apply(event, TIMING)
        assert excinfo.value.compute_seconds == \
            pytest.approx(TIMING.compute_seconds)

    def test_oom_fails_before_compute(self):
        injector = FaultInjector(FaultPlan())
        event = FaultEvent(kind=FAULT_MEM_EXHAUSTION, at_seconds=0.0)
        with pytest.raises(DeviceMemoryError) as excinfo:
            injector.apply(event, TIMING)
        assert excinfo.value.compute_seconds == 0.0

    def test_hook_collects_survivable_faults_in_sink(self):
        plan = FaultPlan([FaultEvent(kind=FAULT_KERNEL_STALL,
                                     at_seconds=0.0, magnitude=2.0)])
        injector = FaultInjector(plan)
        sink = []
        hook = injector.hook(1.0, sink=sink)
        out = hook(0, TIMING)
        assert out.compute_seconds == \
            pytest.approx(2.0 * TIMING.compute_seconds)
        assert len(sink) == 1 and sink[0].kind == FAULT_KERNEL_STALL

    def test_search_params_signature_unaffected(self):
        """Plan machinery must not leak into cache-key signatures."""
        assert SearchParams(k=5, l_n=32).signature() == \
            SearchParams(k=5, l_n=32).signature()
