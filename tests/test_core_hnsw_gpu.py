"""Tests for GPU HNSW construction (the Section IV-D extension)."""

import numpy as np
import pytest

from repro.core.hnsw import build_hnsw_gpu, recover_original_ids
from repro.core.params import BuildParams
from repro.errors import ConstructionError
from repro.graphs.adjacency import HierarchicalGraph
from repro.graphs.validation import validate_graph

PARAMS = BuildParams(d_min=6, d_max=12, n_blocks=8, seed=1)


class TestStructure:
    @pytest.fixture(scope="class")
    def built(self, small_points):
        return build_hnsw_gpu(small_points[:400], PARAMS)

    def test_hierarchical_output(self, built):
        assert isinstance(built.graph, HierarchicalGraph)
        assert built.graph.layer_sizes[0] == 400
        assert built.graph.n_layers >= 2

    def test_layers_validate(self, built):
        for layer in built.graph.layers:
            validate_graph(layer)

    def test_order_is_permutation(self, built):
        assert sorted(built.order.tolist()) == list(range(400))

    def test_prefix_addressing(self, built):
        """Upper layers only reference ids inside their prefix — the ID
        shuffle's whole point."""
        for idx in range(1, built.graph.n_layers):
            layer = built.graph.layers[idx]
            size = built.graph.layer_sizes[idx]
            live = layer.neighbor_ids[layer.neighbor_ids >= 0]
            if live.size:
                assert live.max() < size

    def test_seconds_accumulate_layers(self, built):
        assert built.seconds > 0
        layer0_phases = [k for k in built.phase_seconds if
                         k.startswith("layer0:")]
        assert layer0_phases

    def test_details(self, built):
        assert built.details["n_layers"] == built.graph.n_layers
        assert built.algorithm == "ggraphcon-hnsw-ganns"


class TestSearchQuality:
    def test_end_to_end_recall(self, small_points, small_queries):
        from repro.core.ganns import ganns_search
        from repro.core.params import SearchParams
        from repro.baselines.hnsw_cpu import hnsw_entry_descent
        from repro.datasets.ground_truth import exact_knn
        from repro.metrics.recall import recall_at_k

        points = small_points[:400]
        built = build_hnsw_gpu(points, BuildParams(d_min=8, d_max=16,
                                                   n_blocks=8, seed=1))
        shuffled = points[built.order]
        entries = np.array([
            hnsw_entry_descent(built.graph, shuffled, q)[0]
            for q in small_queries
        ])
        report = ganns_search(built.graph.bottom, shuffled, small_queries,
                              SearchParams(k=10, l_n=64), entry=entries)
        original = recover_original_ids(report.ids, built.order)
        gt = exact_knn(points, small_queries, 10)
        assert recall_at_k(original, gt) > 0.8

    def test_kernel_choice_changes_time_not_graph_shape(self, small_points):
        points = small_points[:250]
        ganns = build_hnsw_gpu(points, PARAMS, search_kernel="ganns")
        song = build_hnsw_gpu(points, PARAMS, search_kernel="song")
        assert song.seconds > ganns.seconds
        assert ganns.graph.layer_sizes == song.graph.layer_sizes


class TestRecoverOriginalIds:
    def test_mapping(self):
        order = np.array([5, 2, 9])
        ids = np.array([[0, 2, 1], [-1, 0, 0]])
        out = recover_original_ids(ids, order)
        assert np.array_equal(out, [[5, 9, 2], [-1, 5, 5]])

    def test_padding_preserved(self):
        order = np.array([1, 0])
        out = recover_original_ids(np.array([-1, -1]), order)
        assert (out == -1).all()


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ConstructionError, match="non-empty"):
            build_hnsw_gpu(np.zeros((0, 4)), PARAMS)
