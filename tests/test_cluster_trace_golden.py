"""Golden-file determinism for the cluster trace and report.

The cluster's byte-determinism claim is pinned against a committed
artifact: a frozen sharded-serving scenario (fixed corpus seeds, fixed
topology, fixed replica-loss fault plan) must serialize to a span
trace *byte-identical* to ``tests/data/cluster_trace_golden.json.gz``
across runs, processes and releases.  Any change that moves a single
byte — a reordered span, a different float path, a new attribute —
fails this test and must either be fixed or consciously regenerate the
golden:

    PYTHONPATH=src python scripts/regen_golden.py --cluster-trace

(the script rewrites the archive with ``gzip`` ``mtime=0`` so the
archive itself is reproducible; say so in the commit message when you
regenerate).
"""

import gzip
import os

from repro.cluster import ClusterEngine, RouterPolicy
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.faults import RetryPolicy, named_fault_plan
from repro.observability import MetricsRegistry, SpanTracer
from repro.serve import BatchPolicy, synthetic_trace

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "cluster_trace_golden.json.gz")

#: The frozen scenario.  Never change these values without regenerating
#: the golden file (and saying so in the commit message).
N_POINTS = 300
N_DIMS = 16
POOL_SIZE = 80
N_REQUESTS = 150
MEAN_QPS = 25_000.0
N_SHARDS = 6
N_REPLICAS = 2
SEED_POINTS = 52
SEED_POOL = 53
SEED_TRACE = 27
SEED_FAULTS = 31
D_MIN, D_MAX = 8, 16
PARAMS = SearchParams(k=8, l_n=32, e=2)


def compute_golden_cluster_trace() -> bytes:
    """Run the frozen scenario from scratch; returns the trace bytes."""
    points = gaussian_mixture(N_POINTS, N_DIMS, n_clusters=6,
                              cluster_std=0.3, intrinsic_dim=6,
                              seed=SEED_POINTS)
    pool = gaussian_mixture(POOL_SIZE, N_DIMS, n_clusters=6,
                            cluster_std=0.3, intrinsic_dim=6,
                            seed=SEED_POOL)
    plan = named_fault_plan(
        "replica-loss",
        horizon_seconds=2.0 * N_REQUESTS / MEAN_QPS,
        seed=SEED_FAULTS, n_workers=N_SHARDS * N_REPLICAS)
    engine = ClusterEngine(
        points, n_shards=N_SHARDS, n_replicas=N_REPLICAS,
        params=PARAMS, d_min=D_MIN, d_max=D_MAX,
        policy=BatchPolicy(max_batch=32, max_wait_seconds=5e-4,
                           max_queue=512),
        faults=plan,
        retry=RetryPolicy(max_retries=2, base_seconds=2e-4,
                          cap_seconds=2e-3),
        router_policy=RouterPolicy(heartbeat_seconds=1e-3,
                                   failover_penalty_seconds=2e-4))
    trace = synthetic_trace(pool, N_REQUESTS, mean_qps=MEAN_QPS,
                            repeat_fraction=0.3, seed=SEED_TRACE)
    tracer = SpanTracer()
    report = engine.replay(trace, tracer=tracer,
                           metrics=MetricsRegistry())
    tracer.finish()
    tracer.validate()
    report.verify_against_metrics()
    return tracer.to_json_bytes()


def write_golden(payload: bytes) -> None:
    """Write the golden archive reproducibly (fixed gzip mtime)."""
    with open(GOLDEN_PATH, "wb") as handle:
        with gzip.GzipFile(fileobj=handle, mode="wb", mtime=0) as gz:
            gz.write(payload)


class TestClusterTraceGolden:
    def test_golden_file_is_committed(self):
        assert os.path.exists(GOLDEN_PATH), (
            f"golden cluster trace missing at {GOLDEN_PATH}; "
            f"regenerate with PYTHONPATH=src python "
            f"scripts/regen_golden.py --cluster-trace"
        )

    def test_trace_matches_golden_byte_for_byte(self):
        payload = compute_golden_cluster_trace()
        with gzip.open(GOLDEN_PATH, "rb") as gz:
            golden = gz.read()
        assert payload == golden, (
            "cluster trace bytes drifted from the committed golden; "
            "if the change is intentional, regenerate with "
            "PYTHONPATH=src python scripts/regen_golden.py "
            "--cluster-trace"
        )

    def test_golden_is_a_valid_well_formed_trace(self):
        with gzip.open(GOLDEN_PATH, "rb") as gz:
            tracer = SpanTracer.from_json_bytes(gz.read())
        tracer.validate()
        assert tracer.roots()[0].name == "cluster.replay"
        assert len(tracer.find("cluster.request")) == N_REQUESTS
        assert tracer.find("cluster.replica")
