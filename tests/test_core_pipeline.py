"""Tests for the streamed multi-batch pipeline (the Section III-B
stream-overlap remark)."""

import numpy as np
import pytest

from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.core.pipeline import stream_batches
from repro.errors import SearchError


@pytest.fixture(scope="module")
def params():
    return SearchParams(k=5, l_n=32)


class TestCorrectness:
    def test_results_match_unbatched_search(self, small_graph,
                                            small_points, small_queries,
                                            params):
        streamed = stream_batches(small_graph, small_points,
                                  small_queries, params, batch_size=7)
        direct = ganns_search(small_graph, small_points, small_queries,
                              params)
        assert np.array_equal(streamed.ids, direct.ids)
        assert np.allclose(streamed.dists, direct.dists)

    def test_batch_partitioning(self, small_graph, small_points,
                                small_queries, params):
        streamed = stream_batches(small_graph, small_points,
                                  small_queries, params, batch_size=16)
        sizes = [b.n_queries for b in streamed.batches]
        assert sum(sizes) == len(small_queries)
        assert all(size <= 16 for size in sizes)

    def test_single_batch(self, small_graph, small_points, small_queries,
                          params):
        streamed = stream_batches(small_graph, small_points,
                                  small_queries, params,
                                  batch_size=10_000)
        assert len(streamed.batches) == 1


class TestOverlapTiming:
    def test_overlap_never_slower_than_serial(self, small_graph,
                                              small_points, small_queries,
                                              params):
        streamed = stream_batches(small_graph, small_points,
                                  small_queries, params, batch_size=8)
        assert streamed.overlapped_seconds <= streamed.serial_seconds
        assert 0.0 <= streamed.overlap_saving < 1.0

    def test_overlap_at_least_compute_bound(self, small_graph,
                                            small_points, small_queries,
                                            params):
        streamed = stream_batches(small_graph, small_points,
                                  small_queries, params, batch_size=8)
        compute_total = sum(b.compute_seconds for b in streamed.batches)
        assert streamed.overlapped_seconds >= compute_total

    def test_transfer_nearly_hidden(self, small_graph, small_points,
                                    small_queries, params):
        """The paper's remark quantified: with overlap, the stream costs
        barely more than pure compute."""
        streamed = stream_batches(small_graph, small_points,
                                  small_queries, params, batch_size=8)
        compute_total = sum(b.compute_seconds for b in streamed.batches)
        exposed = streamed.overlapped_seconds - compute_total
        transfer_total = sum(b.upload_seconds + b.download_seconds
                             for b in streamed.batches)
        assert exposed <= transfer_total * 0.6 + 1e-9

    def test_multiple_batches_amortise_better(self, small_graph,
                                              small_points, small_queries,
                                              params):
        many = stream_batches(small_graph, small_points, small_queries,
                              params, batch_size=5)
        assert many.overlap_saving >= 0.0
        assert len(many.batches) >= 2


class TestValidation:
    def test_empty_queries(self, small_graph, small_points, params):
        with pytest.raises(SearchError, match="non-empty"):
            stream_batches(small_graph, small_points,
                           np.zeros((0, small_points.shape[1])), params)

    def test_bad_batch_size(self, small_graph, small_points,
                            small_queries, params):
        with pytest.raises(SearchError, match="batch_size"):
            stream_batches(small_graph, small_points, small_queries,
                           params, batch_size=0)
