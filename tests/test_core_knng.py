"""Tests for GPU batched NN-Descent KNN-graph construction."""

import numpy as np
import pytest

from repro.core.knng import build_knn_graph_gpu
from repro.core.params import BuildParams
from repro.datasets.ground_truth import exact_knn
from repro.errors import ConstructionError
from repro.graphs.validation import validate_graph
from repro.gpusim.tracker import PhaseCategory


@pytest.fixture(scope="module")
def cloud():
    from repro.datasets.synthetic import gaussian_mixture
    return gaussian_mixture(300, 12, n_clusters=6, intrinsic_dim=6, seed=7)


def _accuracy(graph, points, k):
    truth = exact_knn(points, points, k + 1)[:, 1:]
    hits = 0
    for v in range(len(points)):
        hits += np.intersect1d(graph.neighbors(v), truth[v]).size
    return hits / (len(points) * k)


class TestQuality:
    def test_high_knn_accuracy(self, cloud):
        report = build_knn_graph_gpu(cloud, k=8)
        assert _accuracy(report.graph, cloud, 8) > 0.9

    def test_matches_cpu_nn_descent_quality(self, cloud):
        from repro.baselines.nn_descent import build_knn_graph_nn_descent
        gpu = build_knn_graph_gpu(cloud, k=8)
        cpu = build_knn_graph_nn_descent(cloud, k=8, seed=0)
        assert abs(_accuracy(gpu.graph, cloud, 8)
                   - _accuracy(cpu.graph, cloud, 8)) < 0.1

    def test_graph_structure(self, cloud):
        report = build_knn_graph_gpu(cloud, k=8)
        validate_graph(report.graph, points=cloud, check_distances=True)
        assert (report.graph.degrees == 8).all()

    def test_cosine_metric(self):
        from repro.datasets.synthetic import hypersphere_shell
        points = hypersphere_shell(200, 16, n_clusters=5,
                                   intrinsic_dim=6, seed=2)
        report = build_knn_graph_gpu(points, k=6, metric="cosine")
        assert _accuracy(report.graph, points, 6) > 0.7

    def test_convergence_recorded(self, cloud):
        report = build_knn_graph_gpu(cloud, k=8)
        assert report.details["n_iterations"] >= 1
        assert report.algorithm == "ggraphcon-knng"


class TestTiming:
    def test_phases_and_categories(self, cloud):
        report = build_knn_graph_gpu(cloud, k=8)
        assert "initialization" in report.phase_seconds
        assert "refinement" in report.phase_seconds
        assert report.category_seconds[PhaseCategory.DISTANCE] > 0
        assert report.category_seconds[PhaseCategory.STRUCTURE] > 0

    def test_iteration_cap_limits_time(self, cloud):
        capped = build_knn_graph_gpu(cloud, k=8, max_iterations=1)
        free = build_knn_graph_gpu(cloud, k=8, max_iterations=12)
        assert capped.seconds < free.seconds
        assert capped.details["n_iterations"] == 1


class TestValidation:
    def test_rejects_bad_k(self, cloud):
        with pytest.raises(ConstructionError, match="k must lie"):
            build_knn_graph_gpu(cloud, k=0)
        with pytest.raises(ConstructionError, match="k must lie"):
            build_knn_graph_gpu(cloud, k=len(cloud))

    def test_rejects_empty(self):
        with pytest.raises(ConstructionError, match="non-empty"):
            build_knn_graph_gpu(np.zeros((0, 4)), k=2)

    def test_deterministic(self, cloud):
        a = build_knn_graph_gpu(cloud, k=6, params=BuildParams(seed=9))
        b = build_knn_graph_gpu(cloud, k=6, params=BuildParams(seed=9))
        assert np.array_equal(a.graph.neighbor_ids, b.graph.neighbor_ids)
