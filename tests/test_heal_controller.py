"""Unit battery for the repair controller, sources, and down windows.

The self-healing layer's safety argument lives here: repairs are a
pure function of (loss schedule, policy, sources, plan seed), a
digest-mismatched rebuild is quarantined and never admitted, repair
lanes serialize FIFO so repair traffic is rate-limited, and the
router's ``[death, revive)`` windows reproduce the pre-heal
dead-forever router exactly until the controller installs bounded
windows.
"""

import math

import numpy as np
import pytest

from repro.cluster.router import ReplicaRouter, RouterPolicy
from repro.core.backend import get_backend
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import ClusterError, HealError
from repro.faults.plan import FAULT_WORKER_LOSS, FaultEvent, FaultPlan
from repro.graphs.stats import graph_digest
from repro.heal import (
    REPAIR_ABANDONED,
    REPAIR_HEALED,
    HealPolicy,
    RepairController,
    StaticShardSource,
    StoreShardSource,
    shard_payload_bytes,
)


def _shard(n_points=60, seed=11):
    points = gaussian_mixture(n_points, 8, n_clusters=3,
                              cluster_std=0.4, seed=seed)
    graph = get_backend("nsw").serving_graph(points, d_min=4, d_max=8,
                                             metric="euclidean")
    return graph, points


def _loss_plan(losses, seed=0):
    """A plan with targeted worker-loss events at given (t, slot)."""
    events = [FaultEvent(kind=FAULT_WORKER_LOSS, at_seconds=t,
                         magnitude=1.0, target=slot)
              for t, slot in losses]
    return FaultPlan(events=events, seed=seed)


class TestHealPolicy:
    def test_defaults_validate(self):
        HealPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"repair_bandwidth_fraction": 0.0},
        {"repair_bandwidth_fraction": 1.5},
        {"max_rebuild_attempts": 0},
        {"corruption_probability": 1.0},
        {"corruption_probability": -0.1},
        {"mttr_bound_seconds": 0.0},
        {"n_repair_lanes": 0},
        {"n_threads": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(HealError):
            HealPolicy(**kwargs)


class TestSources:
    def test_static_source_digest_is_graph_digest(self):
        graph, points = _shard()
        source = StaticShardSource(graph, points)
        assert source.digest() == graph_digest(graph)
        assert source.snapshot_bytes == shard_payload_bytes(graph,
                                                            points)
        assert source.catchup_seconds == 0.0
        assert source.wal_records == 0

    def test_static_source_rejects_negative_delta(self):
        graph, points = _shard()
        with pytest.raises(HealError):
            StaticShardSource(graph, points, catchup_seconds=-1.0)
        with pytest.raises(HealError):
            StaticShardSource(graph, points, wal_records=-1)

    def test_store_source_matches_recovery(self):
        from repro.mutable import run_mutation_sim
        from repro.mutable.recovery import recover

        report = run_mutation_sim(n_points=120, n_dims=8, n_ops=12,
                                  seed=3, checkpoint_every=5)
        source = StoreShardSource(report.store)
        recovered = recover(report.store)
        assert source.digest() == graph_digest(recovered.graph)
        assert source.wal_records == len(
            report.store.surviving_records())
        assert source.snapshot_bytes > 0
        assert source.catchup_seconds >= 0.0
        # Catch-up is the mutation time past the checkpoint — it can
        # never exceed the full recovered mutation time.
        assert source.catchup_seconds <= recovered.mutation_seconds


class TestRouterWindows:
    def test_default_windows_are_dead_forever(self):
        plan = _loss_plan([(0.002, 1)])
        router = ReplicaRouter(2, 2, plan=plan)
        assert router.down_windows[1] == [(0.002, math.inf)]
        assert router.is_alive(0, 1, 0.001)
        assert not router.is_alive(0, 1, 0.002)
        assert not router.is_alive(0, 1, 1e9)

    def test_bounded_window_revives_the_slot(self):
        plan = _loss_plan([(0.002, 1)])
        router = ReplicaRouter(2, 2, plan=plan)
        router.install_downtime(1, [(0.002, 0.004)])
        assert not router.is_alive(0, 1, 0.003)
        assert router.is_alive(0, 1, 0.004)
        assert router.revive_time(0, 1) == 0.004

    def test_install_downtime_validates(self):
        router = ReplicaRouter(2, 2)
        with pytest.raises(ClusterError):
            router.install_downtime(99, [(0.0, 1.0)])
        with pytest.raises(ClusterError):
            router.install_downtime(1, [(1.0, 1.0)])
        with pytest.raises(ClusterError):
            router.install_downtime(1, [(0.0, 2.0), (1.0, 3.0)])

    def test_empty_windows_clear_the_slot(self):
        plan = _loss_plan([(0.002, 1)])
        router = ReplicaRouter(2, 2, plan=plan)
        router.install_downtime(1, [])
        assert router.is_alive(0, 1, 1e9)


class TestRepairController:
    def test_transfer_is_rate_limited(self):
        fast = RepairController(
            HealPolicy(repair_bandwidth_fraction=1.0))
        slow = RepairController(
            HealPolicy(repair_bandwidth_fraction=0.1))
        n_bytes = 1_000_000
        assert slow.transfer_seconds(n_bytes) > \
            fast.transfer_seconds(n_bytes)
        # The repair lane never beats the full-bandwidth interconnect.
        assert fast.transfer_seconds(n_bytes) >= \
            fast.network.transfer_seconds(n_bytes)

    def test_requires_one_source_per_shard(self):
        graph, points = _shard()
        router = ReplicaRouter(2, 2)
        controller = RepairController(HealPolicy())
        with pytest.raises(HealError):
            controller.plan_repairs(
                router, [StaticShardSource(graph, points)])

    def test_clean_repair_heals_and_installs_window(self):
        graph, points = _shard()
        plan = _loss_plan([(0.002, 1)])
        router = ReplicaRouter(2, 1, plan=plan)
        controller = RepairController(HealPolicy())
        records = controller.plan_repairs(
            router, [StaticShardSource(graph, points)] * 2, plan=plan)
        assert len(records) == 1
        rec = records[0]
        assert rec.status == REPAIR_HEALED
        assert rec.shard == 1 and rec.replica == 0
        assert rec.detect_seconds == \
            0.002 + router.policy.heartbeat_seconds
        assert rec.start_seconds >= rec.detect_seconds
        assert rec.admitted_seconds == rec.attempts[-1].end_seconds
        assert rec.mttr_seconds > 0
        # The router now revives the slot at the admitted instant.
        assert not router.is_alive(1, 0, rec.admitted_seconds - 1e-9)
        assert router.is_alive(1, 0, rec.admitted_seconds)

    def test_duplicate_loss_in_window_is_noop(self):
        graph, points = _shard()
        plan = _loss_plan([(0.002, 0), (0.0021, 0)])
        router = ReplicaRouter(1, 2, plan=plan)
        controller = RepairController(HealPolicy())
        records = controller.plan_repairs(
            router, [StaticShardSource(graph, points)], plan=plan)
        assert len(records) == 1

    def test_loss_after_revival_schedules_second_repair(self):
        graph, points = _shard()
        plan = _loss_plan([(0.002, 0), (1.0, 0)])
        router = ReplicaRouter(1, 2, plan=plan)
        controller = RepairController(HealPolicy())
        records = controller.plan_repairs(
            router, [StaticShardSource(graph, points)], plan=plan)
        assert len(records) == 2
        assert all(r.status == REPAIR_HEALED for r in records)
        windows = router.down_windows[0]
        assert len(windows) == 2
        assert windows[0][1] <= windows[1][0]

    def test_single_lane_serializes_repairs_fifo(self):
        graph, points = _shard()
        plan = _loss_plan([(0.002, 0), (0.0021, 1)])
        router = ReplicaRouter(2, 1, plan=plan)
        controller = RepairController(HealPolicy(n_repair_lanes=1))
        records = controller.plan_repairs(
            router, [StaticShardSource(graph, points)] * 2, plan=plan)
        first, second = records
        assert second.start_seconds >= first.attempts[-1].end_seconds

    def test_two_lanes_overlap_repairs(self):
        graph, points = _shard()
        plan = _loss_plan([(0.002, 0), (0.0021, 1)])
        router = ReplicaRouter(2, 1, plan=plan)
        controller = RepairController(HealPolicy(n_repair_lanes=2))
        records = controller.plan_repairs(
            router, [StaticShardSource(graph, points)] * 2, plan=plan)
        first, second = records
        assert second.start_seconds < first.attempts[-1].end_seconds

    def test_planning_is_deterministic(self):
        graph, points = _shard()
        plan = _loss_plan([(0.002, 0), (0.003, 1), (0.004, 2)], seed=5)
        policy = HealPolicy(corruption_probability=0.5,
                            max_rebuild_attempts=3)
        lines = []
        for _ in range(2):
            router = ReplicaRouter(3, 1, plan=plan)
            controller = RepairController(policy)
            records = controller.plan_repairs(
                router, [StaticShardSource(graph, points)] * 3,
                plan=plan)
            lines.append([r.to_line() for r in records])
        assert lines[0] == lines[1]

    def test_corruption_quarantines_before_admission(self):
        """Under heavy corruption every record stays safe: mismatched
        attempts are never the admitted one."""
        graph, points = _shard()
        plan = _loss_plan([(0.002 + 0.001 * i, i % 4)
                           for i in range(8)], seed=9)
        router = ReplicaRouter(4, 1, plan=plan)
        controller = RepairController(
            HealPolicy(corruption_probability=0.7,
                       max_rebuild_attempts=3))
        records = controller.plan_repairs(
            router, [StaticShardSource(graph, points)] * 4, plan=plan)
        assert any(r.n_quarantined for r in records), (
            "corruption at 0.7 over 8 repairs produced no quarantine "
            "— the corruption stream is not wired")
        for rec in records:
            for attempt in rec.attempts[:-1]:
                assert not attempt.digest_matched
            if rec.status == REPAIR_HEALED:
                assert rec.attempts[-1].digest_matched
                assert rec.admitted_seconds == \
                    rec.attempts[-1].end_seconds
            else:
                assert rec.status == REPAIR_ABANDONED
                assert not rec.attempts[-1].digest_matched
                assert rec.n_attempts == 3
                assert math.isinf(rec.admitted_seconds)
                assert math.isinf(rec.mttr_seconds)

    def test_abandoned_slot_stays_dead_forever(self):
        graph, points = _shard()
        plan = _loss_plan([(0.002, 0)], seed=2)
        router = ReplicaRouter(1, 2, plan=plan)
        controller = RepairController(
            HealPolicy(corruption_probability=0.99,
                       max_rebuild_attempts=1))
        records = controller.plan_repairs(
            router, [StaticShardSource(graph, points)], plan=plan)
        rec = records[0]
        if rec.status == REPAIR_ABANDONED:
            assert not router.is_alive(0, 0, 1e9)
        else:
            assert router.is_alive(0, 0, rec.admitted_seconds)

    def test_no_corruption_skips_the_rng_stream(self):
        """With the knob at zero the corruption stream is never drawn,
        so arming heal cannot re-time other plan randomness."""
        graph, points = _shard()
        plan = _loss_plan([(0.002, 0)], seed=4)
        router = ReplicaRouter(1, 2, plan=plan)
        controller = RepairController(
            HealPolicy(corruption_probability=0.0))
        records = controller.plan_repairs(
            router, [StaticShardSource(graph, points)], plan=plan)
        assert records[0].status == REPAIR_HEALED
        assert records[0].n_attempts == 1
