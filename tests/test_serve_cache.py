"""Tests for the LRU result cache: keys, eviction, exactness guarantees."""

import numpy as np
import pytest

from repro.core.params import SearchParams
from repro.errors import ConfigurationError
from repro.serve.cache import ResultCache, quantize_query

SIG = SearchParams(k=5, l_n=32).signature()


def _entry(seed, d=8, k=5):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=d), rng.integers(0, 100, size=k),
            rng.random(size=k))


class TestQuantizeQuery:
    def test_same_vector_same_key(self):
        q = np.array([0.1234567, -2.5])
        assert quantize_query(q) == quantize_query(q.copy())

    def test_collapses_sub_step_noise(self):
        a = np.array([0.12345678])
        b = np.array([0.12345681])
        assert quantize_query(a, decimals=6) == quantize_query(b, decimals=6)

    def test_distinguishes_above_step(self):
        a = np.array([0.1234])
        b = np.array([0.1244])
        assert quantize_query(a, decimals=3) != quantize_query(b, decimals=3)

    def test_negative_zero_normalised(self):
        assert quantize_query(np.array([-0.0])) == \
            quantize_query(np.array([0.0]))

    def test_float32_and_float64_of_same_value_share_key(self):
        a = np.array([0.5, 0.25], dtype=np.float32)
        b = np.array([0.5, 0.25], dtype=np.float64)
        assert quantize_query(a) == quantize_query(b)


class TestResultCacheBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        q, ids, dists = _entry(0)
        assert cache.get(q, SIG) is None
        cache.put(q, SIG, ids, dists)
        found = cache.get(q, SIG)
        assert found is not None
        assert np.array_equal(found[0], ids)
        assert np.array_equal(found[1], dists)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_different_params_signature_misses(self):
        cache = ResultCache(capacity=4)
        q, ids, dists = _entry(1)
        cache.put(q, SIG, ids, dists)
        other = SearchParams(k=5, l_n=64).signature()
        assert cache.get(q, other) is None

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        q, ids, dists = _entry(2)
        cache.put(q, SIG, ids, dists)
        assert len(cache) == 0
        assert cache.get(q, SIG) is None

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            ResultCache(capacity=-1)

    def test_put_copies_results(self):
        """Mutating the caller's arrays must not corrupt cached entries."""
        cache = ResultCache(capacity=4)
        q, ids, dists = _entry(3)
        cache.put(q, SIG, ids, dists)
        ids[:] = -7
        found = cache.get(q, SIG)
        assert not np.array_equal(found[0], ids)

    def test_clear_keeps_counters(self):
        cache = ResultCache(capacity=4)
        q, ids, dists = _entry(4)
        cache.put(q, SIG, ids, dists)
        cache.get(q, SIG)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestLruEviction:
    def test_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        (qa, ia, da), (qb, ib, db), (qc, ic, dc) = (
            _entry(10), _entry(11), _entry(12))
        cache.put(qa, SIG, ia, da)
        cache.put(qb, SIG, ib, db)
        cache.get(qa, SIG)            # refresh A; B is now LRU
        cache.put(qc, SIG, ic, dc)    # evicts B
        assert cache.get(qa, SIG) is not None
        assert cache.get(qb, SIG) is None
        assert cache.get(qc, SIG) is not None
        assert cache.stats.evictions == 1

    def test_reinserting_same_key_does_not_grow(self):
        cache = ResultCache(capacity=2)
        q, ids, dists = _entry(13)
        cache.put(q, SIG, ids, dists)
        cache.put(q, SIG, ids, dists)
        assert len(cache) == 1
        assert cache.stats.evictions == 0


class TestCacheStatsSurfacedInServeReport:
    def _engine_and_trace(self, graph, points, cache):
        """Two spaced single-query requests landing in one cache bucket."""
        from repro.serve import BatchPolicy, QueryRequest, ServeEngine

        engine = ServeEngine(
            graph, points, SearchParams(k=5, l_n=32),
            policy=BatchPolicy(max_batch=64, max_wait_seconds=1e-4,
                               max_queue=256),
            cache=cache)
        a = points[0].copy()
        b = a + 0.004  # same bucket at decimals=1, different vector
        trace = [QueryRequest(request_id=0, queries=a[None, :],
                              arrival_seconds=0.0),
                 QueryRequest(request_id=1, queries=b[None, :],
                              arrival_seconds=10e-3)]
        return engine, trace

    def test_collision_rejects_counted_through_the_report(
            self, small_graph, small_points):
        cache = ResultCache(capacity=64, decimals=1)
        engine, trace = self._engine_and_trace(small_graph, small_points,
                                               cache)
        assert quantize_query(trace[0].queries[0], 1) == \
            quantize_query(trace[1].queries[0], 1)
        report = engine.replay(trace)

        # The colliding lookup must recompute, never serve the cached
        # neighbor list of a different vector — and the reject must be
        # visible in the report's cache statistics.
        assert report.n_cache_hits == 0
        assert report.cache_stats is cache.stats
        assert report.cache_stats.collisions >= 1
        assert report.cache_stats.insertions >= 2
        assert "collision-rejects" in report.summary()

    def test_exact_repeat_still_hits_and_counts(self, small_graph,
                                                small_points):
        from repro.serve import QueryRequest

        cache = ResultCache(capacity=64, decimals=1)
        engine, trace = self._engine_and_trace(small_graph, small_points,
                                               cache)
        # The bucket's current occupant is the *latest* insertion
        # (request 1's vector displaced request 0's), so only an exact
        # repeat of that vector hits.
        repeat = QueryRequest(request_id=2,
                              queries=trace[1].queries.copy(),
                              arrival_seconds=20e-3)
        report = engine.replay(trace + [repeat])
        assert report.n_cache_hits == 1
        assert report.cache_stats.hits >= 1
        assert "hits" in report.summary()


class TestCollisionSafety:
    def test_bucket_collision_is_never_served(self):
        """Two distinct vectors in one quantization bucket: the second
        lookup must miss (and count a collision), never return the first
        vector's neighbors."""
        cache = ResultCache(capacity=4, decimals=1)
        a = np.array([0.50001])
        b = np.array([0.50002])  # same bucket at 1 decimal
        assert quantize_query(a, 1) == quantize_query(b, 1)
        _, ids, dists = _entry(20, d=1)
        cache.put(a, SIG, ids, dists)
        assert cache.get(b, SIG) is None
        assert cache.stats.collisions == 1
        # The exact original still hits.
        assert cache.get(a, SIG) is not None


class TestVersionKeyedInvalidation:
    def test_bump_evicts_older_version_entries(self):
        cache = ResultCache(capacity=8)
        q, ids, dists = _entry(1)
        cache.put(q, SIG, ids, dists)
        assert cache.get(q, SIG) is not None
        cache.bump_version()
        assert cache.get(q, SIG) is None
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_explicit_epoch_bump(self):
        cache = ResultCache(capacity=8, version=3)
        q, ids, dists = _entry(2)
        cache.put(q, SIG, ids, dists)
        assert cache.bump_version(7) == 7
        assert cache.version == 7
        assert cache.get(q, SIG) is None

    def test_same_version_bump_is_a_no_op(self):
        cache = ResultCache(capacity=8, version=5)
        q, ids, dists = _entry(3)
        cache.put(q, SIG, ids, dists)
        assert cache.bump_version(5) == 5
        assert cache.get(q, SIG) is not None
        assert cache.stats.invalidations == 0

    def test_version_cannot_move_backwards(self):
        cache = ResultCache(capacity=8, version=5)
        with pytest.raises(ConfigurationError, match="backwards"):
            cache.bump_version(4)

    def test_reinsert_after_bump_hits_under_new_version(self):
        cache = ResultCache(capacity=8)
        q, ids, dists = _entry(4)
        cache.put(q, SIG, ids, dists)
        cache.bump_version()
        cache.put(q, SIG, ids, dists)
        got = cache.get(q, SIG)
        assert got is not None
        assert np.array_equal(got[0], ids)
