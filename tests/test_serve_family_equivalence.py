"""Cross-family serving equivalence: NSW and CAGRA behind one engine.

The serving layer must be family-agnostic: replaying the *same* trace
through a :class:`ServeEngine` over an NSW graph and over a CAGRA graph
(same corpus, same search parameters) must

* demux each family's results exactly as a direct ``ganns_search`` over
  that family's graph would (the engine adds batching, never answers),
* reconcile with the metrics registry with zero drift for *both*
  families (:meth:`ServeReport.verify_against_metrics`), and
* never cross-serve cached results between families: the result-cache
  signature carries the family component, so a shared
  :class:`ResultCache` keeps the two engines' entries disjoint even for
  byte-identical queries.
"""

import numpy as np
import pytest

from repro import GannsIndex
from repro.core.ganns import ganns_search
from repro.core.params import BuildParams, SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.serve import (
    BatchPolicy,
    QueryRequest,
    RequestStatus,
    ResultCache,
    ServeEngine,
)

PARAMS = SearchParams(k=5, l_n=32)
POLICY = BatchPolicy(max_batch=8, max_wait_seconds=1e-3, max_queue=128)
FAMILIES = ("nsw", "cagra")

_POINTS = gaussian_mixture(200, 12, n_clusters=5, cluster_std=0.35,
                           intrinsic_dim=5, seed=61)
_QUERIES = gaussian_mixture(24, 12, n_clusters=5, cluster_std=0.35,
                            intrinsic_dim=5, seed=62)

_GRAPHS = {
    family: GannsIndex.build(_POINTS, graph_type=family,
                             params=BuildParams(d_min=8, d_max=16,
                                                seed=3)).graph
    for family in FAMILIES
}


def _trace(queries, spacing=1e-4):
    return [QueryRequest(request_id=i, queries=queries[i:i + 1],
                         arrival_seconds=i * spacing)
            for i in range(len(queries))]


def _engine(family, cache=None):
    return ServeEngine(_GRAPHS[family], _POINTS, PARAMS, policy=POLICY,
                       cache=cache, family=family)


class TestPerFamilyExactness:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_replay_matches_direct_search(self, family):
        report = _engine(family).replay(_trace(_QUERIES))
        direct = ganns_search(_GRAPHS[family], _POINTS, _QUERIES, PARAMS)
        assert report.n_served == len(_QUERIES)
        for i, outcome in enumerate(report.outcomes):
            assert np.array_equal(outcome.ids[0], direct.ids[i])
            assert np.array_equal(outcome.dists[0], direct.dists[i])

    @pytest.mark.parametrize("family", FAMILIES)
    def test_metrics_reconcile_with_zero_drift(self, family):
        report = _engine(family).replay(_trace(_QUERIES))
        assert report.metrics is not None
        report.verify_against_metrics()


class TestFamiliesNeverCrossServe:
    def test_shared_cache_keeps_family_entries_disjoint(self):
        # Same corpus, same queries, same params, one shared cache:
        # the second family must MISS everything the first cached.
        cache = ResultCache(capacity=256)
        repeated = np.concatenate([_QUERIES[:8], _QUERIES[:8]])

        nsw_report = _engine("nsw", cache=cache).replay(
            _trace(repeated, spacing=5e-3))
        nsw_statuses = [o.status for o in nsw_report.outcomes]
        assert nsw_statuses[8:] == [RequestStatus.CACHE_HIT] * 8

        cagra_report = _engine("cagra", cache=cache).replay(
            _trace(repeated, spacing=5e-3))
        statuses = [o.status for o in cagra_report.outcomes]
        # First 8 are fresh SERVED (no cross-family hit on the nsw
        # entries); the repeats then hit cagra's own entries.
        assert statuses[:8] == [RequestStatus.SERVED] * 8
        assert statuses[8:] == [RequestStatus.CACHE_HIT] * 8
        for first, second in zip(cagra_report.outcomes[:8],
                                 cagra_report.outcomes[8:]):
            assert np.array_equal(first.ids, second.ids)

    def test_cache_signatures_differ_only_by_family(self):
        nsw_sig = (_engine("nsw").family,) + PARAMS.signature()
        cagra_sig = (_engine("cagra").family,) + PARAMS.signature()
        assert nsw_sig != cagra_sig
        assert nsw_sig[1:] == cagra_sig[1:]
        assert nsw_sig[0] == "nsw" and cagra_sig[0] == "cagra"
