"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    gaussian_mixture,
    hypersphere_shell,
    uniform_hypercube,
    zipf_clustered,
)
from repro.errors import DatasetError


class TestCommonContracts:
    @pytest.mark.parametrize("generator", [
        gaussian_mixture, zipf_clustered, uniform_hypercube,
        hypersphere_shell,
    ])
    def test_shape_and_dtype(self, generator):
        points = generator(100, 16, seed=0)
        assert points.shape == (100, 16)
        assert points.dtype == np.float32
        assert np.isfinite(points).all()

    @pytest.mark.parametrize("generator", [
        gaussian_mixture, zipf_clustered, uniform_hypercube,
        hypersphere_shell,
    ])
    def test_deterministic_under_seed(self, generator):
        a = generator(50, 8, seed=42)
        b = generator(50, 8, seed=42)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("generator", [
        gaussian_mixture, zipf_clustered, uniform_hypercube,
        hypersphere_shell,
    ])
    def test_seed_changes_output(self, generator):
        a = generator(50, 8, seed=1)
        b = generator(50, 8, seed=2)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("generator", [
        gaussian_mixture, zipf_clustered, uniform_hypercube,
        hypersphere_shell,
    ])
    def test_rejects_bad_sizes(self, generator):
        with pytest.raises(DatasetError):
            generator(0, 8)
        with pytest.raises(DatasetError):
            generator(10, 0)


class TestGaussianMixture:
    def test_rejects_bad_clusters(self):
        with pytest.raises(DatasetError, match="n_clusters"):
            gaussian_mixture(10, 4, n_clusters=0)

    def test_rejects_bad_intrinsic_dim(self):
        with pytest.raises(DatasetError, match="intrinsic_dim"):
            gaussian_mixture(10, 4, intrinsic_dim=8)

    def test_clustered_data_is_not_uniform(self):
        """Nearest-neighbor distances in clustered data are much smaller
        than in uniform data of the same scale."""
        from repro.metrics.distance import EuclideanMetric
        metric = EuclideanMetric()
        clustered = gaussian_mixture(300, 16, n_clusters=8,
                                     cluster_std=0.05, seed=0)
        uniform = uniform_hypercube(300, 16, seed=0)

        def median_nn(points):
            d = metric.pairwise(points, points)
            np.fill_diagonal(d, np.inf)
            return np.median(d.min(axis=1))

        assert median_nn(clustered) < 0.5 * median_nn(uniform)

    def test_intrinsic_dim_controls_effective_rank(self):
        low = gaussian_mixture(500, 64, intrinsic_dim=4,
                               ambient_noise=1e-4, seed=0)
        high = gaussian_mixture(500, 64, intrinsic_dim=32,
                                ambient_noise=1e-4, seed=0)

        def effective_rank(points):
            centered = points - points.mean(axis=0)
            s = np.linalg.svd(centered, compute_uv=False)
            energy = s ** 2 / (s ** 2).sum()
            return np.exp(-(energy * np.log(energy + 1e-12)).sum())

        assert effective_rank(low) < 0.5 * effective_rank(high)


class TestZipfClustered:
    def test_rejects_bad_parameters(self):
        with pytest.raises(DatasetError, match="zipf_exponent"):
            zipf_clustered(10, 4, zipf_exponent=0)
        with pytest.raises(DatasetError, match="anisotropy"):
            zipf_clustered(10, 4, anisotropy=0.5)

    def test_cluster_mass_is_skewed(self):
        """With a strong Zipf exponent, most points concentrate near a few
        dense regions: the pairwise-distance distribution is heavily
        skewed compared to a balanced mixture."""
        skewed = zipf_clustered(1000, 16, n_clusters=32, zipf_exponent=1.5,
                                cluster_std=0.05, seed=0)
        from repro.metrics.distance import EuclideanMetric
        d = EuclideanMetric().pairwise(skewed[:400], skewed[:400])
        np.fill_diagonal(d, np.nan)
        flat = d[~np.isnan(d)]
        # A large fraction of pairs are near-collocated (same dense
        # cluster) while the rest are far: strong bimodality.
        near = (flat < np.nanquantile(flat, 0.5) * 0.1).mean()
        assert near > 0.05


class TestHypersphereShell:
    def test_unit_norm(self):
        points = hypersphere_shell(200, 12, seed=0)
        norms = np.linalg.norm(points.astype(np.float64), axis=1)
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_concentration_tightens_clusters(self):
        tight = hypersphere_shell(200, 12, n_clusters=4,
                                  concentration=100.0, seed=0)
        loose = hypersphere_shell(200, 12, n_clusters=4,
                                  concentration=2.0, seed=0)
        from repro.metrics.distance import CosineMetric
        metric = CosineMetric()

        def median_nn(points):
            d = metric.pairwise(points, points)
            np.fill_diagonal(d, np.inf)
            return np.median(d.min(axis=1))

        assert median_nn(tight) < median_nn(loose)

    def test_rejects_bad_concentration(self):
        with pytest.raises(DatasetError, match="concentration"):
            hypersphere_shell(10, 4, concentration=0)
