"""Property test: the micro-batch scheduler never starves a request.

The scheduler's contract is that ``max_wait_seconds`` bounds queueing:
whatever the arrival pattern — adversarial bursts, long lulls, oversized
requests — every admitted request's batch flushes within ``max_wait`` of
that request's arrival on the simulated clock.  Starvation (a request
stuck behind endless fresh arrivals) would break tail latency silently,
so the bound is checked here against hypothesis-generated traffic.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import BatchPolicy, MicroBatchScheduler, QueryRequest


def arrival_patterns():
    """Adversarial arrival sequences: (gap_microseconds, n_queries).

    Gaps of 0 form bursts; occasional huge gaps leave a lone request
    waiting on the deadline; query counts above ``max_batch`` force the
    oversized-request path.
    """
    return st.lists(
        st.tuples(
            st.one_of(st.just(0), st.integers(0, 50),
                      st.integers(2000, 50_000)),
            st.integers(1, 40),
        ),
        min_size=1, max_size=80)


def _drive(scheduler, pattern):
    """Run one pattern through the scheduler; return (batches, requests)."""
    batches = []
    requests = []
    now = 0.0
    for i, (gap_us, n_queries) in enumerate(pattern):
        now += gap_us * 1e-6
        req = QueryRequest(request_id=i,
                           queries=np.zeros((n_queries, 4)),
                           arrival_seconds=now)
        requests.append(req)
        batches.extend(scheduler.poll(now))
        batches.extend(scheduler.submit(req, now))
    batches.extend(scheduler.drain())
    return batches, requests


class TestNoStarvation:
    @given(arrival_patterns())
    @settings(max_examples=60, deadline=None)
    def test_every_request_flushes_within_max_wait(self, pattern):
        policy = BatchPolicy(max_batch=32, max_wait_seconds=1e-3,
                             max_queue=4096)
        batches, requests = _drive(MicroBatchScheduler(policy), pattern)

        flushed = [req for batch in batches for req in batch.requests]
        assert len(flushed) == len(requests)  # nothing lost or dropped
        for batch in batches:
            for req in batch.requests:
                wait = batch.flush_seconds - req.arrival_seconds
                assert wait <= policy.max_wait_seconds + 1e-12, (
                    f"request {req.request_id} waited {wait} "
                    f"(> {policy.max_wait_seconds}) for batch "
                    f"{batch.index} ({batch.trigger})"
                )

    @given(arrival_patterns())
    @settings(max_examples=40, deadline=None)
    def test_fifo_and_size_bound_hold_under_bursts(self, pattern):
        policy = BatchPolicy(max_batch=32, max_wait_seconds=1e-3,
                             max_queue=4096)
        batches, _ = _drive(MicroBatchScheduler(policy), pattern)

        order = [req.request_id for batch in batches
                 for req in batch.requests]
        assert order == sorted(order)  # globally FIFO
        for batch in batches:
            # A batch only exceeds max_batch when a single oversized
            # request forms it alone (requests are never split).
            if batch.n_queries > policy.max_batch:
                assert batch.n_requests == 1

    def test_worst_case_burst_then_silence(self):
        """A burst that nearly fills a batch followed by silence must
        still flush at the deadline, not wait for traffic."""
        policy = BatchPolicy(max_batch=1000, max_wait_seconds=1e-3,
                             max_queue=4096)
        scheduler = MicroBatchScheduler(policy)
        burst = [(0, 10)] * 50  # 500 queries, below the size trigger
        batches, requests = _drive(scheduler, burst)
        assert len(batches) == 1
        (batch,) = batches
        assert batch.flush_seconds == \
            requests[0].arrival_seconds + policy.max_wait_seconds
