"""Property: anti-entropy repair never changes answers.

For every registered index family, a cluster that loses a replica and
heals it must answer exactly as a cluster that never lost anything:
query digests are byte-identical before the loss and after
re-admission.  Hypothesis drives the trace/plan seeds; the reference
is a fault-free replay of the same engine topology.

Families whose backend cannot produce a serving graph are skipped,
mirroring the conformance suite.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterEngine, ClusterStatus
from repro.core import backend_families
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import UnsupportedOperationError
from repro.faults.plan import FAULT_WORKER_LOSS, FaultEvent, FaultPlan
from repro.heal import HealPolicy
from repro.serve import synthetic_trace

N_POINTS = 240
N_DIMS = 12
PARAMS = SearchParams(k=5, l_n=32)
FAMILIES = backend_families()

#: Engines are expensive to build (per-shard graph construction), so
#: one fault-free engine per family is shared across examples; the
#: faulted engine reuses the same topology with a fresh plan per
#: example (plans are replay state, not build state).
_CLEAN = {}


def _corpus():
    points = gaussian_mixture(N_POINTS, N_DIMS, n_clusters=3,
                              cluster_std=0.4, seed=51)
    pool = gaussian_mixture(24, N_DIMS, n_clusters=3,
                            cluster_std=0.4, seed=52)
    return points, pool


def _build(family):
    points, _ = _corpus()
    try:
        return ClusterEngine(points, n_shards=2, n_replicas=1,
                             params=PARAMS, family=family)
    except UnsupportedOperationError:
        return None


def _clean_engine(family):
    if family not in _CLEAN:
        _CLEAN[family] = _build(family)
    return _CLEAN[family]


def _answers_digest(report, since=0.0, until=float("inf")):
    """Digest over every answer arriving in [since, until)."""
    h = hashlib.sha256()
    for outcome in report.outcomes:
        if not outcome.complete:
            continue
        t = outcome.completion_seconds
        if not since <= t < until:
            continue
        h.update(np.ascontiguousarray(outcome.ids).tobytes())
        h.update(np.ascontiguousarray(outcome.dists).tobytes())
    return h.hexdigest()


@pytest.mark.parametrize("family", FAMILIES)
@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=31))
def test_repair_never_changes_answers(family, seed):
    clean = _clean_engine(family)
    if clean is None:
        pytest.skip(f"family {family!r} has no serving graph")
    _, pool = _corpus()
    trace = synthetic_trace(pool, 100, mean_qps=20_000.0,
                            seed=seed)
    plan = FaultPlan(events=[FaultEvent(
        kind=FAULT_WORKER_LOSS, at_seconds=0.002, magnitude=1.0,
        target=1)], seed=seed)
    healed = ClusterEngine(clean.points, n_shards=2, n_replicas=1,
                           params=PARAMS, family=family, faults=plan,
                           heal=HealPolicy())
    clean.faults = None
    clean_report = clean.replay(trace)
    healed_report = healed.replay(trace)
    assert healed_report.n_repairs == 1
    rec = healed_report.repairs[0]
    assert rec.healed

    # Before the loss: byte-identical answer streams.
    assert _answers_digest(healed_report, until=0.002) == \
        _answers_digest(clean_report, until=0.002)
    # After re-admission (requests *arriving* post-heal): identical
    # again — the rebuilt replica is indistinguishable.
    post = [pos for pos, req in enumerate(trace)
            if req.arrival_seconds > rec.admitted_seconds]
    assert post, "trace ended before the repair admitted"
    for pos in post:
        a, b = healed_report.outcomes[pos], clean_report.outcomes[pos]
        assert a.status == ClusterStatus.SERVED
        assert a.status == b.status
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.dists, b.dists)
