"""Tests for CPU HNSW construction and the ID-shuffle machinery."""

import numpy as np
import pytest

from repro.baselines.hnsw_cpu import (
    build_hnsw_cpu,
    draw_levels,
    hnsw_entry_descent,
    hnsw_search,
    layer_sizes_from_levels,
    shuffled_order_from_levels,
)
from repro.errors import ConstructionError
from repro.graphs.validation import validate_graph


class TestDrawLevels:
    def test_shape_and_range(self):
        levels = draw_levels(1000, d_min=16, seed=0)
        assert levels.shape == (1000,)
        assert levels.min() >= 0
        assert levels.max() < 16

    def test_geometric_decay(self):
        """Layer populations shrink roughly geometrically — the HNSW
        hierarchy shape."""
        levels = draw_levels(20_000, d_min=16, seed=1)
        sizes = layer_sizes_from_levels(levels)
        assert sizes[0] == 20_000
        for above, below in zip(sizes[1:], sizes[:-1]):
            assert above < below

    def test_deterministic(self):
        assert np.array_equal(draw_levels(100, 16, seed=5),
                              draw_levels(100, 16, seed=5))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConstructionError):
            draw_levels(0, 16)
        with pytest.raises(ConstructionError, match="d_min"):
            draw_levels(10, 1)


class TestShuffledOrder:
    def test_levels_non_increasing_after_shuffle(self):
        levels = draw_levels(500, 8, seed=2)
        order = shuffled_order_from_levels(levels, seed=2)
        reordered = levels[order]
        assert (np.diff(reordered) <= 0).all()

    def test_order_is_permutation(self):
        levels = draw_levels(200, 8, seed=3)
        order = shuffled_order_from_levels(levels, seed=3)
        assert sorted(order.tolist()) == list(range(200))

    def test_prefix_property(self):
        """After the shuffle, layer i's members are exactly the first
        size_i new ids — the paper's addressing trick."""
        levels = draw_levels(300, 8, seed=4)
        order = shuffled_order_from_levels(levels, seed=4)
        sizes = layer_sizes_from_levels(levels)
        reordered = levels[order]
        for layer, size in enumerate(sizes):
            assert (reordered[:size] >= layer).all()
            assert (reordered[size:] < layer).all()


class TestBuildHnswCpu:
    @pytest.fixture(scope="class")
    def built(self, small_points):
        return build_hnsw_cpu(small_points[:400], d_min=4, d_max=8, seed=0)

    def test_layer_structure(self, built):
        graph = built.graph
        assert graph.n_layers >= 2
        assert graph.layer_sizes[0] == 400
        for layer in graph.layers:
            validate_graph(layer)

    def test_bottom_layer_covers_all_points(self, built):
        bottom = built.graph.bottom
        assert (bottom.degrees[:400] > 0).all()

    def test_upper_layers_only_touch_their_prefix(self, built):
        for layer_idx in range(1, built.graph.n_layers):
            layer = built.graph.layers[layer_idx]
            size = built.graph.layer_sizes[layer_idx]
            assert (layer.degrees[size:] == 0).all()
            live = layer.neighbor_ids[layer.neighbor_ids >= 0]
            if live.size:
                assert live.max() < size

    def test_order_is_permutation(self, built):
        assert sorted(built.order.tolist()) == list(range(400))

    def test_counters_accumulate_across_layers(self, built):
        assert built.counters.n_distances > 400

    def test_rejects_empty(self):
        with pytest.raises(ConstructionError, match="non-empty"):
            build_hnsw_cpu(np.zeros((0, 3)), 4, 8)


class TestHnswSearch:
    def test_descent_returns_valid_vertex(self, small_points):
        built = build_hnsw_cpu(small_points[:400], d_min=4, d_max=8, seed=0)
        shuffled = small_points[:400][built.order]
        entry, n_dist = hnsw_entry_descent(built.graph, shuffled,
                                           small_points[401])
        assert 0 <= entry < 400
        assert n_dist >= 1

    def test_search_high_recall(self, small_points, small_queries):
        from repro.datasets.ground_truth import exact_knn
        points = small_points[:400]
        built = build_hnsw_cpu(points, d_min=8, d_max=16, seed=0)
        shuffled = points[built.order]
        gt = exact_knn(shuffled, small_queries[:10], 5)
        hits = 0
        for row in range(10):
            result = hnsw_search(built.graph, shuffled, small_queries[row],
                                 k=5, ef=32)
            hits += len(np.intersect1d(result.ids, gt[row]))
        assert hits / 50 > 0.8
