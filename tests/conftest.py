"""Shared fixtures: small deterministic datasets and pre-built graphs.

Session-scoped so the dozens of search tests share one graph build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.datasets.catalog import load_dataset
from repro.datasets.synthetic import gaussian_mixture


@pytest.fixture(scope="session")
def small_points():
    """800 points, 24 dims, clustered — enough for meaningful recall."""
    return gaussian_mixture(800, 24, n_clusters=8, cluster_std=0.3,
                            intrinsic_dim=8, seed=3)


@pytest.fixture(scope="session")
def small_queries():
    """40 held-out queries from the same distribution."""
    return gaussian_mixture(40, 24, n_clusters=8, cluster_std=0.3,
                            intrinsic_dim=8, seed=4)


@pytest.fixture(scope="session")
def small_dataset():
    """A tiny SIFT-like catalog dataset with cached ground truth."""
    return load_dataset("sift1m", n_points=1000, n_queries=30)


@pytest.fixture(scope="session")
def small_graph(small_points):
    """Sequential-CPU NSW graph over ``small_points`` (d_min=8, d_max=16)."""
    return build_nsw_cpu(small_points, d_min=8, d_max=16).graph


@pytest.fixture(scope="session")
def cosine_points():
    """Unit-norm points for cosine-metric tests."""
    from repro.datasets.synthetic import hypersphere_shell
    return hypersphere_shell(600, 20, n_clusters=10, concentration=6.0,
                             intrinsic_dim=8, seed=5)


@pytest.fixture(scope="session")
def cosine_graph(cosine_points):
    """Cosine-metric NSW graph over ``cosine_points``."""
    return build_nsw_cpu(cosine_points, d_min=8, d_max=16,
                         metric="cosine").graph


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
