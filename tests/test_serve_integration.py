"""End-to-end serving integration: the acceptance-criterion test.

Replays a >= 10k-query synthetic trace through the full serving stack
(admission -> cache -> micro-batching -> stream dispatch -> demux) and
verifies the demultiplexed per-request results are byte-identical to a
single direct :func:`ganns_search` over the same queries — batching,
caching and scheduling must be pure plumbing, never answer-changing.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.serve import (
    BatchPolicy,
    ResultCache,
    ServeEngine,
    synthetic_trace,
)

N_REQUESTS = 10_000


@pytest.fixture(scope="module")
def query_pool():
    """2000 distinct queries from the test-fixture distribution."""
    return gaussian_mixture(2000, 24, n_clusters=8, cluster_std=0.3,
                            intrinsic_dim=8, seed=11)


class TestTenThousandQueryReplay:
    def test_replay_matches_direct_search_exactly(
            self, small_graph, small_points, query_pool):
        params = SearchParams(k=5, l_n=32)
        engine = ServeEngine(
            small_graph, small_points, params,
            policy=BatchPolicy(max_batch=512, max_wait_seconds=2e-3,
                               max_queue=16_384),
            cache=ResultCache(capacity=4096))
        trace = synthetic_trace(query_pool, N_REQUESTS,
                                mean_qps=100_000.0, repeat_fraction=0.3,
                                seed=5)
        report = engine.replay(trace)

        assert report.n_requests == N_REQUESTS
        assert report.n_rejected == 0
        assert report.served_queries >= 10_000

        flat_queries = np.concatenate([r.queries for r in trace], axis=0)
        direct = ganns_search(small_graph, small_points, flat_queries,
                              params)
        offset = 0
        for req in trace:
            outcome = report.outcomes[req.request_id]
            n = req.n_queries
            assert np.array_equal(outcome.ids,
                                  direct.ids[offset:offset + n]), \
                f"request {req.request_id} ids diverge"
            assert np.array_equal(outcome.dists,
                                  direct.dists[offset:offset + n]), \
                f"request {req.request_id} dists diverge"
            offset += n

        # The repeating trace must actually exercise the cache, and
        # cache hits plus dispatched queries must account for every one.
        assert report.n_cache_hits > 0
        assert sum(report.batch_sizes) + report.n_cache_hits \
            == N_REQUESTS
        # Sanity on the summary statistics the CLI prints.
        assert np.isfinite(report.p50_latency)
        assert report.p50_latency <= report.p95_latency \
            <= report.p99_latency
        assert report.qps > 0


class TestServeSimCli:
    def test_serve_sim_smoke(self, capsys):
        code = main(["serve-sim", "sift1m", "--points", "600",
                     "--queries", "80", "--requests", "1500",
                     "--qps", "100000", "--max-batch", "128",
                     "--max-wait-ms", "0.5", "-k", "5", "--l-n", "32",
                     "--d-min", "6", "--d-max", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ServeReport: 1500 requests" in out
        assert "throughput" in out
        assert "p95" in out
        assert "cache" in out

    def test_serve_sim_cache_disabled(self, capsys):
        code = main(["serve-sim", "sift1m", "--points", "500",
                     "--queries", "50", "--requests", "400",
                     "--qps", "50000", "--cache-size", "0",
                     "-k", "5", "--l-n", "32",
                     "--d-min", "6", "--d-max", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate 0.0%" in out

    def test_parser_defaults_meet_acceptance_floor(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["serve-sim"])
        assert args.requests >= 10_000
