"""Tests for the Table I dataset stand-ins."""

import numpy as np
import pytest

from repro.datasets.catalog import (
    DATASET_SPECS,
    Dataset,
    dataset_names,
    load_dataset,
)
from repro.errors import DatasetError


class TestSpecs:
    def test_all_ten_table1_datasets_present(self):
        assert set(dataset_names()) == {
            "sift1m", "gist", "nytimes", "glove200", "uq_v", "msong",
            "notre", "ukbench", "deep", "sift10m",
        }

    def test_dimensions_match_table1(self):
        expected = {"sift1m": 128, "gist": 960, "nytimes": 256,
                    "glove200": 200, "uq_v": 256, "msong": 420,
                    "notre": 128, "ukbench": 128, "deep": 96,
                    "sift10m": 32}
        for name, dims in expected.items():
            assert DATASET_SPECS[name].n_dims == dims

    def test_metrics_match_table1(self):
        for name, spec in DATASET_SPECS.items():
            if name in ("nytimes", "glove200"):
                assert spec.metric == "cosine"
            else:
                assert spec.metric == "euclidean"

    def test_hard_datasets_flagged(self):
        hard = {name for name, spec in DATASET_SPECS.items() if spec.hard}
        assert hard == {"gist", "nytimes", "glove200"}

    def test_scaled_points_preserve_relative_sizes(self):
        sift = DATASET_SPECS["sift1m"].scaled_points(10_000)
        deep = DATASET_SPECS["deep"].scaled_points(10_000)
        sift10m = DATASET_SPECS["sift10m"].scaled_points(10_000)
        assert deep == 8 * sift
        assert sift10m == 10 * sift

    def test_scaled_points_floor(self):
        assert DATASET_SPECS["nytimes"].scaled_points(100) >= 1000


class TestLoadDataset:
    def test_basic_load(self):
        ds = load_dataset("sift1m", n_points=500, n_queries=20)
        assert ds.n_points == 500
        assert ds.n_queries == 20
        assert ds.n_dims == 128
        assert ds.metric_name == "euclidean"

    def test_case_insensitive(self):
        ds = load_dataset("SIFT1M", n_points=100, n_queries=5)
        assert ds.name == "sift1m"

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="valid names"):
            load_dataset("imagenet")

    def test_rejects_bad_sizes(self):
        with pytest.raises(DatasetError):
            load_dataset("sift1m", n_points=0)
        with pytest.raises(DatasetError):
            load_dataset("sift1m", n_points=10, n_queries=0)

    def test_queries_disjoint_from_points(self):
        ds = load_dataset("sift1m", n_points=200, n_queries=50)
        # Different seeds -> no identical rows.
        assert not (ds.points[:, None, :] == ds.queries[None, :, :]).all(
            axis=2).any()

    def test_deterministic(self):
        a = load_dataset("gist", n_points=100, n_queries=5)
        b = load_dataset("gist", n_points=100, n_queries=5)
        assert np.array_equal(a.points, b.points)
        assert np.array_equal(a.queries, b.queries)


class TestDatasetMethods:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("sift1m", n_points=400, n_queries=15)

    def test_ground_truth_shape_and_cache(self, dataset):
        gt = dataset.ground_truth(5)
        assert gt.shape == (15, 5)
        assert dataset.ground_truth(5) is gt  # cached

    def test_ground_truth_is_exact(self, dataset):
        gt = dataset.ground_truth(3)
        metric = dataset.metric
        for row in range(3):
            dists = metric.one_to_many(dataset.queries[row], dataset.points)
            order = np.lexsort((np.arange(len(dists)), dists))
            assert np.array_equal(gt[row], order[:3])

    def test_truncate_dims(self, dataset):
        smaller = dataset.truncate_dims(32)
        assert smaller.n_dims == 32
        assert np.array_equal(smaller.points, dataset.points[:, :32])
        assert smaller.n_points == dataset.n_points

    def test_truncate_dims_bounds(self, dataset):
        with pytest.raises(DatasetError):
            dataset.truncate_dims(0)
        with pytest.raises(DatasetError):
            dataset.truncate_dims(dataset.n_dims + 1)

    def test_subsample(self, dataset):
        sub = dataset.subsample(100, seed=0)
        assert sub.n_points == 100
        assert sub.n_queries == dataset.n_queries
        # Every subsampled point exists in the original.
        assert all((dataset.points == p).all(axis=1).any()
                   for p in sub.points[:5])

    def test_subsample_bounds(self, dataset):
        with pytest.raises(DatasetError):
            dataset.subsample(0)
        with pytest.raises(DatasetError):
            dataset.subsample(dataset.n_points + 1)

    def test_metric_object(self, dataset):
        assert dataset.metric.name == "euclidean"
