"""Smoke tests for the runnable examples.

The two fast examples run end-to-end in-process (guarding the README's
promises); the longer ones are only checked for syntax and a main()
entry point — the benchmark suite already exercises their code paths.
"""

import ast
import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = ["quickstart.py", "gpu_cost_model_tour.py"]


def _example_path(name):
    return os.path.join(EXAMPLES_DIR, name)


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_runs_to_completion(self, name, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", [name])
        runpy.run_path(_example_path(name), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out) > 100  # it narrated something substantial

    def test_quickstart_reports_recall(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        runpy.run_path(_example_path("quickstart.py"),
                       run_name="__main__")
        out = capsys.readouterr().out
        assert "recall@10" in out
        assert "queries/s" in out


class TestAllExamplesWellFormed:
    @pytest.mark.parametrize("name", sorted(
        n for n in os.listdir(EXAMPLES_DIR) if n.endswith(".py")))
    def test_parses_and_has_main(self, name):
        with open(_example_path(name)) as handle:
            source = handle.read()
        tree = ast.parse(source)
        assert ast.get_docstring(tree), f"{name} lacks a docstring"
        function_names = {node.name for node in ast.walk(tree)
                          if isinstance(node, ast.FunctionDef)}
        assert "main" in function_names, f"{name} lacks main()"
        assert 'if __name__ == "__main__":' in source, name

    @pytest.mark.parametrize("name", sorted(
        n for n in os.listdir(EXAMPLES_DIR) if n.endswith(".py")))
    def test_imports_resolve(self, name):
        """Every import in every example must be satisfiable."""
        with open(_example_path(name)) as handle:
            tree = ast.parse(handle.read())
        import importlib
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), \
                        f"{name}: {node.module}.{alias.name}"
