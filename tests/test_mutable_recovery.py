"""Crash-recovery battery: every crash point must recover exactly.

The acceptance bar for the crash-safe mutable index: a ``crash`` fault
at *any* named lifecycle phase loses only volatile state — recovery
from the surviving durable store produces an index whose digest is
byte-identical to a clean replay of the surviving log, with zero
silently wrong answers afterwards.
"""

import numpy as np
import pytest

from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import MutableIndexError, ProcessCrashError
from repro.faults.injector import CrashInjector
from repro.faults.plan import CRASH_PHASES, FAULT_CRASH, FaultEvent, FaultPlan
from repro.mutable import (
    DurableStore,
    MutableIndex,
    clean_replay_digest,
    default_build_params,
    recover,
    run_mutation_sim,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.span import SpanTracer

PARAMS = default_build_params()
SEARCH = SearchParams(k=5, l_n=32)

COMPACTION_CRASH_POINTS = tuple(p for p in CRASH_PHASES
                                if p.startswith("compaction."))
CHECKPOINT_CRASH_POINTS = tuple(p for p in CRASH_PHASES
                                if p.startswith("checkpoint."))


def _corpus(n=100, d=8, seed=0):
    return gaussian_mixture(n, d, n_clusters=5,
                            seed=seed).astype(np.float64)


def _mutated_index():
    """A seed build plus a few mutations — crash-bait state."""
    index = MutableIndex.build(_corpus(), PARAMS)
    index.insert(_corpus(8, seed=7), now=1.0)
    index.delete([3, 15, 40, 104], now=2.0)
    return index


def _injector_for(phase):
    plan = FaultPlan([FaultEvent(kind=FAULT_CRASH, at_seconds=0.0,
                                 phase=phase)])
    return CrashInjector(plan)


class TestCrashBattery:
    """One crash at every named phase; recovery must be exact."""

    @pytest.mark.parametrize("phase", COMPACTION_CRASH_POINTS)
    def test_crash_during_compaction(self, phase):
        index = _mutated_index()
        live_digest = index.digest()
        with pytest.raises(ProcessCrashError) as excinfo:
            index.compact(now=3.0, crash=_injector_for(phase))
        assert excinfo.value.phase == phase
        # The live index is untouched: compaction ran on a shadow.
        assert index.digest() == live_digest
        recovered = recover(index.store)
        assert recovered.digest() == clean_replay_digest(index.store)
        assert recovered.digest() == live_digest
        assert recovered.epoch == index.epoch
        recovered.validate()

    @pytest.mark.parametrize("phase", CHECKPOINT_CRASH_POINTS)
    def test_crash_during_checkpoint(self, phase):
        index = _mutated_index()
        live_digest = index.digest()
        with pytest.raises(ProcessCrashError):
            index.checkpoint(now=3.0, crash=_injector_for(phase))
        assert index.store.checkpoint is None  # nothing half-installed
        recovered = recover(index.store)
        assert recovered.digest() == clean_replay_digest(index.store)
        assert recovered.digest() == live_digest
        recovered.validate()

    @pytest.mark.parametrize("phase", COMPACTION_CRASH_POINTS)
    def test_no_wrong_answers_after_recovery(self, phase):
        index = _mutated_index()
        with pytest.raises(ProcessCrashError):
            index.compact(now=3.0, crash=_injector_for(phase))
        recovered = recover(index.store)
        queries = _corpus(10, seed=21)
        ids, _ = recovered.search(queries, SEARCH)
        returned = ids[ids >= 0]
        assert not np.any(recovered.tombstones[returned])

    def test_serve_replay_over_recovered_index_never_lies(self):
        from repro.serve.engine import ServeEngine
        from repro.serve.trace import synthetic_trace

        index = _mutated_index()
        with pytest.raises(ProcessCrashError):
            index.compact(now=3.0,
                          crash=_injector_for("compaction.rewrite"))
        recovered = recover(index.store)
        engine = ServeEngine.from_snapshot(recovered.snapshot(),
                                           params=SEARCH)
        trace = synthetic_trace(_corpus(15, seed=22), 40,
                                mean_qps=1e4, seed=0)
        report = engine.replay(trace)
        tombstoned = np.flatnonzero(recovered.tombstones)
        for _, (ids, _) in report.results().items():
            returned = ids[ids >= 0]
            assert not np.any(np.isin(returned, tombstoned))

    def test_crash_after_checkpoint_replays_the_tail(self):
        index = _mutated_index()
        index.checkpoint(now=3.0)
        index.insert(_corpus(4, seed=8), now=4.0)
        index.delete([50], now=5.0)
        with pytest.raises(ProcessCrashError):
            index.compact(now=6.0,
                          crash=_injector_for("compaction.commit"))
        recovered = recover(index.store)
        assert recovered.digest() == index.digest()
        assert recovered.last_recovery["from_checkpoint"]
        assert recovered.last_recovery["n_replayed"] == 2

    def test_committed_compaction_survives_a_later_crash(self):
        index = _mutated_index()
        index.compact(now=3.0)
        index.delete([60], now=4.0)
        with pytest.raises(ProcessCrashError):
            index.checkpoint(now=5.0,
                             crash=_injector_for("checkpoint.write"))
        recovered = recover(index.store)
        assert recovered.digest() == index.digest()
        assert np.array_equal(recovered.compacted_tombstones,
                              index.compacted_tombstones)


class TestRecoveryMechanics:
    def test_recovery_without_checkpoint_rebuilds_from_base(self):
        index = _mutated_index()
        recovered = recover(index.store)
        assert recovered.digest() == index.digest()
        assert not recovered.last_recovery["from_checkpoint"]

    def test_recovery_is_idempotent(self):
        index = _mutated_index()
        assert recover(index.store).digest() == \
            recover(index.store).digest()

    def test_empty_store_rejected(self):
        with pytest.raises(MutableIndexError, match="nothing to recover"):
            recover(DurableStore())

    def test_store_without_base_record_rejected(self):
        store = DurableStore(meta={"d_min": 4})
        with pytest.raises(MutableIndexError, match="base-build"):
            recover(store)

    def test_replay_publishes_no_mutate_metrics(self):
        index = _mutated_index()
        metrics = MetricsRegistry()
        recovered = recover(index.store, metrics=metrics)
        assert metrics.value("recovery.runs") == 1
        # Base build comes from record 1; only the two mutations replay.
        assert metrics.value("recovery.replayed_records") == 2
        assert metrics.value("mutate.inserts", default=0.0) == 0.0
        assert recovered.epoch == index.epoch

    def test_recovery_span_validates(self):
        index = _mutated_index()
        tracer = SpanTracer()
        recover(index.store, tracer=tracer, now=10.0)
        tracer.finish()
        tracer.validate()
        (span,) = tracer.find("recovery.replay")
        assert span.attributes["n_replayed"] == 2
        assert span.attributes["from_checkpoint"] == 0


class TestSimulatedChaosWorkload:
    def test_sim_is_byte_deterministic_under_chaos(self):
        def plan():
            return FaultPlan([
                FaultEvent(kind=FAULT_CRASH, at_seconds=4.0,
                           phase="compaction.rewrite"),
                FaultEvent(kind=FAULT_CRASH, at_seconds=13.0,
                           phase="checkpoint.serialize"),
            ], seed=0)

        a = run_mutation_sim(n_points=120, n_ops=20, seed=5,
                             fault_plan=plan())
        b = run_mutation_sim(n_points=120, n_ops=20, seed=5,
                             fault_plan=plan())
        assert a.to_bytes() == b.to_bytes()
        assert a.n_crashes == 2
        assert a.n_recoveries == 2
        assert a.n_wrong_answers == 0

    def test_sim_zero_drift_and_trace_validate(self):
        tracer = SpanTracer()
        metrics = MetricsRegistry()
        plan = FaultPlan([FaultEvent(kind=FAULT_CRASH, at_seconds=5.0,
                                     phase="compaction.repair")])
        report = run_mutation_sim(n_points=120, n_ops=18, seed=2,
                                  fault_plan=plan, tracer=tracer,
                                  metrics=metrics)
        tracer.finish()
        tracer.validate()
        report.verify_against_metrics()
        assert report.final_digest
        assert "crashes" in report.summary()

    def test_chaos_changes_nothing_about_surviving_answers(self):
        """Same workload with and without a crashed compaction: the
        search results agree wherever both issued the same search at
        the same epoch (the crash only aborts the compaction)."""
        plan = FaultPlan([FaultEvent(kind=FAULT_CRASH, at_seconds=5.9,
                                     phase="compaction.scan")])
        calm = run_mutation_sim(n_points=120, n_ops=5, seed=4)
        chaos = run_mutation_sim(n_points=120, n_ops=5, seed=4,
                                 fault_plan=plan)
        # The crash event arms at 5.9s; a 5-op workload never reaches
        # a crash point, so the runs must be identical.
        assert calm.to_bytes() == chaos.to_bytes()
