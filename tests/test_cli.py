"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "sift1m"])
        assert args.graph_type == "nsw"
        assert args.strategy == "ggraphcon"
        assert args.d_max == 32

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_datasets_lists_all_ten(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("sift1m", "gist", "nytimes", "glove200", "uq_v",
                     "msong", "notre", "ukbench", "deep", "sift10m"):
            assert name in out

    def test_device_shows_calibration(self, capsys):
        assert main(["device"]) == 0
        out = capsys.readouterr().out
        assert "Quadro P5000" in out
        assert "time_scale" in out

    def test_build_and_search_round_trip(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        index_path = str(tmp_path / "idx.npz")
        code = main(["build", "sift1m", "--points", "600",
                     "--queries", "20", "--d-min", "6", "--d-max", "12",
                     "--blocks", "8", "-o", index_path])
        assert code == 0
        assert os.path.exists(index_path)
        out = capsys.readouterr().out
        assert "ggraphcon-ganns" in out

        code = main(["search", "sift1m", "--points", "600",
                     "--queries", "20", "-i", index_path, "-k", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recall@5" in out
        assert "queries/s" in out

    def test_tune(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["tune", "sift1m", "--points", "700",
                     "--queries", "20", "--target", "0.5",
                     "--d-min", "8", "--d-max", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "target recall 0.5" in out
        assert "chosen ganns setting" in out

    def test_build_hnsw(self, tmp_path, capsys):
        index_path = str(tmp_path / "hidx.npz")
        code = main(["build", "sift1m", "--points", "500",
                     "--queries", "10", "--graph-type", "hnsw",
                     "--d-min", "6", "--d-max", "12", "--blocks", "4",
                     "-o", index_path])
        assert code == 0
        assert os.path.exists(index_path)
