"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "sift1m"])
        assert args.graph_type == "nsw"
        assert args.strategy == "ggraphcon"
        assert args.d_max == 32

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_datasets_lists_all_ten(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("sift1m", "gist", "nytimes", "glove200", "uq_v",
                     "msong", "notre", "ukbench", "deep", "sift10m"):
            assert name in out

    def test_device_shows_calibration(self, capsys):
        assert main(["device"]) == 0
        out = capsys.readouterr().out
        assert "Quadro P5000" in out
        assert "time_scale" in out

    def test_build_and_search_round_trip(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        index_path = str(tmp_path / "idx.npz")
        code = main(["build", "sift1m", "--points", "600",
                     "--queries", "20", "--d-min", "6", "--d-max", "12",
                     "--blocks", "8", "-o", index_path])
        assert code == 0
        assert os.path.exists(index_path)
        out = capsys.readouterr().out
        assert "ggraphcon-ganns" in out

        code = main(["search", "sift1m", "--points", "600",
                     "--queries", "20", "-i", index_path, "-k", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recall@5" in out
        assert "queries/s" in out

    def test_tune(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["tune", "sift1m", "--points", "700",
                     "--queries", "20", "--target", "0.5",
                     "--d-min", "8", "--d-max", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "target recall 0.5" in out
        assert "chosen ganns setting" in out

    def test_build_hnsw(self, tmp_path, capsys):
        index_path = str(tmp_path / "hidx.npz")
        code = main(["build", "sift1m", "--points", "500",
                     "--queries", "10", "--graph-type", "hnsw",
                     "--d-min", "6", "--d-max", "12", "--blocks", "4",
                     "-o", index_path])
        assert code == 0
        assert os.path.exists(index_path)


class TestErrorHandling:
    """Library errors surface as one stderr line and exit code 2."""

    def test_serve_sim_bad_l_n_exits_2_with_one_line(self, capsys):
        code = main(["serve-sim", "sift1m", "--points", "400",
                     "--queries", "30", "--requests", "100",
                     "--l-n", "63"])  # not a power of two
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro serve-sim: error:")
        assert len(err.strip().splitlines()) == 1

    def test_serve_sim_bad_dataset_exits_2(self, capsys):
        code = main(["serve-sim", "no-such-dataset", "--requests", "10"])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro serve-sim: error:" in err

    def test_chaos_sim_bad_breaker_threshold_exits_2(self, capsys):
        code = main(["chaos-sim", "sift1m", "--points", "400",
                     "--queries", "30", "--requests", "100",
                     "--breaker-threshold", "0"])
        assert code == 2
        assert "repro chaos-sim: error:" in capsys.readouterr().err

    def test_unknown_fault_plan_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos-sim", "--fault-plan",
                                       "apocalypse"])


class TestChaosSim:
    def test_chaos_sim_smoke(self, capsys):
        code = main(["chaos-sim", "sift1m", "--points", "600",
                     "--queries", "80", "--requests", "1500",
                     "--qps", "100000", "--max-batch", "128",
                     "--max-wait-ms", "0.5", "-k", "5", "--l-n", "32",
                     "--d-min", "6", "--d-max", "12",
                     "--fault-plan", "aggressive", "--fault-seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos: plan=aggressive" in out
        assert "FaultReport" in out
        assert "scheduled faults delivered" in out
        assert "report digest" in out

    def test_chaos_sim_digest_is_replay_deterministic(self, capsys):
        argv = ["chaos-sim", "sift1m", "--points", "500",
                "--queries", "50", "--requests", "600",
                "--qps", "100000", "--max-batch", "128",
                "--max-wait-ms", "0.5", "-k", "5", "--l-n", "32",
                "--d-min", "6", "--d-max", "12",
                "--fault-plan", "mild", "--fault-seed", "7"]
        digests = []
        for _ in range(2):
            assert main(argv) == 0
            out = capsys.readouterr().out
            (line,) = [ln for ln in out.splitlines()
                       if "report digest" in ln]
            digests.append(line.split()[2])
        assert digests[0] == digests[1]

    def test_chaos_sim_parser_defaults(self):
        args = build_parser().parse_args(["chaos-sim"])
        assert args.fault_plan == "aggressive"
        assert args.retries == 2
        assert args.deadline_ms > 0
        assert not args.no_governor


class TestMutateSim:
    def test_mutate_sim_smoke(self, capsys):
        code = main(["mutate-sim", "--points", "150", "--dims", "8",
                     "--ops", "12", "--seed", "0",
                     "--compact-every", "4", "--checkpoint-every", "6",
                     "--fault-plan", "compaction-crash",
                     "--fault-seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos: plan=compaction-crash" in out
        assert "MutationReport" in out
        assert "wrong answers" in out
        assert "report digest" in out

    def test_mutate_sim_digest_is_replay_deterministic(self, capsys):
        argv = ["mutate-sim", "--points", "150", "--dims", "8",
                "--ops", "10", "--seed", "3",
                "--fault-plan", "compaction-crash", "--fault-seed", "1"]
        digests = []
        for _ in range(2):
            assert main(argv) == 0
            out = capsys.readouterr().out
            (line,) = [ln for ln in out.splitlines()
                       if "report digest" in ln]
            digests.append(line.split()[2])
        assert digests[0] == digests[1]

    def test_mutate_sim_parser_defaults(self):
        args = build_parser().parse_args(["mutate-sim"])
        assert args.fault_plan == "compaction-crash"
        assert args.ops == 24
        assert args.compact_every == 6
        assert args.checkpoint_every == 9

    def test_mutate_sim_bad_l_n_exits_2(self, capsys):
        code = main(["mutate-sim", "--points", "100", "--ops", "4",
                     "--l-n", "63"])
        assert code == 2
        assert "repro mutate-sim: error:" in capsys.readouterr().err


class TestTrace:
    def test_trace_writes_valid_deterministic_files(self, tmp_path,
                                                    capsys):
        from repro.observability import SpanTracer, parse_chrome_trace

        trace_path = tmp_path / "trace.json"
        chrome_path = tmp_path / "chrome.json"
        argv = ["trace", "sift1m", "--points", "500",
                "--queries", "50", "--requests", "400",
                "--qps", "20000", "--max-batch", "64",
                "--max-wait-ms", "0.5", "-k", "5", "--l-n", "32",
                "--d-min", "6", "--d-max", "12",
                "--fault-plan", "aggressive", "--fault-seed", "0",
                "--output", str(trace_path),
                "--chrome-output", str(chrome_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "trace digest" in out
        assert "spans on" in out

        tracer = SpanTracer.from_json_bytes(trace_path.read_bytes())
        tracer.validate()
        assert tracer.roots()[0].name == "serve.replay"
        parse_chrome_trace(chrome_path.read_bytes())

        first = trace_path.read_bytes()
        assert main(argv) == 0
        capsys.readouterr()
        assert trace_path.read_bytes() == first

    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.fault_plan == "aggressive"
        assert args.output == "trace.json"
        assert args.chrome_output is None
