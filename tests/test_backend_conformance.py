"""Backend conformance: one battery every registered index family passes.

This suite is the contract behind ``register_backend``: a new family is
tested *by registration* — it appears in
:func:`repro.core.backend.backend_families` and every test here runs
against it, parametrized over the registry rather than a hand-kept
list.  Per family, on a small fixed-seed synthetic dataset:

- **build determinism** — same seed twice gives a byte-identical graph
  digest;
- **persistence** — ``save``/``load`` round-trips the graph digest and
  the search results;
- **structure** — the (bottom-layer) graph passes
  :func:`validate_graph` and clears the family's reachability floor;
- **recall** — recall@10 clears the family's declared floor;
- **cost-model reconciliation** — the backend's cycle hooks agree with
  the tracker and with the simulated-seconds inverse, with zero drift
  through the observability bridge;
- **exactness at saturation** — with ``l_n >= n`` over a fully
  reachable graph, GANNS search *is* brute force (families that permit
  disconnection opt out via their profile).

Thresholds come from each backend's
:meth:`~repro.core.backend.IndexBackend.conformance_profile`, so a
family can be honest about weaker guarantees (the plain KNN digraph)
without weakening anyone else's contract.
"""

import os
import tempfile

import numpy as np
import pytest

from repro import GannsIndex
from repro.core import backend_families, get_backend
from repro.core.params import BuildParams
from repro.datasets.ground_truth import exact_knn
from repro.datasets.synthetic import gaussian_mixture
from repro.graphs import HierarchicalGraph, validate_graph
from repro.graphs.stats import graph_digest, reachable_fraction
from repro.gpusim import DEFAULT_COSTS, QUADRO_P5000
from repro.metrics import recall_at_k
from repro.observability import MetricsRegistry
from repro.observability.bridge import (
    KERNEL_CYCLES_PREFIX,
    publish_tracker_totals,
)

N_POINTS = 220
N_QUERIES = 32
N_DIMS = 16
K = 10
L_N = 64
#: Smallest power of two >= N_POINTS: the search pool covers the graph.
SATURATING_L_N = 256
SEED = 7

FAMILIES = backend_families()

#: One build per family, shared across the battery (builds dominate
#: this suite's wall clock; every test below is read-only on these).
_CACHE = {}


def _dataset():
    points = gaussian_mixture(N_POINTS, N_DIMS, n_clusters=6,
                              cluster_std=0.3, intrinsic_dim=6, seed=41)
    queries = gaussian_mixture(N_QUERIES, N_DIMS, n_clusters=6,
                               cluster_std=0.3, intrinsic_dim=6, seed=42)
    return points, queries


def _build(family):
    profile = get_backend(family).conformance_profile()
    points, _ = _dataset()
    params = BuildParams(d_min=8, d_max=16, seed=SEED)
    return GannsIndex.build(points, graph_type=family, params=params,
                            **profile.build_kwargs)


def _built(family):
    if family not in _CACHE:
        _CACHE[family] = _build(family)
    return _CACHE[family]


def _bottom(graph):
    return graph.bottom if isinstance(graph, HierarchicalGraph) else graph


@pytest.mark.parametrize("family", FAMILIES)
class TestBackendConformance:
    def test_build_is_deterministic(self, family):
        digest_a = graph_digest(_built(family).graph)
        digest_b = graph_digest(_build(family).graph)
        assert digest_a == digest_b, (
            f"family {family!r}: same seed produced different graphs"
        )

    def test_save_load_round_trip(self, family):
        index = _built(family)
        _, queries = _dataset()
        before_ids, before_dists = index.search(queries, k=K, l_n=L_N)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, f"{family}.npz")
            index.save(path)
            loaded = GannsIndex.load(path)
        assert loaded.graph_type == family
        assert graph_digest(loaded.graph) == graph_digest(index.graph)
        after_ids, after_dists = loaded.search(queries, k=K, l_n=L_N)
        assert after_ids.tobytes() == before_ids.tobytes()
        assert after_dists.tobytes() == before_dists.tobytes()

    def test_graph_validates_and_is_reachable(self, family):
        index = _built(family)
        profile = index.backend.conformance_profile()
        flat = _bottom(index.graph)
        validate_graph(flat)
        reachable = reachable_fraction(flat)
        assert reachable >= profile.reachable_floor, (
            f"family {family!r}: only {reachable:.3f} of vertices "
            f"reachable (floor {profile.reachable_floor})"
        )

    def test_recall_clears_family_floor(self, family):
        index = _built(family)
        profile = index.backend.conformance_profile()
        points, queries = _dataset()
        ids, _ = index.search(queries, k=K, l_n=L_N)
        recall = recall_at_k(ids, exact_knn(points, queries, K))
        assert recall >= profile.recall_floor, (
            f"family {family!r}: recall@{K} {recall:.3f} below floor "
            f"{profile.recall_floor}"
        )

    def test_cost_model_reconciles(self, family):
        index = _built(family)
        backend = index.backend
        _, queries = _dataset()
        report = index.search_report(queries, k=K, l_n=L_N)

        # Search cycles are exactly the tracker total, which is exactly
        # the sum of its per-phase lanes.
        cycles = backend.search_cycles(report)
        assert cycles == report.tracker.total_cycles()
        assert cycles == pytest.approx(
            sum(report.tracker.phase_totals().values()), rel=1e-12)
        assert cycles > 0

        # Publishing through the observability bridge drifts by zero:
        # the counters re-add to the same total.
        registry = MetricsRegistry()
        publish_tracker_totals(registry, report.tracker)
        total_key = KERNEL_CYCLES_PREFIX.rstrip(".") + "_total"
        assert registry.value(total_key) == pytest.approx(cycles, rel=1e-12)

        # Construction cycles invert the simulated clock exactly.
        build = index.build_report
        cycles = backend.construction_cycles(build, QUADRO_P5000,
                                             DEFAULT_COSTS)
        seconds = cycles * DEFAULT_COSTS.time_scale / QUADRO_P5000.clock_hz
        assert seconds == pytest.approx(build.seconds, rel=1e-12)
        assert backend.memory_bytes(index.graph) > 0

    def test_quantized_recall_within_family_floor(self, family):
        """Staged search holds recall for every declared quant mode.

        The quantized traversal is lossy, so instead of id equality the
        profile declares ``quant_recall_delta`` — how much recall@10
        the family may lose to compressed traversal + exact rerank on
        this fixture.  Quantized results must also be deterministic and
        report exact (full-precision) distances for the ids they pick.
        """
        index = _built(family)
        profile = index.backend.conformance_profile()
        points, queries = _dataset()
        exact_ids, _ = index.search(queries, k=K, l_n=L_N, quant="off")
        truth = exact_knn(points, queries, K)
        exact_recall = recall_at_k(exact_ids, truth)
        for mode in profile.quant_modes:
            ids, dists = index.search(queries, k=K, l_n=L_N, quant=mode)
            again_ids, again_dists = index.search(queries, k=K, l_n=L_N,
                                                  quant=mode)
            assert ids.tobytes() == again_ids.tobytes(), (
                f"family {family!r}: quant={mode} ids not deterministic"
            )
            assert dists.tobytes() == again_dists.tobytes(), (
                f"family {family!r}: quant={mode} dists not "
                f"deterministic"
            )
            recall = recall_at_k(ids, truth)
            assert recall >= exact_recall - profile.quant_recall_delta, (
                f"family {family!r}: quant={mode} recall@{K} "
                f"{recall:.3f} fell more than "
                f"{profile.quant_recall_delta} below exact "
                f"{exact_recall:.3f}"
            )

    def test_exact_at_saturating_pool(self, family):
        index = _built(family)
        profile = index.backend.conformance_profile()
        flat = _bottom(index.graph)
        if not (profile.exact_at_saturation
                and reachable_fraction(flat) == 1.0):
            pytest.skip(f"family {family!r} does not pin exactness at "
                        f"saturation")
        points, queries = _dataset()
        ids, _ = index.search(queries, k=K, l_n=SATURATING_L_N)
        truth = exact_knn(points, queries, K)
        assert recall_at_k(ids, truth) == 1.0, (
            f"family {family!r}: saturating search (l_n={SATURATING_L_N} "
            f">= n={N_POINTS}) must equal brute force"
        )


def test_new_families_are_covered_by_registration():
    """The suite parametrizes over the live registry, not a frozen list."""
    assert set(FAMILIES) >= {"nsw", "hnsw", "knn", "cagra"}
    assert FAMILIES == backend_families()
