"""Tests for the SONG baseline (three-stage GPU search)."""

import numpy as np
import pytest

from repro.baselines.beam import beam_search
from repro.baselines.song import SongParams, song_search
from repro.errors import ConfigurationError, SearchError
from repro.gpusim.tracker import PhaseCategory
from repro.metrics.recall import recall_at_k


class TestParams:
    def test_defaults_valid(self):
        params = SongParams()
        assert params.pq_bound >= params.k

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError, match="k"):
            SongParams(k=0)

    def test_rejects_pq_below_k(self):
        with pytest.raises(ConfigurationError, match="pq_bound"):
            SongParams(k=10, pq_bound=5)

    def test_rejects_bad_threads(self):
        with pytest.raises(ConfigurationError, match="n_threads"):
            SongParams(n_threads=0)


class TestSearchBehaviour:
    def test_results_match_beam_search(self, small_graph, small_points,
                                       small_queries):
        """SONG keeps Algorithm 1's data structures; with matching queue
        bound its results must match the CPU beam search."""
        report = song_search(small_graph, small_points, small_queries[:8],
                             SongParams(k=5, pq_bound=32))
        for row in range(8):
            reference = beam_search(small_graph, small_points,
                                    small_queries[row], k=5, ef=32)
            assert np.array_equal(report.ids[row][:len(reference.ids)],
                                  reference.ids)

    def test_recall_improves_with_pq_bound(self, small_graph, small_points,
                                           small_queries):
        from repro.datasets.ground_truth import exact_knn
        gt = exact_knn(small_points, small_queries, 10)
        r_small = recall_at_k(
            song_search(small_graph, small_points, small_queries,
                        SongParams(k=10, pq_bound=10)).ids, gt)
        r_large = recall_at_k(
            song_search(small_graph, small_points, small_queries,
                        SongParams(k=10, pq_bound=64)).ids, gt)
        assert r_large > r_small

    def test_no_distance_recomputation(self, small_graph, small_points,
                                       small_queries):
        """SONG's visited hash means distances never repeat: the count is
        bounded by queries x vertices."""
        report = song_search(small_graph, small_points, small_queries[:4],
                             SongParams(k=5, pq_bound=32))
        assert (report.n_distance_computations
                <= 4 * small_graph.n_vertices)

    def test_dists_sorted(self, small_graph, small_points, small_queries):
        report = song_search(small_graph, small_points, small_queries[:4],
                             SongParams(k=8, pq_bound=16))
        live = report.dists[np.isfinite(report.dists).all(axis=1)]
        assert (np.diff(live, axis=1) >= 0).all()

    def test_cosine_metric(self, cosine_graph, cosine_points):
        report = song_search(cosine_graph, cosine_points,
                             cosine_points[:5], SongParams(k=3, pq_bound=64))
        # A point's own id must be its nearest neighbor under cosine.
        assert np.array_equal(report.ids[:, 0], np.arange(5))

    def test_per_query_entry_array(self, small_graph, small_points,
                                   small_queries):
        entries = np.arange(4)
        report = song_search(small_graph, small_points, small_queries[:4],
                             SongParams(k=5, pq_bound=16), entry=entries)
        assert report.ids.shape == (4, 5)


class TestCostAccounting:
    def test_structure_dominates(self, small_graph, small_points,
                                 small_queries):
        """The paper's observation: 50-90%+ of SONG's time is structure
        operations (here at moderate dimensionality)."""
        report = song_search(small_graph, small_points, small_queries[:8],
                             SongParams(k=10, pq_bound=32))
        assert report.structure_fraction() > 0.5

    def test_phase_categories_registered(self, small_graph, small_points,
                                         small_queries):
        report = song_search(small_graph, small_points, small_queries[:2],
                             SongParams(k=5, pq_bound=16))
        totals = report.tracker.category_totals()
        assert PhaseCategory.DISTANCE in totals
        assert PhaseCategory.STRUCTURE in totals

    def test_structure_time_ignores_thread_count(self, small_graph,
                                                 small_points,
                                                 small_queries):
        """Host-thread serialization: SONG's structure cycles must not
        change with n_t (Figure 10's flat curve)."""
        lo = song_search(small_graph, small_points, small_queries[:4],
                         SongParams(k=5, pq_bound=16, n_threads=4))
        hi = song_search(small_graph, small_points, small_queries[:4],
                         SongParams(k=5, pq_bound=16, n_threads=32))
        lo_struct = lo.tracker.category_totals()[PhaseCategory.STRUCTURE]
        hi_struct = hi.tracker.category_totals()[PhaseCategory.STRUCTURE]
        assert lo_struct == pytest.approx(hi_struct)

    def test_distance_time_scales_with_threads(self, small_graph,
                                               small_points, small_queries):
        lo = song_search(small_graph, small_points, small_queries[:4],
                         SongParams(k=5, pq_bound=16, n_threads=4))
        hi = song_search(small_graph, small_points, small_queries[:4],
                         SongParams(k=5, pq_bound=16, n_threads=32))
        lo_dist = lo.tracker.category_totals()[PhaseCategory.DISTANCE]
        hi_dist = hi.tracker.category_totals()[PhaseCategory.DISTANCE]
        assert hi_dist < lo_dist


class TestValidation:
    def test_rejects_1d_queries(self, small_graph, small_points):
        with pytest.raises(SearchError, match="2-D"):
            song_search(small_graph, small_points, small_points[0],
                        SongParams(k=3))

    def test_rejects_dim_mismatch(self, small_graph, small_points):
        with pytest.raises(SearchError, match="disagree"):
            song_search(small_graph, small_points, np.zeros((2, 3)),
                        SongParams(k=3))

    def test_rejects_empty_queries(self, small_graph, small_points):
        with pytest.raises(SearchError, match="empty"):
            song_search(small_graph, small_points,
                        np.zeros((0, small_points.shape[1])),
                        SongParams(k=3))

    def test_rejects_bad_entry(self, small_graph, small_points,
                               small_queries):
        with pytest.raises(SearchError, match="entry"):
            song_search(small_graph, small_points, small_queries[:2],
                        SongParams(k=3), entry=10 ** 6)


class TestVisitedDeletion:
    """SONG's fixed-2k-hash visited-deletion optimization."""

    def test_recall_preserved(self, small_graph, small_points,
                              small_queries):
        from repro.datasets.ground_truth import exact_knn
        gt = exact_knn(small_points, small_queries, 10)
        plain = song_search(small_graph, small_points, small_queries,
                            SongParams(k=10, pq_bound=32))
        deleting = song_search(small_graph, small_points, small_queries,
                               SongParams(k=10, pq_bound=32,
                                          visited_deletion=True))
        assert recall_at_k(deleting.ids, gt) == pytest.approx(
            recall_at_k(plain.ids, gt), abs=0.05)

    def test_revisits_cost_extra_distances(self, small_graph,
                                           small_points, small_queries):
        """Deleting evicted entries means some vertices are visited (and
        distance-computed) more than once — the memory/work trade."""
        plain = song_search(small_graph, small_points, small_queries,
                            SongParams(k=10, pq_bound=16))
        deleting = song_search(small_graph, small_points, small_queries,
                               SongParams(k=10, pq_bound=16,
                                          visited_deletion=True))
        assert (deleting.n_distance_computations
                >= plain.n_distance_computations)

    def test_memory_stays_bounded(self, small_graph, small_points,
                                  small_queries):
        """With deletion, H never holds more than |N| + |C| <= 2 x bound
        entries — checked indirectly: the option is exactly what makes
        the paper's 'fixed size 2k' claim true, and the search still
        terminates and returns full results."""
        report = song_search(small_graph, small_points, small_queries[:8],
                             SongParams(k=5, pq_bound=8,
                                        visited_deletion=True))
        assert (report.ids[:, 0] >= 0).all()

    def test_requires_hash_strategy(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="hash"):
            SongParams(visited_strategy="bloom", visited_deletion=True)
