"""Unit tests for the span tracer: API misuse, lanes, serialization.

The invariant suite exercises the tracer through full chaos replays;
these tests pin the contract edge by edge — every documented misuse
raises :class:`ObservabilityError`, lane groups pack deterministically,
and the canonical encoding survives a round trip bit-for-bit.
"""

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    DEFAULT_LANE,
    SpanTracer,
    jsonable_scalar,
)


class TestScalarCoercion:
    def test_plain_scalars_pass_through(self):
        assert jsonable_scalar(None) is None
        assert jsonable_scalar(True) is True
        assert jsonable_scalar(3) == 3
        assert jsonable_scalar(2.5) == 2.5
        assert jsonable_scalar("x") == "x"

    def test_numpy_scalars_are_coerced(self):
        assert jsonable_scalar(np.int64(7)) == 7
        assert isinstance(jsonable_scalar(np.int64(7)), int)
        assert jsonable_scalar(np.float64(0.5)) == 0.5
        assert isinstance(jsonable_scalar(np.float64(0.5)), float)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_floats_are_rejected(self, bad):
        with pytest.raises(ObservabilityError, match="non-finite"):
            jsonable_scalar(bad)

    def test_compound_values_are_rejected(self):
        with pytest.raises(ObservabilityError, match="not a JSON"):
            jsonable_scalar([1, 2])


class TestTracerMisuse:
    def test_double_close_raises(self):
        tracer = SpanTracer()
        span = tracer.begin("a", 0.0)
        tracer.end(span, 1.0)
        with pytest.raises(ObservabilityError, match="not open"):
            tracer.end(span, 2.0)

    def test_end_before_start_raises_and_keeps_span_open(self):
        tracer = SpanTracer()
        span = tracer.begin("a", 5.0)
        with pytest.raises(ObservabilityError, match="before its start"):
            tracer.end(span, 4.0)
        assert tracer.n_open == 1
        tracer.end(span, 5.0)  # still closable afterwards

    def test_unknown_parent_raises(self):
        tracer = SpanTracer()
        with pytest.raises(ObservabilityError, match="unknown parent"):
            tracer.begin("a", 0.0, parent_id=99)

    def test_event_outside_interval_raises(self):
        tracer = SpanTracer()
        span = tracer.add("a", 1.0, 2.0)
        with pytest.raises(ObservabilityError, match="outside"):
            tracer.event(span, 3.0, "late")

    def test_finish_with_open_span_names_the_leak(self):
        tracer = SpanTracer()
        tracer.begin("leaky", 0.0)
        with pytest.raises(ObservabilityError, match="leaky"):
            tracer.finish()

    def test_recording_after_finish_raises(self):
        tracer = SpanTracer()
        tracer.finish()
        with pytest.raises(ObservabilityError, match="finished"):
            tracer.begin("a", 0.0)

    def test_lane_and_lane_group_are_exclusive(self):
        tracer = SpanTracer()
        with pytest.raises(ObservabilityError, match="not both"):
            tracer.begin("a", 0.0, lane="x", lane_group="g")


class TestLaneAllocation:
    def test_children_inherit_the_parent_lane(self):
        tracer = SpanTracer()
        root = tracer.begin("root", 0.0, lane="engine")
        child = tracer.add("child", 0.0, 1.0, parent_id=root)
        assert tracer.spans[child].lane == "engine"
        tracer.end(root, 1.0)

    def test_root_without_lane_gets_the_default(self):
        tracer = SpanTracer()
        span = tracer.add("a", 0.0, 1.0)
        assert tracer.spans[span].lane == DEFAULT_LANE

    def test_overlapping_group_spans_get_distinct_lanes(self):
        tracer = SpanTracer()
        a = tracer.begin("a", 0.0, lane_group="requests")
        b = tracer.begin("b", 0.5, lane_group="requests")
        assert tracer.spans[a].lane == "requests/0"
        assert tracer.spans[b].lane == "requests/1"
        tracer.end(a, 1.0)
        tracer.end(b, 2.0)
        # Lane 0 freed at t=1: the next span at t>=1 reuses it.
        c = tracer.begin("c", 1.5, lane_group="requests")
        assert tracer.spans[c].lane == "requests/0"
        tracer.end(c, 2.0)
        tracer.finish()
        tracer.validate()

    def test_open_group_span_blocks_its_lane(self):
        tracer = SpanTracer()
        a = tracer.begin("a", 0.0, lane_group="g")
        b = tracer.begin("b", 100.0, lane_group="g")
        # Lane g/0 is busy-until-inf while "a" stays open, whatever
        # the later start time.
        assert tracer.spans[b].lane == "g/1"
        tracer.end(a, 200.0)
        tracer.end(b, 200.0)


class TestSerialization:
    def _sample(self):
        tracer = SpanTracer()
        root = tracer.begin("root", 0.0, lane="engine",
                            attributes={"n": 2, "σ": "uni©ode"})
        tracer.event(root, 0.5, "tick", {"ok": True})
        tracer.add("child", 0.25, 0.75, parent_id=root)
        tracer.end(root, 1.0)
        tracer.finish()
        return tracer

    def test_round_trip_is_byte_identical(self):
        tracer = self._sample()
        payload = tracer.to_json_bytes()
        clone = SpanTracer.from_json_bytes(payload)
        assert clone.to_json_bytes() == payload
        assert clone.digest() == tracer.digest()

    def test_encoding_is_ascii(self):
        self._sample().to_json_bytes().decode("ascii")

    def test_open_span_cannot_serialize_into_a_valid_trace(self):
        tracer = SpanTracer()
        tracer.begin("open", 0.0)
        payload = tracer.to_json_bytes()
        with pytest.raises(ObservabilityError, match="open"):
            SpanTracer.from_json_bytes(payload)

    def test_unknown_format_is_rejected(self):
        with pytest.raises(ObservabilityError, match="format"):
            SpanTracer.from_dict({"format": "not-a-trace", "spans": []})

    def test_malformed_json_is_rejected(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            SpanTracer.from_json_bytes(b"{nope")

    def test_validate_catches_escaping_child(self):
        tracer = SpanTracer()
        root = tracer.begin("root", 0.0)
        tracer.add("child", 0.2, 0.8, parent_id=root)
        tracer.end(root, 1.0)
        tracer.finish()
        # Corrupt the tree behind the API's back, as a tampered trace
        # file would: the child now outlives its parent.
        clone = SpanTracer.from_json_bytes(tracer.to_json_bytes())
        clone.spans[1].end_seconds = 2.0
        with pytest.raises(ObservabilityError, match="escapes"):
            clone.validate()
