"""Tests for construction-time search pricing."""

import numpy as np
import pytest

from repro.baselines.beam import BeamSearchResult
from repro.core.construction_costs import price_search
from repro.errors import ConfigurationError
from repro.gpusim.costs import DEFAULT_COSTS


def _traversal(n_iterations=40, n_scanned=600, n_fresh=250):
    return BeamSearchResult(
        ids=np.arange(5), dists=np.zeros(5),
        n_iterations=n_iterations,
        n_distance_computations=n_fresh,
        n_heap_ops=3 * n_fresh,
        n_hash_probes=n_scanned,
    )


class TestPriceSearch:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError, match="valid kernels"):
            price_search("cuda", _traversal(), 32, 32, 128, 32, 32,
                         DEFAULT_COSTS)

    def test_ganns_charges_all_scanned_distances(self):
        charge = price_search("ganns", _traversal(), 32, 32, 128, 32, 32,
                              DEFAULT_COSTS)
        per_vector = DEFAULT_COSTS.single_distance_cycles(128, 32)
        assert charge.distance_cycles == pytest.approx(601 * per_vector)

    def test_song_charges_only_fresh_distances(self):
        charge = price_search("song", _traversal(), 32, 32, 128, 32, 32,
                              DEFAULT_COSTS)
        per_vector = DEFAULT_COSTS.single_distance_cycles(128, 32)
        assert charge.distance_cycles == pytest.approx(251 * per_vector)

    def test_song_structure_exceeds_ganns_structure(self):
        traversal = _traversal()
        ganns = price_search("ganns", traversal, 32, 32, 128, 32, 32,
                             DEFAULT_COSTS)
        song = price_search("song", traversal, 32, 32, 128, 32, 32,
                            DEFAULT_COSTS)
        assert song.structure_cycles > 2 * ganns.structure_cycles

    def test_song_total_exceeds_ganns_total_at_moderate_dims(self):
        """The reason GGC_GANNS beats GGC_SONG in Tables II/III."""
        traversal = _traversal()
        ganns = price_search("ganns", traversal, 32, 32, 128, 32, 32,
                             DEFAULT_COSTS)
        song = price_search("song", traversal, 32, 32, 128, 32, 32,
                            DEFAULT_COSTS)
        assert song.total > ganns.total

    def test_total_is_sum(self):
        charge = price_search("ganns", _traversal(), 32, 32, 128, 32, 32,
                              DEFAULT_COSTS)
        assert charge.total == pytest.approx(
            charge.distance_cycles + charge.structure_cycles)

    def test_ganns_structure_scales_with_iterations(self):
        short = price_search("ganns", _traversal(n_iterations=10), 32, 32,
                             128, 32, 32, DEFAULT_COSTS)
        long = price_search("ganns", _traversal(n_iterations=100), 32, 32,
                            128, 32, 32, DEFAULT_COSTS)
        assert long.structure_cycles == pytest.approx(
            10 * short.structure_cycles)
