"""Property-based guarantees of the quantized staged search.

The staged pipeline (``docs/quantization.md``) is lossy by design, so
its contract is not id equality but a set of bounds this suite pins
with Hypothesis:

- **int8 round-trip** — the affine dequantization lands within half a
  quantization step per dimension, for arbitrary data scales and
  offsets (including constant dimensions);
- **exactness at saturation** — with ``l_n >= n`` over a fully
  reachable graph, the compressed traversal visits everything and the
  exact rerank restores brute force *exactly*, for every mode;
- **pool overlap** — at working pool widths the staged top-k keeps a
  floor of the exact top-k (the rerank can only choose from what the
  compressed walk retained, so this bounds the whole pipeline's loss);
- **cache isolation** — a result cache shared between an exact and a
  quantized serving engine never lets one answer the other: the quant
  mode is folded into the cache signature.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.ground_truth import exact_knn
from repro.datasets.synthetic import gaussian_mixture
from repro.graphs.stats import reachable_fraction
from repro.perf.quant import QUANT_MODES, quantize_points
from repro.serve.cache import ResultCache
from repro.serve.engine import ServeEngine
from repro.serve.scheduler import BatchPolicy
from repro.serve.trace import synthetic_trace

K = 10

#: One small, fully reachable graph shared by the search properties
#: (builds dominate the suite's wall clock; everything here is
#: read-only on it).
_FIXTURE = {}


def _fixture():
    if not _FIXTURE:
        points = gaussian_mixture(150, 24, n_clusters=5, cluster_std=0.3,
                                  intrinsic_dim=6, seed=11)
        points = points.astype(np.float32)
        graph = build_nsw_cpu(points, d_min=8, d_max=16).graph
        assert reachable_fraction(graph) == 1.0
        _FIXTURE["points"] = points
        _FIXTURE["graph"] = graph
    return _FIXTURE["graph"], _FIXTURE["points"]


class TestInt8RoundTrip:
    @given(seed=st.integers(0, 10_000),
           n=st.integers(2, 40), d=st.integers(1, 24),
           scale=st.floats(1e-3, 1e3),
           offset=st.floats(-100.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_error_within_half_step(self, seed, n, d, scale, offset):
        rng = np.random.default_rng(seed)
        source = (rng.standard_normal((n, d)) * scale + offset) \
            .astype(np.float32)
        table = quantize_points(source, "int8")
        err = np.abs(table.dequantize() - source)
        # Half a quantization step per dimension, plus float32 slack on
        # the affine reconstruction.
        bound = 0.5 * table.scales + 1e-4 * (1.0 + np.abs(table.betas))
        assert np.all(err <= bound), (
            f"worst error {err.max()} exceeds bound {bound.max()}"
        )

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_constant_dimensions_are_exact(self, seed, n):
        rng = np.random.default_rng(seed)
        source = np.repeat(rng.standard_normal((1, 6)), n, axis=0) \
            .astype(np.float32)
        table = quantize_points(source, "int8")
        assert np.allclose(table.dequantize(), source, atol=1e-5)


class TestExactnessAtSaturation:
    @given(mode=st.sampled_from(QUANT_MODES),
           rerank_factor=st.sampled_from([1, 2, 4]),
           seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_saturating_pool_restores_brute_force(self, mode,
                                                  rerank_factor, seed):
        """l_n >= n + full reachability => staged search IS brute force.

        The explore window covers every vertex and the pool retains
        everything visited, so whatever order the compressed traversal
        walked in, the exact rerank sorts the full corpus — ids and
        distances must equal ``exact_knn`` exactly, for every mode and
        any over-fetch factor.
        """
        graph, points = _fixture()
        queries = gaussian_mixture(8, 24, n_clusters=5, cluster_std=0.4,
                                   intrinsic_dim=6, seed=seed) \
            .astype(np.float32)
        params = SearchParams(k=K, l_n=256, backend="fast", quant=mode,
                              rerank_factor=rerank_factor)
        report = ganns_search(graph, points, queries, params)
        truth_ids, truth_dists = exact_knn(points, queries, K,
                                           return_distances=True)
        np.testing.assert_array_equal(report.ids, truth_ids)
        np.testing.assert_allclose(report.dists, truth_dists, rtol=1e-5)


class TestPoolOverlap:
    @given(mode=st.sampled_from(QUANT_MODES),
           seed=st.integers(0, 1000))
    @settings(max_examples=12, deadline=None)
    def test_staged_topk_overlaps_exact_topk(self, mode, seed):
        """At working pool widths the staged top-k keeps >= 50% of the
        exact top-k (averaged over the batch) — the compressed walk may
        wander, but it must stay in the same neighborhood."""
        graph, points = _fixture()
        queries = gaussian_mixture(16, 24, n_clusters=5, cluster_std=0.4,
                                   intrinsic_dim=6, seed=seed) \
            .astype(np.float32)
        exact = ganns_search(graph, points, queries,
                             SearchParams(k=K, l_n=32, backend="fast"))
        staged = ganns_search(
            graph, points, queries,
            SearchParams(k=K, l_n=32, backend="fast", quant=mode,
                         rerank_factor=2))
        overlaps = [
            len(set(exact.ids[row]) & set(staged.ids[row])) / K
            for row in range(len(queries))
        ]
        assert float(np.mean(overlaps)) >= 0.5, (
            f"quant={mode}: staged top-{K} shares only "
            f"{np.mean(overlaps):.2f} of the exact top-{K}"
        )


class TestCacheIsolation:
    def _replay(self, cache, quant, graph, points, trace):
        engine = ServeEngine(
            graph, points,
            params=SearchParams(k=K, l_n=32, backend="fast",
                                quant=quant),
            policy=BatchPolicy(max_batch=32, max_wait_seconds=0.002,
                               max_queue=4096),
            cache=cache)
        return engine.replay(trace)

    @given(mode=st.sampled_from(QUANT_MODES))
    @settings(max_examples=3, deadline=None)
    def test_shared_cache_never_crosses_quant_boundary(self, mode):
        """Warming a shared cache with exact results must not add a
        single hit to a quantized replay (and vice versa) — the quant
        mode namespaces the cache signature, so a lossy result can
        never answer an exact request.

        The trace repeats queries, so a replay hits entries it inserted
        itself; the cross-mode leak is therefore measured as *extra*
        hits relative to a cold cache, which must be exactly zero.
        """
        graph, points = _fixture()
        pool = gaussian_mixture(20, 24, n_clusters=5, cluster_std=0.4,
                                intrinsic_dim=6, seed=3) \
            .astype(np.float32)
        trace = synthetic_trace(pool, 60, mean_qps=50_000.0,
                                queries_per_request=2, seed=5)

        quant_cold = self._replay(ResultCache(capacity=4096), mode,
                                  graph, points, trace)

        shared = ResultCache(capacity=4096)
        exact_warmup = self._replay(shared, "off", graph, points, trace)
        exact_entries = len(shared)
        assert exact_entries > 0
        quant_warmed = self._replay(shared, mode, graph, points, trace)
        assert quant_warmed.n_cache_hits == quant_cold.n_cache_hits, (
            f"quant={mode} replay gained "
            f"{quant_warmed.n_cache_hits - quant_cold.n_cache_hits} "
            f"hits from exact-path cache entries"
        )

        # And the other direction: quantized entries never answer an
        # exact request — a fully quant-warmed cache leaves the exact
        # replay's hit count at its cold baseline.
        quant_shared = ResultCache(capacity=4096)
        self._replay(quant_shared, mode, graph, points, trace)
        exact_over_quant = self._replay(quant_shared, "off", graph,
                                        points, trace)
        assert (exact_over_quant.n_cache_hits
                == exact_warmup.n_cache_hits), (
            f"exact replay gained hits from quant={mode} entries"
        )
