"""Tests for graph statistics and quality measures."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import ProximityGraph
from repro.graphs.stats import (
    average_out_degree,
    edge_recall_against,
    graph_stats,
    reachable_fraction,
)


def _chain_graph(n=5):
    g = ProximityGraph(n, 2)
    for v in range(n - 1):
        g.insert_edge(v, v + 1, 1.0)
    return g


class TestReachability:
    def test_chain_fully_reachable_from_head(self):
        assert reachable_fraction(_chain_graph(), entry=0) == 1.0

    def test_chain_partially_reachable_from_middle(self):
        assert reachable_fraction(_chain_graph(5), entry=2) == pytest.approx(
            3 / 5)

    def test_disconnected_components(self):
        g = ProximityGraph(4, 2)
        g.insert_edge(0, 1, 1.0)
        g.insert_edge(2, 3, 1.0)
        assert reachable_fraction(g, entry=0) == 0.5

    def test_entry_bounds(self):
        with pytest.raises(GraphError, match="out of range"):
            reachable_fraction(_chain_graph(), entry=9)


class TestEdgeRecall:
    def test_identical_graphs(self):
        g = _chain_graph()
        assert edge_recall_against(g, g.copy()) == 1.0

    def test_missing_edges_lower_recall(self):
        full = _chain_graph(5)
        partial = ProximityGraph(5, 2)
        partial.insert_edge(0, 1, 1.0)
        partial.insert_edge(1, 2, 1.0)
        assert edge_recall_against(partial, full) == pytest.approx(2 / 4)

    def test_extra_edges_do_not_help(self):
        reference = _chain_graph(4)
        candidate = reference.copy()
        candidate.insert_edge(0, 2, 0.5)
        assert edge_recall_against(candidate, reference) == 1.0

    def test_empty_reference(self):
        empty = ProximityGraph(3, 2)
        assert edge_recall_against(_chain_graph(3), empty) == 1.0

    def test_vertex_count_mismatch(self):
        with pytest.raises(GraphError, match="vertex counts"):
            edge_recall_against(_chain_graph(3), _chain_graph(4))


class TestGraphStats:
    def test_summary_fields(self):
        g = _chain_graph(5)
        stats = graph_stats(g)
        assert stats.n_vertices == 5
        assert stats.n_edges == 4
        assert stats.min_degree == 0  # the tail vertex
        assert stats.max_degree == 1
        assert stats.mean_degree == pytest.approx(0.8)
        assert stats.reachable_from_entry == 1.0
        assert stats.memory_bytes == g.memory_bytes()

    def test_average_out_degree(self):
        assert average_out_degree(_chain_graph(5)) == pytest.approx(0.8)
