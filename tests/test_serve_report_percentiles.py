"""Regression tests for ServeReport percentile edge cases.

``np.percentile`` interpolates ``a + gamma * (b - a)`` even when the
bracketing samples are the same value; for a single-request trace whose
latency is ``inf`` (or any all-identical population containing ``inf``)
that evaluates ``inf - inf = nan`` — the report would print ``nan``
percentiles for a perfectly well-defined population.  ``_percentile``
short-circuits the degenerate populations to the exact stored value;
these tests pin both the old failure shapes and the exactness
guarantee the trace↔report reconciliation suite relies on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.report import ServeReport, _percentile
from repro.serve.request import RequestOutcome, RequestStatus


def _served(request_id, latency):
    return RequestOutcome(
        request_id=request_id, arrival_seconds=0.0,
        status=RequestStatus.SERVED,
        ids=np.zeros((1, 1), dtype=np.int64),
        dists=np.zeros((1, 1), dtype=np.float32),
        completion_seconds=latency)


class TestPercentileDegenerateCases:
    def test_empty_population_is_nan(self):
        assert np.isnan(_percentile(np.array([]), 50))

    def test_single_sample_returns_the_exact_value(self):
        for value in (0.0, 3.5e-4, 1e300):
            arr = np.array([value])
            for q in (0, 50, 95, 99, 100):
                assert _percentile(arr, q) == value

    def test_single_infinite_sample_is_inf_not_nan(self):
        # The original bug: lerp on [inf] gave inf + 0*(inf-inf) = nan.
        arr = np.array([np.inf])
        assert _percentile(arr, 95) == np.inf

    def test_all_identical_population_returns_the_stored_value(self):
        for value in (2.25e-3, np.inf):
            arr = np.full(17, value)
            for q in (0, 50, 95, 99, 100):
                assert _percentile(arr, q) == value

    def test_distinct_populations_still_interpolate(self):
        arr = np.array([1.0, 2.0, 3.0, 4.0])
        assert _percentile(arr, 50) == np.percentile(arr, 50)
        assert _percentile(arr, 95) == np.percentile(arr, 95)

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                     allow_nan=False),
                           min_size=1, max_size=50),
           q=st.sampled_from([0, 25, 50, 90, 95, 99, 100]))
    def test_percentile_lies_within_range(self, values, q):
        arr = np.array(values)
        result = _percentile(arr, q)
        assert arr.min() <= result <= arr.max()

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                     allow_nan=False),
                           min_size=1, max_size=50))
    def test_percentiles_are_monotone_in_q(self, values):
        arr = np.array(values)
        results = [_percentile(arr, q) for q in (50, 95, 99)]
        assert results == sorted(results)


class TestServeReportPercentileRegressions:
    def test_single_request_report_percentiles_are_exact(self):
        latency = 7.3e-4
        report = ServeReport(outcomes=[_served(0, latency)])
        assert report.p50_latency == latency
        assert report.p95_latency == latency
        assert report.p99_latency == latency
        assert report.mean_latency == latency

    def test_single_request_with_infinite_latency_is_not_nan(self):
        report = ServeReport(outcomes=[_served(0, np.inf)])
        assert report.p50_latency == np.inf
        assert report.p95_latency == np.inf
        assert report.p99_latency == np.inf

    def test_all_identical_latency_trace_is_exact(self):
        latency = 1.25e-3
        report = ServeReport(
            outcomes=[_served(i, latency) for i in range(9)])
        assert report.p50_latency == latency
        assert report.p95_latency == latency
        assert report.p99_latency == latency

    def test_empty_trace_percentiles_are_nan(self):
        report = ServeReport(outcomes=[])
        assert np.isnan(report.p50_latency)
        assert np.isnan(report.mean_latency)

    def test_summary_renders_the_edge_cases(self):
        # The original symptom was "nan ms" in the printed summary.
        single = ServeReport(outcomes=[_served(0, 5e-4)])
        assert "nan" not in single.summary()
