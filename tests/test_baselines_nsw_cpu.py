"""Tests for sequential CPU NSW construction (GraphCon_NSW)."""

import numpy as np
import pytest

from repro.baselines.nsw_cpu import build_nsw_cpu, exact_prefix_knn
from repro.errors import ConstructionError
from repro.graphs.stats import reachable_fraction
from repro.graphs.validation import validate_graph
from repro.metrics.distance import get_metric


class TestExactPrefixKnn:
    def test_first_vertex_has_no_prefix(self):
        points = np.random.default_rng(0).normal(size=(5, 3))
        assert exact_prefix_knn(points, 0, 3,
                                get_metric("euclidean")).size == 0

    def test_only_earlier_points_considered(self):
        points = np.array([[0.0], [10.0], [0.1]])
        ids = exact_prefix_knn(points, 2, 2, get_metric("euclidean"))
        assert np.array_equal(ids, [0, 1])

    def test_k_capped_at_prefix_size(self):
        points = np.array([[0.0], [1.0]])
        ids = exact_prefix_knn(points, 1, 5, get_metric("euclidean"))
        assert np.array_equal(ids, [0])

    def test_sorted_by_distance(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(20, 4))
        metric = get_metric("euclidean")
        ids = exact_prefix_knn(points, 19, 6, metric)
        dists = metric.one_to_many(points[19], points[ids])
        assert (np.diff(dists) >= 0).all()


class TestBuildStructure:
    def test_graph_validates(self, small_points):
        report = build_nsw_cpu(small_points[:200], d_min=4, d_max=8)
        validate_graph(report.graph, points=small_points[:200],
                       d_min=4, check_distances=True)

    def test_bidirectional_linking(self):
        """Every forward edge of the last-inserted vertex has a backward
        counterpart (nothing could have evicted them yet for small n)."""
        rng = np.random.default_rng(2)
        points = rng.normal(size=(30, 4)).astype(np.float32)
        report = build_nsw_cpu(points, d_min=3, d_max=10)
        last = 29
        for u in report.graph.neighbors(last):
            assert report.graph.has_edge(int(u), last)

    def test_connected_from_entry(self, small_points):
        report = build_nsw_cpu(small_points[:300], d_min=6, d_max=12)
        assert reachable_fraction(report.graph, entry=0) > 0.99

    def test_early_points_link_to_all_predecessors(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(6, 3)).astype(np.float32)
        report = build_nsw_cpu(points, d_min=4, d_max=8)
        # Vertex 1 was inserted when only vertex 0 existed.
        assert report.graph.has_edge(1, 0)
        assert report.graph.has_edge(0, 1)

    def test_exact_mode_forward_edges_are_true_knn(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(40, 4)).astype(np.float32)
        report = build_nsw_cpu(points, d_min=3, d_max=40, exact=True)
        metric = get_metric("euclidean")
        # With d_max large enough that nothing is evicted, each vertex's
        # row contains its exact d_min prefix-NN (forward edges).
        for v in range(5, 40):
            expected = set(exact_prefix_knn(points, v, 3, metric).tolist())
            got = set(report.graph.neighbors(v).tolist())
            assert expected <= got

    def test_counters_populated(self, small_points):
        report = build_nsw_cpu(small_points[:150], d_min=4, d_max=8)
        assert report.counters.n_distances > 150
        assert report.counters.n_adjacency_inserts >= 2 * 4
        assert report.counters.n_heap_ops > 0
        assert report.n_points == 150

    def test_cosine_metric_build(self, cosine_points):
        report = build_nsw_cpu(cosine_points[:200], d_min=4, d_max=8,
                               metric="cosine")
        validate_graph(report.graph)
        assert report.graph.metric_name == "cosine"


class TestValidation:
    def test_rejects_empty_points(self):
        with pytest.raises(ConstructionError, match="non-empty"):
            build_nsw_cpu(np.zeros((0, 3)), 2, 4)

    def test_rejects_dmin_above_dmax(self):
        with pytest.raises(ConstructionError, match="cannot exceed"):
            build_nsw_cpu(np.zeros((10, 3)), 8, 4)

    def test_rejects_bad_ef(self):
        with pytest.raises(ConstructionError, match="ef_construction"):
            build_nsw_cpu(np.zeros((10, 3)), 4, 8, ef_construction=2)

    def test_rejects_non_positive_degrees(self):
        with pytest.raises(ConstructionError):
            build_nsw_cpu(np.zeros((10, 3)), 0, 4)


class TestQuality:
    def test_higher_ef_construction_improves_graph(self, small_points,
                                                   small_queries):
        """A graph built with a wider construction beam supports equal or
        better search recall (the ef_construction knob works)."""
        from repro.baselines.beam import beam_search_batch
        from repro.datasets.ground_truth import exact_knn
        from repro.metrics.recall import recall_at_k

        points = small_points[:400]
        gt = exact_knn(points, small_queries, 10)
        lo = build_nsw_cpu(points, 4, 8, ef_construction=4).graph
        hi = build_nsw_cpu(points, 4, 8, ef_construction=32).graph
        r_lo = recall_at_k(beam_search_batch(lo, points, small_queries,
                                             10, ef=32), gt)
        r_hi = recall_at_k(beam_search_batch(hi, points, small_queries,
                                             10, ef=32), gt)
        assert r_hi >= r_lo - 0.02
