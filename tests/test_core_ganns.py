"""Tests for the batched GANNS search."""

import numpy as np
import pytest

from repro.baselines.beam import beam_search_batch
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.ground_truth import exact_knn
from repro.errors import SearchError
from repro.gpusim.tracker import PhaseCategory
from repro.metrics.recall import recall_at_k


class TestResultQuality:
    def test_matches_beam_search_recall(self, small_graph, small_points,
                                        small_queries):
        """GANNS follows the same search paradigm; its recall must track
        Algorithm 1's at comparable budget."""
        gt = exact_knn(small_points, small_queries, 10)
        ganns = ganns_search(small_graph, small_points, small_queries,
                             SearchParams(k=10, l_n=64))
        beam = beam_search_batch(small_graph, small_points, small_queries,
                                 10, ef=64)
        assert recall_at_k(ganns.ids, gt) == pytest.approx(
            recall_at_k(beam, gt), abs=0.05)

    def test_high_budget_high_recall(self, small_graph, small_points,
                                     small_queries):
        gt = exact_knn(small_points, small_queries, 10)
        report = ganns_search(small_graph, small_points, small_queries,
                              SearchParams(k=10, l_n=128))
        assert recall_at_k(report.ids, gt) > 0.9

    def test_recall_monotone_in_e(self, small_graph, small_points,
                                  small_queries):
        gt = exact_knn(small_points, small_queries, 10)
        recalls = []
        for e in (10, 24, 64):
            report = ganns_search(small_graph, small_points, small_queries,
                                  SearchParams(k=10, l_n=64, e=e))
            recalls.append(recall_at_k(report.ids, gt))
        assert recalls[0] <= recalls[1] + 0.02
        assert recalls[1] <= recalls[2] + 0.02

    def test_dists_sorted_and_consistent(self, small_graph, small_points,
                                         small_queries):
        report = ganns_search(small_graph, small_points, small_queries,
                              SearchParams(k=10, l_n=64))
        finite = np.isfinite(report.dists)
        assert (np.diff(report.dists, axis=1)[finite[:, 1:]] >= 0).all()
        # Returned distances match recomputed ones.
        metric = small_graph.metric
        for row in range(3):
            ids = report.ids[row][report.ids[row] >= 0]
            expected = metric.one_to_many(small_queries[row],
                                          small_points[ids])
            assert np.allclose(report.dists[row][:len(ids)], expected)

    def test_self_query_returns_self_first(self, small_graph, small_points):
        report = ganns_search(small_graph, small_points, small_points[:6],
                              SearchParams(k=5, l_n=64))
        assert np.array_equal(report.ids[:, 0], np.arange(6))

    def test_cosine_metric(self, cosine_graph, cosine_points):
        report = ganns_search(cosine_graph, cosine_points,
                              cosine_points[:6], SearchParams(k=3, l_n=64))
        assert np.array_equal(report.ids[:, 0], np.arange(6))

    def test_per_query_entries(self, small_graph, small_points,
                               small_queries):
        entries = np.arange(len(small_queries)) % small_graph.n_vertices
        report = ganns_search(small_graph, small_points, small_queries,
                              SearchParams(k=5, l_n=64), entry=entries)
        assert report.ids.shape == (len(small_queries), 5)


class TestLazyCheck:
    def test_no_duplicate_ids_in_results(self, small_graph, small_points,
                                         small_queries):
        report = ganns_search(small_graph, small_points, small_queries,
                              SearchParams(k=10, l_n=64))
        for row in report.ids:
            live = row[row >= 0]
            assert len(np.unique(live)) == len(live)

    def test_redundant_distances_exist_but_bounded(self, small_graph,
                                                   small_points,
                                                   small_queries):
        """Lazy check trades recomputation for hash removal: GANNS
        computes more distances than the visited-hash beam search, but
        not explosively more."""
        from repro.baselines.beam import beam_search
        report = ganns_search(small_graph, small_points, small_queries,
                              SearchParams(k=10, l_n=64))
        beam_total = sum(
            beam_search(small_graph, small_points, q, 10, ef=64)
            .n_distance_computations for q in small_queries)
        assert report.n_distance_computations >= beam_total
        assert report.n_distance_computations < 10 * beam_total

    def test_disabling_lazy_check_costs_more_distance_work(
            self, small_graph, small_points, small_queries):
        """Ablation: without phase (4) redundant exploration propagates."""
        with_check = ganns_search(small_graph, small_points, small_queries,
                                  SearchParams(k=10, l_n=64))
        without = ganns_search(small_graph, small_points, small_queries,
                               SearchParams(k=10, l_n=64), lazy_check=False)
        assert (without.n_distance_computations
                >= with_check.n_distance_computations)

    def test_lazy_check_required_for_quality_at_fixed_budget(
            self, small_graph, small_points, small_queries):
        """Why phase (4) exists: without it, re-discovered vertices flood
        the pool with duplicates, the effective explored set collapses,
        and recall craters at the same (l_n, e) budget."""
        gt = exact_knn(small_points, small_queries, 10)
        with_check = ganns_search(small_graph, small_points, small_queries,
                                  SearchParams(k=10, l_n=64))
        without = ganns_search(small_graph, small_points, small_queries,
                               SearchParams(k=10, l_n=64), lazy_check=False)
        assert (recall_at_k(with_check.ids, gt)
                > recall_at_k(without.ids, gt) + 0.3)


class TestCostAccounting:
    def test_all_six_phases_charged(self, small_graph, small_points,
                                    small_queries):
        report = ganns_search(small_graph, small_points, small_queries[:5],
                              SearchParams(k=5, l_n=64))
        assert set(report.tracker.phase_names) == {
            "candidate_locating", "neighborhood_exploration",
            "bulk_distance", "lazy_check", "sorting", "candidate_update",
        }

    def test_structure_ops_scale_with_threads(self, small_graph,
                                              small_points, small_queries):
        """GANNS's defining property (Figure 10): structure time shrinks
        near-linearly with n_t."""
        lo = ganns_search(small_graph, small_points, small_queries[:5],
                          SearchParams(k=5, l_n=64, n_threads=4))
        hi = ganns_search(small_graph, small_points, small_queries[:5],
                          SearchParams(k=5, l_n=64, n_threads=32))
        lo_struct = lo.tracker.category_totals()[PhaseCategory.STRUCTURE]
        hi_struct = hi.tracker.category_totals()[PhaseCategory.STRUCTURE]
        assert lo_struct / hi_struct > 3.0

    def test_iterations_close_to_e_budget(self, small_graph, small_points,
                                          small_queries):
        report = ganns_search(small_graph, small_points, small_queries[:5],
                              SearchParams(k=5, l_n=64, e=16))
        assert (report.iterations >= 1).all()
        # Every iteration explores one vertex from the first e slots;
        # replacement allows more than e iterations but same order.
        assert (report.iterations <= 16 * 8).all()

    def test_lane_cycles_vary_per_query(self, small_graph, small_points,
                                        small_queries):
        report = ganns_search(small_graph, small_points, small_queries,
                              SearchParams(k=5, l_n=64))
        cycles = report.tracker.lane_cycles()
        assert cycles.std() > 0


class TestValidation:
    def test_rejects_1d_queries(self, small_graph, small_points):
        with pytest.raises(SearchError, match="2-D"):
            ganns_search(small_graph, small_points, small_points[0],
                         SearchParams())

    def test_rejects_dim_mismatch(self, small_graph, small_points):
        with pytest.raises(SearchError, match="disagree"):
            ganns_search(small_graph, small_points, np.zeros((2, 3)),
                         SearchParams())

    def test_rejects_empty_queries(self, small_graph, small_points):
        with pytest.raises(SearchError, match="empty"):
            ganns_search(small_graph, small_points,
                         np.zeros((0, small_points.shape[1])),
                         SearchParams())

    def test_rejects_bad_entry(self, small_graph, small_points,
                               small_queries):
        with pytest.raises(SearchError, match="entry"):
            ganns_search(small_graph, small_points, small_queries,
                         SearchParams(), entry=-3)
