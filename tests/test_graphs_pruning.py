"""Tests for diversity-based edge pruning."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import ProximityGraph
from repro.graphs.pruning import prune_diversify, pruning_stats
from repro.graphs.validation import validate_graph


class TestRuleSemantics:
    def test_redundant_same_direction_edge_dropped(self):
        # v at origin; u1 close; u2 behind u1 in the same direction:
        # δ(u1, u2) < δ(v, u2), so v -> u2 is redundant.
        points = np.array([[0.0], [1.0], [2.0]])
        g = ProximityGraph(3, 4)
        g.insert_edge(0, 1, 1.0)
        g.insert_edge(0, 2, 4.0)  # squared distances
        pruned = prune_diversify(g, points)
        assert np.array_equal(pruned.neighbors(0), [1])

    def test_diverse_directions_kept(self):
        # Two neighbors on opposite sides: both survive.
        points = np.array([[0.0], [1.0], [-1.0]])
        g = ProximityGraph(3, 4)
        g.insert_edge(0, 1, 1.0)
        g.insert_edge(0, 2, 1.0)
        pruned = prune_diversify(g, points)
        assert set(pruned.neighbors(0).tolist()) == {1, 2}

    def test_alpha_controls_aggressiveness(self, small_graph,
                                           small_points):
        mild = prune_diversify(small_graph, small_points, alpha=0.5)
        harsh = prune_diversify(small_graph, small_points, alpha=1.2)
        assert harsh.n_edges() <= mild.n_edges()

    def test_min_degree_guard(self):
        points = np.array([[0.0], [1.0], [2.0], [3.0]])
        g = ProximityGraph(4, 4)
        g.insert_edge(0, 1, 1.0)
        g.insert_edge(0, 2, 4.0)
        g.insert_edge(0, 3, 9.0)
        pruned = prune_diversify(g, points, min_degree=3)
        assert pruned.degree(0) == 3

    def test_pruned_graph_validates(self, small_graph, small_points):
        pruned = prune_diversify(small_graph, small_points)
        validate_graph(pruned, points=small_points, check_distances=True)

    def test_original_untouched(self, small_graph, small_points):
        edges_before = small_graph.n_edges()
        prune_diversify(small_graph, small_points)
        assert small_graph.n_edges() == edges_before


class TestValidation:
    def test_bad_alpha(self, small_graph, small_points):
        with pytest.raises(GraphError, match="alpha"):
            prune_diversify(small_graph, small_points, alpha=0)

    def test_bad_min_degree(self, small_graph, small_points):
        with pytest.raises(GraphError, match="min_degree"):
            prune_diversify(small_graph, small_points, min_degree=-1)

    def test_point_count_mismatch(self, small_graph):
        with pytest.raises(GraphError, match="does not match"):
            prune_diversify(small_graph, np.zeros((3, 2)))


class TestStats:
    def test_stats_fields(self, small_graph, small_points):
        pruned = prune_diversify(small_graph, small_points)
        stats = pruning_stats(small_graph, pruned)
        assert stats["edges_after"] <= stats["edges_before"]
        assert 0.0 < stats["kept_fraction"] <= 1.0
        assert stats["mean_degree_after"] <= stats["mean_degree_before"]

    def test_stats_vertex_mismatch(self, small_graph):
        with pytest.raises(GraphError, match="vertex count"):
            pruning_stats(small_graph, ProximityGraph(3, 2))


class TestSearchQuality:
    def test_pruning_preserves_recall_with_fewer_edges(self,
                                                       small_points,
                                                       small_queries,
                                                       small_graph):
        """The trade pruning offers: recall stays close at the same
        explored budget while each exploration touches far fewer
        edges (so iterations get cheaper)."""
        from repro.core.ganns import ganns_search
        from repro.core.params import SearchParams
        from repro.datasets.ground_truth import exact_knn
        from repro.metrics.recall import recall_at_k

        gt = exact_knn(small_points, small_queries, 10)
        pruned = prune_diversify(small_graph, small_points, alpha=1.0,
                                 min_degree=4)
        search = SearchParams(k=10, l_n=64, e=16)
        raw_recall = recall_at_k(
            ganns_search(small_graph, small_points, small_queries,
                         search).ids, gt)
        pruned_recall = recall_at_k(
            ganns_search(pruned, small_points, small_queries,
                         search).ids, gt)
        assert pruned_recall > raw_recall - 0.15
        # And the pruned graph does it with genuinely fewer edges (so
        # each exploration computes fewer distances).
        assert pruned.n_edges() < small_graph.n_edges()
