"""Determinism: every pipeline stage is a pure function of its inputs.

Reproducibility is a headline property of this package (the benchmark
suite's numbers must be re-derivable), so identical inputs must yield
bit-identical outputs everywhere.
"""

import numpy as np

from repro.baselines.song import SongParams, song_search
from repro.core.construction import build_nsw_gpu
from repro.core.ganns import ganns_search
from repro.core.params import BuildParams, SearchParams


class TestSearchDeterminism:
    def test_ganns_bitwise_repeatable(self, small_graph, small_points,
                                      small_queries):
        params = SearchParams(k=10, l_n=64)
        a = ganns_search(small_graph, small_points, small_queries, params)
        b = ganns_search(small_graph, small_points, small_queries, params)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.dists, b.dists)
        assert np.array_equal(a.iterations, b.iterations)
        assert a.tracker.total_cycles() == b.tracker.total_cycles()

    def test_song_bitwise_repeatable(self, small_graph, small_points,
                                     small_queries):
        params = SongParams(k=10, pq_bound=32)
        a = song_search(small_graph, small_points, small_queries[:10],
                        params)
        b = song_search(small_graph, small_points, small_queries[:10],
                        params)
        assert np.array_equal(a.ids, b.ids)
        assert a.n_distance_computations == b.n_distance_computations

    def test_query_order_does_not_change_per_query_results(
            self, small_graph, small_points, small_queries):
        """Lock-step batching must not couple queries."""
        params = SearchParams(k=5, l_n=64)
        forward = ganns_search(small_graph, small_points, small_queries,
                               params)
        reversed_report = ganns_search(small_graph, small_points,
                                       small_queries[::-1].copy(), params)
        assert np.array_equal(forward.ids, reversed_report.ids[::-1])

    def test_subset_of_batch_matches_full_batch(self, small_graph,
                                                small_points,
                                                small_queries):
        params = SearchParams(k=5, l_n=64)
        full = ganns_search(small_graph, small_points, small_queries,
                            params)
        half = ganns_search(small_graph, small_points, small_queries[:7],
                            params)
        assert np.array_equal(full.ids[:7], half.ids)


class TestConstructionDeterminism:
    def test_ggraphcon_repeatable(self, small_points):
        params = BuildParams(d_min=6, d_max=12, n_blocks=8)
        a = build_nsw_gpu(small_points[:200], params)
        b = build_nsw_gpu(small_points[:200], params)
        assert np.array_equal(a.graph.neighbor_ids, b.graph.neighbor_ids)
        assert a.seconds == b.seconds

    def test_point_dtype_float32_vs_float64_same_graph(self, small_points):
        """float32 inputs are computed in float64 internally; feeding the
        widened array directly must give the same graph."""
        params = BuildParams(d_min=6, d_max=12, n_blocks=8)
        a = build_nsw_gpu(small_points[:150], params)
        b = build_nsw_gpu(small_points[:150].astype(np.float64), params)
        assert np.array_equal(a.graph.neighbor_ids, b.graph.neighbor_ids)
