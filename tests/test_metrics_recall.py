"""Tests for the recall measure (Section II-A definition)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.recall import recall_at_k, recall_per_query


class TestRecallPerQuery:
    def test_perfect_recall(self):
        truth = np.array([[1, 2, 3]])
        assert recall_per_query(truth.copy(), truth)[0] == 1.0

    def test_order_does_not_matter(self):
        returned = np.array([[3, 1, 2]])
        truth = np.array([[1, 2, 3]])
        assert recall_per_query(returned, truth)[0] == 1.0

    def test_partial_overlap(self):
        returned = np.array([[1, 2, 9]])
        truth = np.array([[1, 2, 3]])
        assert recall_per_query(returned, truth)[0] == pytest.approx(2 / 3)

    def test_no_overlap(self):
        returned = np.array([[7, 8, 9]])
        truth = np.array([[1, 2, 3]])
        assert recall_per_query(returned, truth)[0] == 0.0

    def test_padding_never_matches(self):
        returned = np.array([[1, -1, -1]])
        truth = np.array([[1, 2, 3]])
        assert recall_per_query(returned, truth)[0] == pytest.approx(1 / 3)

    def test_multiple_queries_independent(self):
        returned = np.array([[1, 2], [5, 6]])
        truth = np.array([[1, 2], [7, 8]])
        assert np.allclose(recall_per_query(returned, truth), [1.0, 0.0])

    def test_rejects_1d_input(self):
        with pytest.raises(ConfigurationError, match="2-D"):
            recall_per_query(np.array([1, 2]), np.array([[1, 2]]))

    def test_rejects_query_count_mismatch(self):
        with pytest.raises(ConfigurationError, match="counts differ"):
            recall_per_query(np.zeros((2, 3), dtype=int),
                             np.zeros((3, 3), dtype=int))

    def test_rejects_empty_ground_truth(self):
        with pytest.raises(ConfigurationError, match="at least 1"):
            recall_per_query(np.zeros((1, 0), dtype=int),
                             np.zeros((1, 0), dtype=int))


class TestRecallEdgeCases:
    """Degenerate shapes the serving/tuning layers can produce."""

    def test_returned_wider_than_ground_truth(self):
        """k larger than the ground-truth width: extra columns may add
        hits but the denominator stays the truth width."""
        returned = np.array([[3, 1, 9, 8, 2]])
        truth = np.array([[1, 2, 3]])
        assert recall_per_query(returned, truth)[0] == 1.0

    def test_returned_narrower_than_ground_truth(self):
        returned = np.array([[1]])
        truth = np.array([[1, 2, 3, 4]])
        assert recall_per_query(returned, truth)[0] == pytest.approx(0.25)

    def test_duplicate_returned_ids_count_once(self):
        """A duplicated correct id must not double-count as two hits."""
        returned = np.array([[1, 1, 9]])
        truth = np.array([[1, 2, 3]])
        assert recall_per_query(returned, truth)[0] == pytest.approx(1 / 3)

    def test_duplicate_ground_truth_ids_count_once(self):
        """Duplicate truth entries shrink the denominator to the unique
        count, so a fully correct answer still scores 1.0."""
        returned = np.array([[1, 2, 9]])
        truth = np.array([[1, 2, 2]])
        assert recall_per_query(returned, truth)[0] == 1.0

    def test_empty_result_row_scores_zero(self):
        returned = np.array([[-1, -1, -1]])
        truth = np.array([[1, 2, 3]])
        assert recall_per_query(returned, truth)[0] == 0.0

    def test_ground_truth_padding_excluded_from_denominator(self):
        """A dataset with fewer than k points pads its ground truth with
        -1; recall of a perfect answer must still reach 1.0."""
        returned = np.array([[4, 7, -1]])
        truth = np.array([[4, 7, -1]])
        assert recall_per_query(returned, truth)[0] == 1.0

    def test_fully_padded_ground_truth_row_scores_zero(self):
        returned = np.array([[1, 2], [3, 4]])
        truth = np.array([[1, 2], [-1, -1]])
        assert np.allclose(recall_per_query(returned, truth), [1.0, 0.0])

    def test_recall_bounded_even_with_padding_and_duplicates(self):
        rng = np.random.default_rng(3)
        returned = rng.integers(-1, 10, size=(50, 6))
        truth = rng.integers(-1, 10, size=(50, 4))
        values = recall_per_query(returned, truth)
        assert (values >= 0.0).all() and (values <= 1.0).all()


class TestRecallAtK:
    def test_mean_over_queries(self):
        returned = np.array([[1, 2], [5, 6]])
        truth = np.array([[1, 2], [5, 9]])
        assert recall_at_k(returned, truth) == pytest.approx(0.75)

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(0)
        returned = rng.integers(0, 50, size=(20, 10))
        truth = rng.integers(0, 50, size=(20, 10))
        value = recall_at_k(returned, truth)
        assert 0.0 <= value <= 1.0
