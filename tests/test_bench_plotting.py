"""Tests for the ASCII plotting helper."""

import pytest

from repro.bench.plotting import ascii_plot, curve_plot
from repro.bench.runner import CurvePoint
from repro.errors import ConfigurationError


class TestAsciiPlot:
    def test_basic_render(self):
        plot = ascii_plot({"a": [(0.5, 100.0), (0.9, 10.0)]})
        lines = plot.splitlines()
        assert any("o" in line for line in lines)
        assert "o=a" in lines[-1]

    def test_two_series_distinct_markers(self):
        plot = ascii_plot({
            "ganns": [(0.5, 1000.0), (0.9, 100.0)],
            "song": [(0.5, 300.0), (0.9, 50.0)],
        })
        assert "o=ganns" in plot
        assert "x=song" in plot
        assert "o" in plot and "x" in plot

    def test_axis_labels(self):
        plot = ascii_plot({"a": [(0.2, 5.0), (0.8, 50.0)]})
        assert "0.20" in plot
        assert "0.80" in plot

    def test_y_extremes_annotated(self):
        plot = ascii_plot({"a": [(0.0, 1000.0), (1.0, 250_000.0)]})
        assert "250k" in plot
        assert "1.0k" in plot

    def test_linear_scale(self):
        plot = ascii_plot({"a": [(0.0, -5.0), (1.0, 5.0)]}, log_y=False)
        assert "(lin)" in plot

    def test_log_scale_rejects_non_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            ascii_plot({"a": [(0.0, 0.0)]})

    def test_single_point(self):
        plot = ascii_plot({"a": [(0.5, 10.0)]})
        assert "o" in plot

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ascii_plot({})
        with pytest.raises(ConfigurationError, match="at least one"):
            ascii_plot({"a": []})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError, match="at least"):
            ascii_plot({"a": [(0, 1)]}, width=4, height=2)

    def test_all_points_land_on_canvas(self):
        points = [(i / 10, 10.0 ** i) for i in range(1, 8)]
        plot = ascii_plot({"a": points}, width=40, height=10)
        canvas = "\n".join(plot.splitlines()[:-3])  # drop axes + legend
        assert canvas.count("o") == len(points)


class TestCurvePlot:
    def test_from_curve_points(self):
        curves = {
            "ganns": [CurvePoint(0.5, 1000.0, (64, 32)),
                      CurvePoint(0.9, 100.0, (128, 128))],
        }
        plot = curve_plot(curves)
        assert "o=ganns" in plot
