"""Unit tests for the metrics registry: instruments, misuse, encoding.

The registry underwrites the exact-reconciliation guarantee, so its
contract is pinned instrument by instrument: counters only go up,
gauges stay finite, histogram bucketing is a pure function of the
value, name collisions across kinds fail loudly, and the canonical
snapshot encoding is byte-stable.
"""

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates_and_defaults_to_one(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert registry.value("c") == 3.5

    @pytest.mark.parametrize("bad", [-1, float("nan"), float("inf")])
    def test_rejects_negative_and_non_finite(self, bad):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ObservabilityError):
            counter.inc(bad)

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")


class TestGauge:
    def test_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5.0)
        gauge.set(-2.0)
        assert registry.value("g") == -2.0

    def test_rejects_non_finite(self):
        gauge = MetricsRegistry().gauge("g")
        with pytest.raises(ObservabilityError):
            gauge.set(float("nan"))


class TestHistogram:
    def test_bucketing_is_a_pure_function_of_the_value(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 5.0))
        for value, bucket in ((0.5, 0), (1.0, 0), (1.5, 1), (2.0, 1),
                              (4.9, 2), (5.0, 2), (99.0, 3)):
            before = list(hist.counts)
            hist.observe(value)
            changed = [i for i in range(4)
                       if hist.counts[i] != before[i]]
            assert changed == [bucket], f"{value} landed in {changed}"
        assert hist.count == 7

    def test_sum_and_mean_are_exact(self):
        hist = Histogram("h", bounds=(1.0,))
        values = [0.25, 0.5, 3.0]
        total = 0.0
        for value in values:
            hist.observe(value)
            total += value  # same addition order as the instrument
        assert hist.sum == total
        assert hist.mean == total / 3
        assert np.isnan(Histogram("e", bounds=(1.0,)).mean)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ObservabilityError, match="at least one"):
            Histogram("h", bounds=())
        with pytest.raises(ObservabilityError, match="increasing"):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ObservabilityError, match="increasing"):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ObservabilityError, match="finite"):
            Histogram("h", bounds=(1.0, float("inf")))

    def test_rejects_non_finite_observations(self):
        hist = Histogram("h", bounds=(1.0,))
        with pytest.raises(ObservabilityError):
            hist.observe(float("inf"))


class TestRegistry:
    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError, match="already"):
            registry.gauge("x")

    def test_value_of_missing_metric(self):
        registry = MetricsRegistry()
        assert registry.value("missing", default=0.0) == 0.0
        with pytest.raises(ObservabilityError, match="no metric"):
            registry.value("missing")

    def test_value_of_histogram_is_refused(self):
        registry = MetricsRegistry()
        registry.histogram("h", DEFAULT_LATENCY_BUCKETS)
        with pytest.raises(ObservabilityError, match="histogram"):
            registry.value("h")

    def test_contains_len_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert "a" in registry and "c" not in registry
        assert len(registry) == 2
        assert registry.names() == ("a", "b")

    def test_snapshot_encoding_is_byte_stable(self):
        def build():
            registry = MetricsRegistry()
            # Creation order differs from name order on purpose: the
            # snapshot must not leak insertion order.
            registry.counter("z").inc(3)
            registry.gauge("a").set(0.1)
            registry.histogram("m", bounds=(1.0, 2.0)).observe(1.5)
            return registry

        first, second = build(), build()
        assert first.to_json_bytes() == second.to_json_bytes()
        assert first.digest() == second.digest()
        first.to_json_bytes().decode("ascii")

    def test_summary_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(4)
        registry.counter("faults.injected").inc(1)
        block = registry.summary(prefix="serve.")
        assert "serve.requests" in block
        assert "faults.injected" not in block
