"""Tests for the GSerial and GNaiveParallel strawmen."""

import numpy as np
import pytest

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.construction import build_nsw_gpu
from repro.core.naive import build_nsw_naive_parallel, build_nsw_serial_gpu
from repro.core.params import BuildParams
from repro.errors import ConstructionError
from repro.graphs.validation import validate_graph

PARAMS = BuildParams(d_min=6, d_max=12, n_blocks=8)


class TestGSerial:
    def test_graph_equals_cpu_sequential(self, small_points):
        """GSerial runs the same insertions as the CPU build — only the
        timing differs."""
        points = small_points[:200]
        serial = build_nsw_serial_gpu(points, PARAMS)
        cpu = build_nsw_cpu(points, PARAMS.d_min, PARAMS.d_max)
        assert serial.graph.edge_set() == cpu.graph.edge_set()

    def test_dramatically_slower_than_ggraphcon(self, small_points):
        """The Figure 11 observation: GSerial wastes all inter-block
        parallelism (3810 s vs 8.5 s on SIFT1M in the paper)."""
        points = small_points[:300]
        serial = build_nsw_serial_gpu(points, PARAMS)
        ggc = build_nsw_gpu(points, PARAMS.with_overrides(n_blocks=32))
        assert serial.seconds / ggc.seconds > 5.0

    def test_report_fields(self, small_points):
        report = build_nsw_serial_gpu(small_points[:100], PARAMS)
        assert report.algorithm.startswith("gserial")
        assert report.seconds > 0
        assert report.n_points == 100


class TestGNaiveParallel:
    def test_graph_validates(self, small_points):
        report = build_nsw_naive_parallel(small_points[:300], PARAMS,
                                          batch_size=64)
        validate_graph(report.graph)

    def test_quality_worse_than_ggraphcon(self, small_points,
                                          small_queries):
        """Figure 12: in-batch links are missing, so search recall on the
        naive graph is visibly lower at the same budget."""
        from repro.core.ganns import ganns_search
        from repro.core.params import SearchParams
        from repro.datasets.ground_truth import exact_knn
        from repro.metrics.recall import recall_at_k

        points = small_points[:500]
        gt = exact_knn(points, small_queries, 10)
        naive = build_nsw_naive_parallel(points, PARAMS, batch_size=250)
        ggc = build_nsw_gpu(points, PARAMS)
        search = SearchParams(k=10, l_n=64, e=32)
        r_naive = recall_at_k(
            ganns_search(naive.graph, points, small_queries, search).ids,
            gt)
        r_ggc = recall_at_k(
            ganns_search(ggc.graph, points, small_queries, search).ids, gt)
        assert r_ggc > r_naive

    def test_no_in_batch_edges_beyond_bootstrap(self, small_points):
        """Structural check of the quality defect: a vertex's forward
        search cannot have selected members of its own batch."""
        points = small_points[:200]
        batch_size = 50
        report = build_nsw_naive_parallel(points, PARAMS,
                                          batch_size=batch_size)
        graph = report.graph
        # Batches start after the d_min + 1 bootstrap points, so the last
        # batch spans [157, 200).
        bootstrap = PARAMS.d_min + 1
        last_start = bootstrap + ((200 - bootstrap - 1) // batch_size) * 50
        for v in range(last_start, 200):
            neighbors = graph.neighbors(v)
            in_batch = [u for u in neighbors if last_start <= u < 200]
            # Forward edges can't select co-batch members (searched on the
            # pre-batch snapshot) and backward edges from them don't exist
            # either, so no in-batch neighbors at all.
            assert not in_batch

    def test_faster_than_ggraphcon_given_same_kernel(self, small_points):
        """Figure 11: GNaiveParallel slightly outperforms GGraphCon_SONG
        — the merge bookkeeping has a cost."""
        points = small_points[:300]
        naive = build_nsw_naive_parallel(points, PARAMS,
                                         search_kernel="song",
                                         batch_size=300)
        ggc = build_nsw_gpu(points, PARAMS.with_overrides(n_blocks=4),
                            search_kernel="song")
        assert naive.seconds < ggc.seconds

    def test_rejects_bad_batch_size(self, small_points):
        with pytest.raises(ConstructionError, match="batch_size"):
            build_nsw_naive_parallel(small_points[:50], PARAMS,
                                     batch_size=0)

    def test_rejects_empty(self):
        with pytest.raises(ConstructionError, match="non-empty"):
            build_nsw_naive_parallel(np.zeros((0, 4)), PARAMS)
