"""Tests for the distance metrics, including metric-property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.metrics.distance import (
    CosineMetric,
    EuclideanMetric,
    METRICS,
    get_metric,
)

finite_vectors = arrays(np.float64, (8,),
                        elements=st.floats(min_value=-100, max_value=100))


class TestRegistry:
    def test_get_metric_by_name(self):
        assert isinstance(get_metric("euclidean"), EuclideanMetric)
        assert isinstance(get_metric("cosine"), CosineMetric)

    def test_unknown_metric_lists_valid_names(self):
        with pytest.raises(ConfigurationError, match="cosine"):
            get_metric("manhattan")

    def test_registry_instances_are_shared(self):
        assert get_metric("euclidean") is METRICS["euclidean"]


class TestEuclidean:
    metric = EuclideanMetric()

    def test_one_to_many_matches_definition(self):
        query = np.array([0.0, 0.0])
        points = np.array([[3.0, 4.0], [1.0, 0.0]])
        assert np.allclose(self.metric.one_to_many(query, points), [25, 1])

    def test_pairwise_matches_one_to_many(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 8))
        b = rng.normal(size=(7, 8))
        matrix = self.metric.pairwise(a, b)
        for i in range(5):
            assert np.allclose(matrix[i], self.metric.one_to_many(a[i], b),
                               atol=1e-9)

    def test_pairwise_never_negative(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(20, 4)) * 1e-4
        assert (self.metric.pairwise(a, a) >= 0).all()

    @given(finite_vectors, finite_vectors)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, x, y):
        d_xy = self.metric.one_to_many(x, y[None, :])[0]
        d_yx = self.metric.one_to_many(y, x[None, :])[0]
        assert d_xy == pytest.approx(d_yx, rel=1e-9, abs=1e-9)

    @given(finite_vectors)
    @settings(max_examples=50, deadline=None)
    def test_identity(self, x):
        assert self.metric.one_to_many(x, x[None, :])[0] == pytest.approx(
            0.0, abs=1e-9)

    def test_rows_to_rows(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[3.0, 4.0], [1.0, 1.0]])
        assert np.allclose(self.metric.rows_to_rows(a, b), [25, 0])

    def test_rows_to_rows_shape_mismatch(self):
        with pytest.raises(ConfigurationError, match="equal shapes"):
            self.metric.rows_to_rows(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_flops_positive(self):
        assert self.metric.flops_per_distance(128) == 3 * 128


class TestCosine:
    metric = CosineMetric()

    def test_parallel_vectors_distance_zero(self):
        q = np.array([1.0, 2.0, 3.0])
        assert self.metric.one_to_many(q, (5 * q)[None, :])[0] == \
            pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_vectors_distance_one(self):
        q = np.array([1.0, 0.0])
        p = np.array([[0.0, 1.0]])
        assert self.metric.one_to_many(q, p)[0] == pytest.approx(1.0)

    def test_opposite_vectors_distance_two(self):
        q = np.array([1.0, 0.0])
        p = np.array([[-1.0, 0.0]])
        assert self.metric.one_to_many(q, p)[0] == pytest.approx(2.0)

    def test_scale_invariance(self):
        rng = np.random.default_rng(2)
        q = rng.normal(size=6)
        p = rng.normal(size=(4, 6))
        base = self.metric.one_to_many(q, p)
        scaled = self.metric.one_to_many(3.0 * q, 0.5 * p)
        assert np.allclose(base, scaled)

    def test_zero_vector_is_orderable(self):
        q = np.zeros(4)
        p = np.ones((2, 4))
        out = self.metric.one_to_many(q, p)
        assert np.all(np.isfinite(out))
        assert np.allclose(out, 1.0)

    def test_pairwise_range(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(10, 5))
        d = self.metric.pairwise(a, a)
        assert d.min() >= -1e-9 and d.max() <= 2.0 + 1e-9
        assert np.allclose(np.diag(d), 0.0, atol=1e-9)

    def test_rows_to_rows_matches_pairwise_diagonal(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(6, 5))
        b = rng.normal(size=(6, 5))
        rows = self.metric.rows_to_rows(a, b)
        full = self.metric.pairwise(a, b)
        assert np.allclose(rows, np.diag(full))


class TestOrderingConsistency:
    """Squared Euclidean must induce the same neighbor ranking as true L2
    — the property that justifies skipping the square root."""

    def test_ranking_matches_true_l2(self):
        rng = np.random.default_rng(5)
        q = rng.normal(size=16)
        points = rng.normal(size=(50, 16))
        squared = EuclideanMetric().one_to_many(q, points)
        true = np.linalg.norm(points - q, axis=1)
        assert np.array_equal(np.argsort(squared), np.argsort(true))
