"""Tests for the micro-batching scheduler: triggers, ordering, fairness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServeError
from repro.serve.request import QueryRequest
from repro.serve.scheduler import (
    TRIGGER_DEADLINE,
    TRIGGER_DRAIN,
    TRIGGER_SIZE,
    BatchPolicy,
    MicroBatchScheduler,
)


def _req(request_id, arrival, n_queries=1, dims=4):
    return QueryRequest(request_id=request_id,
                        queries=np.zeros((n_queries, dims)),
                        arrival_seconds=arrival)


class TestBatchPolicy:
    def test_defaults_valid(self):
        policy = BatchPolicy()
        assert policy.max_batch > 0
        assert policy.max_queue >= policy.max_batch

    def test_rejects_nonpositive_max_batch(self):
        with pytest.raises(ConfigurationError, match="max_batch"):
            BatchPolicy(max_batch=0)

    def test_rejects_negative_window(self):
        with pytest.raises(ConfigurationError, match="max_wait"):
            BatchPolicy(max_wait_seconds=-1e-3)

    def test_rejects_queue_smaller_than_batch(self):
        with pytest.raises(ConfigurationError, match="max_queue"):
            BatchPolicy(max_batch=64, max_queue=32)


class TestSizeTrigger:
    def test_flushes_exactly_at_max_batch(self):
        sched = MicroBatchScheduler(BatchPolicy(max_batch=3,
                                                max_wait_seconds=1.0))
        assert sched.submit(_req(0, 0.0), 0.0) == []
        assert sched.submit(_req(1, 0.1), 0.1) == []
        flushed = sched.submit(_req(2, 0.2), 0.2)
        assert len(flushed) == 1
        batch = flushed[0]
        assert batch.trigger == TRIGGER_SIZE
        assert batch.n_queries == 3
        assert batch.flush_seconds == 0.2
        assert sched.pending_requests == 0

    def test_multi_query_request_counts_queries_not_requests(self):
        sched = MicroBatchScheduler(BatchPolicy(max_batch=4,
                                                max_wait_seconds=1.0))
        flushed = sched.submit(_req(0, 0.0, n_queries=4), 0.0)
        assert len(flushed) == 1
        assert flushed[0].n_requests == 1
        assert flushed[0].n_queries == 4

    def test_overflowing_request_flushes_pending_first(self):
        """A request that would exceed max_batch closes the open batch
        and starts the next one, so no batch exceeds the bound."""
        sched = MicroBatchScheduler(BatchPolicy(max_batch=4,
                                                max_wait_seconds=1.0))
        sched.submit(_req(0, 0.0, n_queries=3), 0.0)
        flushed = sched.submit(_req(1, 0.1, n_queries=2), 0.1)
        assert len(flushed) == 1
        assert [r.request_id for r in flushed[0].requests] == [0]
        assert sched.pending_queries == 2

    def test_oversized_single_request_forms_own_batch(self):
        sched = MicroBatchScheduler(BatchPolicy(max_batch=4,
                                                max_wait_seconds=1.0))
        flushed = sched.submit(_req(0, 0.0, n_queries=9), 0.0)
        assert len(flushed) == 1
        assert flushed[0].n_queries == 9


class TestDeadlineTrigger:
    def test_poll_before_deadline_is_noop(self):
        sched = MicroBatchScheduler(BatchPolicy(max_batch=100,
                                                max_wait_seconds=0.5))
        sched.submit(_req(0, 0.0), 0.0)
        assert sched.poll(0.4) == []
        assert sched.pending_requests == 1

    def test_flush_is_stamped_with_deadline_not_poll_time(self):
        """A timer fires at the deadline; noticing it late (at the next
        arrival) must not inflate the batch's flush time."""
        sched = MicroBatchScheduler(BatchPolicy(max_batch=100,
                                                max_wait_seconds=0.5))
        sched.submit(_req(0, 0.1), 0.1)
        flushed = sched.poll(7.0)
        assert len(flushed) == 1
        assert flushed[0].trigger == TRIGGER_DEADLINE
        assert flushed[0].flush_seconds == pytest.approx(0.6)

    def test_deadline_tracks_oldest_member(self):
        sched = MicroBatchScheduler(BatchPolicy(max_batch=100,
                                                max_wait_seconds=0.5))
        sched.submit(_req(0, 0.0), 0.0)
        sched.submit(_req(1, 0.3), 0.3)
        assert sched.deadline() == pytest.approx(0.5)

    def test_deadline_none_when_empty(self):
        sched = MicroBatchScheduler(BatchPolicy())
        assert sched.deadline() is None
        assert sched.poll(100.0) == []


class TestFifoFairness:
    def test_arrival_order_preserved_within_and_across_batches(self):
        sched = MicroBatchScheduler(BatchPolicy(max_batch=2,
                                                max_wait_seconds=10.0))
        batches = []
        for i in range(7):
            batches.extend(sched.submit(_req(i, i * 0.1), i * 0.1))
        batches.extend(sched.drain())
        served = [r.request_id for b in batches for r in b.requests]
        assert served == list(range(7))
        assert [b.index for b in batches] == [0, 1, 2, 3]

    def test_batch_indices_strictly_increase_across_triggers(self):
        sched = MicroBatchScheduler(BatchPolicy(max_batch=2,
                                                max_wait_seconds=0.1))
        collected = []
        collected += sched.submit(_req(0, 0.0), 0.0)      # pending
        collected += sched.poll(1.0)                      # deadline flush
        collected += sched.submit(_req(1, 1.0), 1.0)
        collected += sched.submit(_req(2, 1.0), 1.0)      # size flush
        collected += sched.submit(_req(3, 2.0), 2.0)
        collected += sched.drain()                        # drain flush
        assert [b.index for b in collected] == [0, 1, 2]
        assert [b.trigger for b in collected] == [
            TRIGGER_DEADLINE, TRIGGER_SIZE, TRIGGER_DRAIN]


class TestDrain:
    def test_drain_empty_returns_nothing(self):
        assert MicroBatchScheduler(BatchPolicy()).drain() == []

    def test_drain_stamps_deadline(self):
        sched = MicroBatchScheduler(BatchPolicy(max_batch=100,
                                                max_wait_seconds=0.25))
        sched.submit(_req(0, 2.0), 2.0)
        (batch,) = sched.drain()
        assert batch.trigger == TRIGGER_DRAIN
        assert batch.flush_seconds == pytest.approx(2.25)


class TestTimeDiscipline:
    def test_rejects_time_running_backwards(self):
        sched = MicroBatchScheduler(BatchPolicy())
        sched.submit(_req(0, 5.0), 5.0)
        with pytest.raises(ServeError, match="backwards"):
            sched.submit(_req(1, 4.0), 4.0)

    def test_flush_counts_by_trigger(self):
        sched = MicroBatchScheduler(BatchPolicy(max_batch=1,
                                                max_wait_seconds=1.0))
        sched.submit(_req(0, 0.0), 0.0)
        sched.submit(_req(1, 0.5), 0.5)
        assert sched.flush_counts[TRIGGER_SIZE] == 2
        assert sched.flush_counts[TRIGGER_DEADLINE] == 0
