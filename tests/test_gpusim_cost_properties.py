"""Property tests on the cost model's monotonicity structure.

The complexity table's qualitative shape must hold for *all* parameter
values, not just the benchmarked ones: more threads never cost more
cycles, bigger buffers never cost fewer, and SONG's host-thread charges
are thread-count-free by construction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.costs import DEFAULT_COSTS

pow2 = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256])
sizes = st.integers(min_value=1, max_value=512)
dims = st.integers(min_value=1, max_value=2048)


class TestThreadMonotonicity:
    """Doubling n_t never increases any parallel phase's cycles."""

    @given(sizes, pow2)
    @settings(max_examples=60, deadline=None)
    def test_candidate_locate(self, l_n, n_t):
        c = DEFAULT_COSTS
        assert (c.ganns_candidate_locate_cycles(l_n, 2 * n_t)
                <= c.ganns_candidate_locate_cycles(l_n, n_t))

    @given(sizes, pow2)
    @settings(max_examples=60, deadline=None)
    def test_sort(self, l_t, n_t):
        c = DEFAULT_COSTS
        assert (c.ganns_sort_cycles(l_t, 2 * n_t)
                <= c.ganns_sort_cycles(l_t, n_t))

    @given(sizes, sizes, pow2)
    @settings(max_examples=60, deadline=None)
    def test_merge(self, l_n, l_t, n_t):
        c = DEFAULT_COSTS
        assert (c.ganns_merge_cycles(l_n, l_t, 2 * n_t)
                <= c.ganns_merge_cycles(l_n, l_t, n_t))

    @given(dims, pow2)
    @settings(max_examples=60, deadline=None)
    def test_distance(self, n_d, n_t):
        """Monotone when there is work to parallelize; at degenerate
        dimensionality (fewer dims than lanes) the extra shuffle steps of
        a wider reduction legitimately dominate, so restrict to the
        regime the kernels actually run in (n_d >= 2 * n_t)."""
        from hypothesis import assume
        assume(n_d >= 4 * n_t)
        c = DEFAULT_COSTS
        assert (c.single_distance_cycles(n_d, 2 * n_t)
                <= c.single_distance_cycles(n_d, n_t))

    @given(sizes, sizes, pow2)
    @settings(max_examples=60, deadline=None)
    def test_full_structure(self, l_n, l_t, n_t):
        c = DEFAULT_COSTS
        assert (c.ganns_structure_cycles(l_n, l_t, 2 * n_t)
                <= c.ganns_structure_cycles(l_n, l_t, n_t))


class TestSizeMonotonicity:
    """Bigger buffers never cost fewer cycles."""

    @given(sizes, pow2)
    @settings(max_examples=60, deadline=None)
    def test_locate_grows_with_pool(self, l_n, n_t):
        c = DEFAULT_COSTS
        assert (c.ganns_candidate_locate_cycles(2 * l_n, n_t)
                >= c.ganns_candidate_locate_cycles(l_n, n_t))

    @given(sizes, sizes, pow2)
    @settings(max_examples=60, deadline=None)
    def test_merge_grows_with_pool(self, l_n, l_t, n_t):
        c = DEFAULT_COSTS
        assert (c.ganns_merge_cycles(2 * l_n, l_t, n_t)
                >= c.ganns_merge_cycles(l_n, l_t, n_t))

    @given(st.integers(min_value=1, max_value=100), dims, pow2)
    @settings(max_examples=60, deadline=None)
    def test_bulk_distance_linear_in_candidates(self, n_cand, n_d, n_t):
        c = DEFAULT_COSTS
        one = c.bulk_distance_cycles(1, n_d, n_t)
        many = c.bulk_distance_cycles(n_cand, n_d, n_t)
        assert many == pytest.approx(n_cand * one)


class TestSongInvariance:
    """SONG's host-thread charges depend on sizes only."""

    @given(sizes, sizes)
    @settings(max_examples=60, deadline=None)
    def test_locate_linear_in_degree(self, degree, queue_len):
        c = DEFAULT_COSTS
        base = c.song_locate_cycles(degree, queue_len)
        doubled = c.song_locate_cycles(2 * degree, queue_len)
        # Linear in the scanned neighbors (plus a constant extract term).
        assert doubled > base
        extract = c.song_locate_cycles(0, queue_len)
        assert (doubled - extract) == pytest.approx(2 * (base - extract))

    @given(sizes, sizes)
    @settings(max_examples=60, deadline=None)
    def test_update_linear_in_insertions(self, n_fresh, queue_len):
        c = DEFAULT_COSTS
        assert c.song_update_cycles(2 * n_fresh, queue_len) == \
            pytest.approx(2 * c.song_update_cycles(n_fresh, queue_len))

    @given(sizes, sizes, pow2, pow2)
    @settings(max_examples=60, deadline=None)
    def test_crossover_structure(self, l_n, l_t, n_t_a, n_t_b):
        """At any thread count, SONG's serialized structure work is at
        least GANNS's parallel structure work for matched sizes — the
        inequality every speedup in the paper rests on."""
        from hypothesis import assume
        # Guard the realistic regime: n_t >= 4 (as in Figure 10) and a
        # degree of at least d_min = 8.  Below d_min SONG's serial work
        # (linear in degree) shrinks faster than GANNS's l_n-driven
        # parallel phases, but no graph this repo builds has such rows.
        assume(l_t >= 8)
        c = DEFAULT_COSTS
        song = (c.song_locate_cycles(l_t, max(l_n, 2))
                + c.song_update_cycles(l_t, max(l_n, 2)))
        ganns = c.ganns_structure_cycles(l_n, l_t, max(n_t_a, n_t_b))
        if max(n_t_a, n_t_b) >= 4:
            assert song >= 0.5 * ganns
