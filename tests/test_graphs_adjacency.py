"""Tests for the fixed-degree adjacency structure, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.adjacency import (
    HierarchicalGraph,
    PAD_ID,
    ProximityGraph,
)


class TestConstruction:
    def test_empty_graph_state(self):
        g = ProximityGraph(5, 3)
        assert g.n_vertices == 5
        assert g.d_max == 3
        assert g.n_edges() == 0
        assert (g.neighbor_ids == PAD_ID).all()
        assert np.isinf(g.neighbor_dists).all()

    def test_rejects_bad_sizes(self):
        with pytest.raises(GraphError):
            ProximityGraph(0, 3)
        with pytest.raises(GraphError):
            ProximityGraph(5, 0)

    def test_memory_bytes_matches_paper_formula(self):
        """Global memory is O(n_p x d_max) (Section IV-C)."""
        small = ProximityGraph(100, 32).memory_bytes()
        big = ProximityGraph(200, 32).memory_bytes()
        assert big == pytest.approx(2 * small, rel=0.01)


class TestInsertEdge:
    def test_insert_keeps_sorted_order(self):
        g = ProximityGraph(10, 4)
        for dst, dist in [(1, 0.5), (2, 0.2), (3, 0.9), (4, 0.1)]:
            assert g.insert_edge(0, dst, dist)
        assert np.array_equal(g.neighbors(0), [4, 2, 1, 3])
        assert np.array_equal(g.neighbor_distances(0), [0.1, 0.2, 0.5, 0.9])

    def test_full_row_evicts_worst(self):
        g = ProximityGraph(10, 2)
        g.insert_edge(0, 1, 0.5)
        g.insert_edge(0, 2, 0.3)
        assert g.insert_edge(0, 3, 0.1)
        assert np.array_equal(g.neighbors(0), [3, 2])

    def test_full_row_rejects_worse_candidate(self):
        g = ProximityGraph(10, 2)
        g.insert_edge(0, 1, 0.1)
        g.insert_edge(0, 2, 0.2)
        assert not g.insert_edge(0, 3, 0.9)
        assert np.array_equal(g.neighbors(0), [1, 2])

    def test_duplicate_insert_is_noop(self):
        g = ProximityGraph(10, 4)
        assert g.insert_edge(0, 1, 0.5)
        assert not g.insert_edge(0, 1, 0.5)
        assert g.degree(0) == 1

    def test_self_loop_rejected(self):
        g = ProximityGraph(10, 4)
        with pytest.raises(GraphError, match="self-loop"):
            g.insert_edge(3, 3, 0.0)

    def test_out_of_range_vertices_rejected(self):
        g = ProximityGraph(10, 4)
        with pytest.raises(GraphError, match="out of range"):
            g.insert_edge(10, 0, 0.1)
        with pytest.raises(GraphError, match="out of range"):
            g.insert_edge(0, -1, 0.1)

    def test_equal_distance_ties_break_by_id(self):
        g = ProximityGraph(10, 4)
        g.insert_edge(0, 5, 0.5)
        g.insert_edge(0, 2, 0.5)
        g.insert_edge(0, 8, 0.5)
        assert np.array_equal(g.neighbors(0), [2, 5, 8])

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=30),
                              st.floats(min_value=0, max_value=10)),
                    min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_row_invariants_hold_under_any_insertion_sequence(self, edges):
        """Property: after arbitrary insertions, the row is sorted,
        duplicate-free, within capacity, and contains the globally best
        entries ever offered."""
        g = ProximityGraph(31, 4)
        best = {}
        for dst, dist in edges:
            g.insert_edge(0, dst, dist)
            if dst not in best or dist < best[dst]:
                best.setdefault(dst, dist)
        degree = g.degree(0)
        assert degree <= 4
        dists = g.neighbor_distances(0)
        assert (np.diff(dists) >= 0).all()
        ids = g.neighbors(0)
        assert len(set(ids.tolist())) == degree
        # The kept entries are the best (dist, id) pairs among first-time
        # insertions (duplicates are no-ops, so first distance wins).
        first_seen = {}
        for dst, dist in edges:
            first_seen.setdefault(dst, dist)
        expected = sorted((d, v) for v, d in first_seen.items())[:4]
        # Compare only when no eviction/reinsertion interplay is possible:
        # kept set must be a subset of all offered pairs with count == min.
        assert degree == min(len(first_seen), 4)
        got = sorted(zip(dists.tolist(), ids.tolist()))
        for (gd, gi), (ed, ei) in zip(got, expected):
            assert gd <= ed + 1e-12


class TestRowOperations:
    def test_set_row(self):
        g = ProximityGraph(10, 4)
        g.set_row(2, [5, 7], [0.1, 0.4])
        assert np.array_equal(g.neighbors(2), [5, 7])
        assert g.degree(2) == 2

    def test_set_row_rejects_unsorted(self):
        g = ProximityGraph(10, 4)
        with pytest.raises(GraphError, match="sorted"):
            g.set_row(2, [5, 7], [0.4, 0.1])

    def test_set_row_rejects_overlong(self):
        g = ProximityGraph(10, 2)
        with pytest.raises(GraphError, match="exceeds d_max"):
            g.set_row(0, [1, 2, 3], [0.1, 0.2, 0.3])

    def test_set_row_replaces_existing(self):
        g = ProximityGraph(10, 4)
        g.set_row(0, [1, 2, 3], [0.1, 0.2, 0.3])
        g.set_row(0, [9], [0.5])
        assert np.array_equal(g.neighbors(0), [9])
        assert (g.neighbor_ids[0, 1:] == PAD_ID).all()

    def test_merge_row_keeps_best_dmax(self):
        g = ProximityGraph(10, 3)
        g.set_row(0, [1, 2], [0.1, 0.4])
        g.merge_row(0, [3, 4], [0.2, 0.9])
        assert np.array_equal(g.neighbors(0), [1, 3, 2])

    def test_merge_row_deduplicates(self):
        g = ProximityGraph(10, 4)
        g.set_row(0, [1, 2], [0.1, 0.4])
        g.merge_row(0, [2, 3], [0.4, 0.2])
        assert np.array_equal(g.neighbors(0), [1, 3, 2])

    def test_merge_row_empty_batch(self):
        g = ProximityGraph(10, 4)
        g.set_row(0, [1], [0.1])
        g.merge_row(0, [], [])
        assert np.array_equal(g.neighbors(0), [1])


class TestAccessors:
    def test_has_edge(self):
        g = ProximityGraph(10, 4)
        g.insert_edge(0, 3, 0.5)
        assert g.has_edge(0, 3)
        assert not g.has_edge(3, 0)

    def test_edge_set(self):
        g = ProximityGraph(5, 4)
        g.insert_edge(0, 1, 0.1)
        g.insert_edge(1, 0, 0.1)
        assert g.edge_set() == {(0, 1), (1, 0)}

    def test_copy_is_deep(self):
        g = ProximityGraph(5, 4)
        g.insert_edge(0, 1, 0.1)
        clone = g.copy()
        clone.insert_edge(0, 2, 0.05)
        assert g.degree(0) == 1
        assert clone.degree(0) == 2

    def test_from_rows_round_trip(self):
        g = ProximityGraph(5, 3)
        g.set_row(0, [1, 2], [0.1, 0.2])
        g.set_row(3, [4], [0.7])
        rebuilt = ProximityGraph.from_rows(g.neighbor_ids,
                                           g.neighbor_dists)
        assert rebuilt.edge_set() == g.edge_set()


class TestHierarchicalGraph:
    def _layers(self, n=10, d_max=4, sizes=(10, 4, 1)):
        return [ProximityGraph(n, d_max) for _ in sizes], list(sizes)

    def test_valid_construction(self):
        layers, sizes = self._layers()
        h = HierarchicalGraph(layers, sizes)
        assert h.n_layers == 3
        assert h.bottom is layers[0]
        assert h.entry_vertex() == 0

    def test_layer_vertices_prefix_property(self):
        layers, sizes = self._layers()
        h = HierarchicalGraph(layers, sizes)
        assert h.layer_vertices(1) == (0, 4)

    def test_rejects_increasing_sizes(self):
        layers, _ = self._layers()
        with pytest.raises(GraphError, match="non-increasing"):
            HierarchicalGraph(layers, [10, 4, 6])

    def test_rejects_empty(self):
        with pytest.raises(GraphError, match="at least one"):
            HierarchicalGraph([], [])

    def test_rejects_size_layer_mismatch(self):
        layers, _ = self._layers()
        with pytest.raises(GraphError):
            HierarchicalGraph(layers, [10, 4])

    def test_rejects_undersized_layer_graph(self):
        layers = [ProximityGraph(3, 2)]
        with pytest.raises(GraphError, match="claims"):
            HierarchicalGraph(layers, [5])

    def test_memory_bytes_sums_layers(self):
        layers, sizes = self._layers()
        h = HierarchicalGraph(layers, sizes)
        assert h.memory_bytes() == sum(l.memory_bytes() for l in layers)

    def test_layer_vertices_bounds(self):
        layers, sizes = self._layers()
        h = HierarchicalGraph(layers, sizes)
        with pytest.raises(GraphError, match="out of range"):
            h.layer_vertices(3)
