"""Tests for structural graph analysis (navigability measures)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import ProximityGraph
from repro.graphs.analysis import (
    degree_distribution,
    hop_histogram,
    long_link_fraction,
    mean_hops,
    navigability_report,
    neighborhood_overlap,
)


def _chain(n=6):
    g = ProximityGraph(n, 2)
    for v in range(n - 1):
        g.insert_edge(v, v + 1, 1.0)
    return g


class TestDegreeDistribution:
    def test_chain_degrees(self):
        dist = degree_distribution(_chain(5))
        assert dist.out_max == 1
        assert dist.out_min == 0
        assert dist.in_max == 1
        assert dist.in_mean == pytest.approx(0.8)

    def test_hub_detection(self):
        g = ProximityGraph(10, 4)
        for v in range(1, 10):
            g.insert_edge(v, 0, 1.0)  # everyone points at vertex 0
        dist = degree_distribution(g)
        assert dist.in_max == 9
        assert dist.in_degree_skew > 5.0

    def test_nsw_degrees_bounded(self, small_graph):
        dist = degree_distribution(small_graph)
        assert dist.out_max <= small_graph.d_max


class TestLongLinks:
    def test_uniform_lengths_no_long_links(self):
        assert long_link_fraction(_chain()) == 0.0

    def test_one_long_edge_detected(self):
        g = ProximityGraph(6, 3)
        for v in range(4):
            g.insert_edge(v, v + 1, 1.0)
        g.insert_edge(0, 5, 100.0)
        assert long_link_fraction(g, factor=4.0) == pytest.approx(1 / 5)

    def test_empty_graph(self):
        assert long_link_fraction(ProximityGraph(3, 2)) == 0.0

    def test_bad_factor(self):
        with pytest.raises(GraphError, match="factor"):
            long_link_fraction(_chain(), factor=0)

    def test_nsw_has_long_links_knn_does_not(self, small_points):
        """The structural reason NSW is navigable and KNN graphs are not
        (Section II-B's short-range/long-range link distinction)."""
        from repro.baselines.nsw_cpu import build_nsw_cpu
        from repro.baselines.nn_descent import build_knn_graph_nn_descent
        points = small_points[:300]
        nsw = build_nsw_cpu(points, d_min=6, d_max=12).graph
        knn = build_knn_graph_nn_descent(points, k=6, seed=0).graph
        assert long_link_fraction(nsw) > long_link_fraction(knn)


class TestHops:
    def test_chain_hop_histogram(self):
        histogram = hop_histogram(_chain(4), entry=0)
        assert histogram == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_unreachable_bucket(self):
        g = ProximityGraph(3, 2)
        g.insert_edge(0, 1, 1.0)
        histogram = hop_histogram(g, entry=0)
        assert histogram[-1] == 1

    def test_mean_hops_chain(self):
        assert mean_hops(_chain(5), entry=0) == pytest.approx(2.0)

    def test_max_hops_truncates(self):
        histogram = hop_histogram(_chain(6), entry=0, max_hops=2)
        assert histogram.get(-1, 0) == 3

    def test_entry_bounds(self):
        with pytest.raises(GraphError, match="out of range"):
            hop_histogram(_chain(), entry=99)

    def test_nsw_hops_logarithmic(self, small_graph):
        """Small-world property: mean hops ≪ n."""
        hops = mean_hops(small_graph, entry=0)
        assert hops < 10.0


class TestOverlap:
    def test_disconnected_graph_zero(self):
        assert neighborhood_overlap(ProximityGraph(5, 2)) == 0.0

    def test_clique_full_overlap(self):
        g = ProximityGraph(4, 3)
        for v in range(4):
            for u in range(4):
                if u != v:
                    g.insert_edge(v, u, 1.0 + u + v)
        overlap = neighborhood_overlap(g, sample=4)
        assert overlap > 0.1  # adjacent rows share most members

    def test_bad_sample(self):
        with pytest.raises(GraphError, match="sample"):
            neighborhood_overlap(_chain(), sample=0)


class TestNavigabilityReport:
    def test_report_on_real_graph(self, small_graph):
        report = navigability_report(small_graph)
        assert report.unreachable_fraction < 0.05
        assert report.mean_hops_from_entry > 0
        assert 0.0 <= report.neighborhood_overlap <= 1.0
        assert report.degrees.out_max <= small_graph.d_max

    def test_overlap_explains_ganns_redundancy(self, small_graph,
                                               small_points,
                                               small_queries):
        """The measured neighborhood overlap predicts the direction of
        GANNS's redundant distance computations: higher overlap, more
        invalidated T entries."""
        from repro.core.ganns import ganns_search
        from repro.core.params import SearchParams
        report = ganns_search(small_graph, small_points, small_queries,
                              SearchParams(k=10, l_n=64))
        overlap = neighborhood_overlap(small_graph)
        # Scanned = iterations x degree on average; fresh beam-search
        # distances would be far fewer.  With positive overlap, GANNS
        # must have recomputed something.
        assert overlap > 0.0
        assert report.n_distance_computations > small_graph.n_vertices
