"""Typed errors from the index-family registry, at every entry point.

An unknown family name must surface as
:class:`~repro.errors.UnknownFamilyError` — a
:class:`~repro.errors.ConfigurationError`, *never* a bare
:class:`KeyError` — from each layer that resolves families by name:
``GannsIndex.build`` / ``from_graph``, :class:`ServeEngine`,
:class:`ClusterEngine`, ``MutableIndex.build`` and the CLI (exit code
2, the typed-error path).  Separately, a registered family that cannot
stream mutations raises the typed
:class:`~repro.errors.UnsupportedOperationError` from
``MutableIndex.build``.
"""

import numpy as np
import pytest

from repro import GannsIndex
from repro.cli import main as cli_main
from repro.cluster import ClusterEngine
from repro.core import backend_families, get_backend
from repro.core.backend import IndexBackend, register_backend
from repro.core.params import BuildParams
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import (
    ConfigurationError,
    ReproError,
    UnknownFamilyError,
    UnsupportedOperationError,
)
from repro.mutable import MutableIndex
from repro.serve import ServeEngine

POINTS = gaussian_mixture(120, 8, n_clusters=4, cluster_std=0.4,
                          intrinsic_dim=4, seed=5)


class TestUnknownFamilyIsTyped:
    def test_error_type_and_message(self):
        with pytest.raises(UnknownFamilyError, match="graph_type"):
            get_backend("bogus")
        assert issubclass(UnknownFamilyError, ConfigurationError)
        assert issubclass(UnknownFamilyError, ReproError)
        assert not issubclass(UnknownFamilyError, KeyError)

    def test_message_names_registered_families(self):
        with pytest.raises(UnknownFamilyError) as excinfo:
            get_backend("bogus")
        for family in backend_families():
            assert family in str(excinfo.value)

    def test_ganns_index_build(self):
        with pytest.raises(UnknownFamilyError):
            GannsIndex.build(POINTS, graph_type="bogus")

    def test_ganns_index_from_graph(self):
        index = GannsIndex.build(POINTS,
                                 params=BuildParams(d_min=4, d_max=8))
        with pytest.raises(UnknownFamilyError):
            GannsIndex.from_graph(index.points, index.graph,
                                  graph_type="bogus")

    def test_serve_engine(self):
        index = GannsIndex.build(POINTS,
                                 params=BuildParams(d_min=4, d_max=8))
        with pytest.raises(UnknownFamilyError):
            ServeEngine(index.graph, index.points, family="bogus")

    def test_cluster_engine(self):
        with pytest.raises(UnknownFamilyError):
            ClusterEngine(POINTS, n_shards=2, n_replicas=1,
                          family="bogus")

    def test_mutable_index_build(self):
        with pytest.raises(UnknownFamilyError):
            MutableIndex.build(POINTS, BuildParams(d_min=4, d_max=8),
                               family="bogus")

    def test_cli_build_exits_2_not_traceback(self, tmp_path, capsys):
        code = cli_main(["build", "sift1m", "--points", "200",
                         "--graph-type", "bogus",
                         "--output", str(tmp_path / "idx.npz")])
        assert code == 2
        err = capsys.readouterr().err
        assert "graph_type" in err
        assert "Traceback" not in err


class TestUnsupportedMutation:
    def test_cagra_cannot_stream_mutations(self):
        assert not get_backend("cagra").supports_mutation
        with pytest.raises(UnsupportedOperationError, match="cagra"):
            MutableIndex.build(POINTS, BuildParams(d_min=4, d_max=8),
                               family="cagra")

    def test_unsupported_operation_is_a_repro_error(self):
        assert issubclass(UnsupportedOperationError, ReproError)


class TestRegistration:
    def test_new_family_is_resolvable_and_listed(self):
        class _ToyBackend(IndexBackend):
            family = "toy-test-only"

            def build(self, points, params, metric="euclidean", **kwargs):
                raise NotImplementedError

        from repro.core import backend as backend_mod
        register_backend(_ToyBackend())
        try:
            assert "toy-test-only" in backend_families()
            assert isinstance(get_backend("toy-test-only"), _ToyBackend)
        finally:
            del backend_mod._REGISTRY["toy-test-only"]
        assert "toy-test-only" not in backend_families()

    def test_unnamed_backend_is_rejected(self):
        class _Anon(IndexBackend):
            def build(self, points, params, metric="euclidean", **kwargs):
                raise NotImplementedError

        with pytest.raises(ConfigurationError):
            register_backend(_Anon())
