"""Tests for dataset persistence."""

import numpy as np
import pytest

from repro.datasets.catalog import load_dataset
from repro.datasets.io import load_dataset_file, save_dataset
from repro.errors import DatasetError


class TestRoundTrip:
    def test_points_queries_metric_preserved(self, tmp_path):
        ds = load_dataset("nytimes", n_points=300, n_queries=10)
        path = tmp_path / "ds.npz"
        save_dataset(ds, path)
        loaded = load_dataset_file(path)
        assert loaded.name == ds.name
        assert loaded.metric_name == "cosine"
        assert np.array_equal(loaded.points, ds.points)
        assert np.array_equal(loaded.queries, ds.queries)

    def test_ground_truth_cache_preserved(self, tmp_path):
        ds = load_dataset("sift1m", n_points=200, n_queries=8)
        gt = ds.ground_truth(5)
        path = tmp_path / "ds.npz"
        save_dataset(ds, path)
        loaded = load_dataset_file(path)
        assert np.array_equal(loaded._ground_truth_cache[5], gt)

    def test_loaded_dataset_can_compute_more_ground_truth(self, tmp_path):
        ds = load_dataset("sift1m", n_points=200, n_queries=8)
        path = tmp_path / "ds.npz"
        save_dataset(ds, path)
        loaded = load_dataset_file(path)
        assert loaded.ground_truth(3).shape == (8, 3)


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="cannot read"):
            load_dataset_file(tmp_path / "nope.npz")

    def test_missing_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, points=np.zeros((2, 2)))
        with pytest.raises(DatasetError, match="missing arrays"):
            load_dataset_file(path)

    def test_wrong_format_version(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(path, format_version=np.array(999), name=np.array("x"),
                 metric_name=np.array("euclidean"),
                 points=np.zeros((2, 2)), queries=np.zeros((1, 2)))
        with pytest.raises(DatasetError, match="format version"):
            load_dataset_file(path)
