"""End-to-end mini runs over every Table I stand-in.

One small build + search per catalog dataset: catches metric plumbing,
dimensionality and generator issues that single-dataset tests miss
(e.g. cosine-path bugs would only surface on nytimes/glove200).
"""

import numpy as np
import pytest

from repro.core.construction import build_nsw_gpu
from repro.core.ganns import ganns_search
from repro.core.params import BuildParams, SearchParams
from repro.datasets.catalog import DATASET_SPECS, load_dataset
from repro.graphs.validation import validate_graph
from repro.metrics.recall import recall_at_k

PARAMS = BuildParams(d_min=8, d_max=16, n_blocks=8)


@pytest.fixture(scope="module", params=sorted(DATASET_SPECS))
def built(request):
    """(dataset, graph) for one catalog stand-in, built once per module."""
    dataset = load_dataset(request.param, n_points=700, n_queries=40)
    report = build_nsw_gpu(dataset.points, PARAMS,
                           metric=dataset.metric_name)
    return dataset, report.graph


class TestEveryDataset:
    def test_build_validates(self, built):
        dataset, graph = built
        validate_graph(graph, points=dataset.points,
                       check_distances=True)
        assert graph.metric_name == dataset.metric_name

    def test_search_recall_sane(self, built):
        dataset, graph = built
        report = ganns_search(graph, dataset.points, dataset.queries,
                              SearchParams(k=10, l_n=128))
        recall = recall_at_k(report.ids, dataset.ground_truth(10))
        # Loose floor: even the hard stand-ins clear this at l_n=128 on
        # 700 points; a metric or generator regression would crater it.
        assert recall > 0.3, f"{dataset.name}: recall {recall}"

    def test_self_queries_exact(self, built):
        dataset, graph = built
        report = ganns_search(graph, dataset.points, dataset.points[:5],
                              SearchParams(k=3, l_n=128))
        assert np.allclose(report.dists[:, 0], 0.0,
                           atol=1e-5), dataset.name

    def test_simulated_throughput_positive(self, built):
        dataset, graph = built
        report = ganns_search(graph, dataset.points, dataset.queries[:10],
                              SearchParams(k=5, l_n=64))
        assert report.queries_per_second() > 0
