"""Tests for kernel-launch scheduling and cycle-to-time conversion."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpusim.costs import DEFAULT_COSTS
from repro.gpusim.device import QUADRO_P5000
from repro.gpusim.kernel import KernelLaunch, _makespan


class TestMakespan:
    def test_fits_in_one_wave(self):
        cycles = np.array([5.0, 3.0, 4.0])
        assert _makespan(cycles, concurrency=8) == 5.0

    def test_uniform_blocks_closed_form(self):
        cycles = np.full(10, 2.0)
        # 10 blocks over 4 slots -> 3 waves of 2 cycles.
        assert _makespan(cycles, concurrency=4) == 6.0

    def test_lpt_packing(self):
        cycles = np.array([4.0, 3.0, 2.0, 1.0])
        # Two slots: LPT gives {4,1} and {3,2} -> makespan 5.
        assert _makespan(cycles, concurrency=2) == 5.0

    def test_empty_grid(self):
        assert _makespan(np.zeros(0), concurrency=4) == 0.0

    def test_makespan_bounds(self):
        rng = np.random.default_rng(0)
        cycles = rng.uniform(1, 100, size=57)
        concurrency = 8
        result = _makespan(cycles, concurrency)
        lower = max(cycles.max(), cycles.sum() / concurrency)
        assert lower <= result <= cycles.sum()


class TestKernelLaunch:
    def test_concurrency_from_occupancy(self):
        kernel = KernelLaunch(QUADRO_P5000, n_threads=32)
        assert kernel.concurrency == QUADRO_P5000.concurrent_blocks(32)

    def test_sub_warp_block_occupies_full_warp_slot(self):
        """A 4-thread block still takes a warp slot: Figure 10's n_t sweep
        changes per-block speed, not device-level concurrency."""
        small = KernelLaunch(QUADRO_P5000, n_threads=4)
        full = KernelLaunch(QUADRO_P5000, n_threads=32)
        assert small.concurrency == full.concurrency

    def test_run_scalar_cycles(self):
        kernel = KernelLaunch(QUADRO_P5000, n_threads=32)
        result = kernel.run(1000.0, n_blocks=10)
        assert result.n_blocks == 10
        assert result.total_cycles == 10_000.0
        assert result.makespan_cycles == 1000.0

    def test_run_vector_cycles(self):
        kernel = KernelLaunch(QUADRO_P5000, n_threads=32)
        result = kernel.run(np.array([100.0, 200.0]))
        assert result.n_blocks == 2
        assert result.makespan_cycles == 200.0

    def test_scalar_requires_n_blocks(self):
        kernel = KernelLaunch(QUADRO_P5000)
        with pytest.raises(ConfigurationError, match="n_blocks"):
            kernel.run(100.0)

    def test_vector_n_blocks_mismatch_rejected(self):
        kernel = KernelLaunch(QUADRO_P5000)
        with pytest.raises(ConfigurationError, match="disagrees"):
            kernel.run(np.array([1.0, 2.0]), n_blocks=3)

    def test_negative_cycles_rejected(self):
        kernel = KernelLaunch(QUADRO_P5000)
        with pytest.raises(ConfigurationError, match="non-negative"):
            kernel.run(np.array([-1.0]))

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            KernelLaunch(QUADRO_P5000, n_threads=0)

    def test_seconds_uses_time_scale(self):
        kernel = KernelLaunch(QUADRO_P5000, n_threads=32)
        seconds = kernel.cycles_to_seconds(1e9)
        expected = 1e9 * DEFAULT_COSTS.time_scale / QUADRO_P5000.clock_hz
        assert seconds == pytest.approx(expected)

    def test_queries_per_second(self):
        kernel = KernelLaunch(QUADRO_P5000, n_threads=32)
        result = kernel.run(1000.0, n_blocks=100)
        qps = kernel.queries_per_second(result)
        assert qps == pytest.approx(100 / result.seconds)

    def test_parallel_efficiency_in_unit_interval(self):
        kernel = KernelLaunch(QUADRO_P5000, n_threads=32)
        result = kernel.run(np.random.default_rng(0).uniform(1, 10, 2000))
        assert 0.0 < result.parallel_efficiency <= 1.0

    def test_more_blocks_than_slots_queue(self):
        """Scaling work past device concurrency grows elapsed time
        linearly — the saturation regime of Figure 14."""
        kernel = KernelLaunch(QUADRO_P5000, n_threads=32)
        c = kernel.concurrency
        one_wave = kernel.run(100.0, n_blocks=c).seconds
        four_waves = kernel.run(100.0, n_blocks=4 * c).seconds
        assert four_waves == pytest.approx(4 * one_wave)


class TestScheduleBlocks:
    def _check_valid(self, placements, cycles, concurrency):
        from collections import defaultdict
        by_slot = defaultdict(list)
        for p in placements:
            assert 0 <= p.slot < concurrency
            assert p.end_cycles == pytest.approx(
                p.start_cycles + cycles[p.block])
            by_slot[p.slot].append(p)
        # No overlap within a slot.
        for slot_placements in by_slot.values():
            slot_placements.sort(key=lambda p: p.start_cycles)
            for a, b in zip(slot_placements, slot_placements[1:]):
                assert a.end_cycles <= b.start_cycles + 1e-9

    def test_schedule_is_valid_and_matches_makespan(self):
        from repro.gpusim.kernel import _makespan, schedule_blocks
        rng = np.random.default_rng(0)
        cycles = rng.uniform(1, 50, size=37)
        placements = schedule_blocks(cycles, concurrency=5)
        self._check_valid(placements, cycles, 5)
        assert max(p.end_cycles for p in placements) == pytest.approx(
            _makespan(cycles, 5))

    def test_every_block_scheduled_once(self):
        from repro.gpusim.kernel import schedule_blocks
        placements = schedule_blocks([3.0, 1.0, 2.0], concurrency=2)
        assert sorted(p.block for p in placements) == [0, 1, 2]

    def test_rejects_bad_inputs(self):
        from repro.gpusim.kernel import schedule_blocks
        with pytest.raises(ConfigurationError, match="concurrency"):
            schedule_blocks([1.0], concurrency=0)
        with pytest.raises(ConfigurationError, match="non-negative"):
            schedule_blocks([-1.0], concurrency=2)

    def test_render_timeline(self):
        from repro.gpusim.kernel import render_timeline, schedule_blocks
        placements = schedule_blocks([5.0, 3.0, 4.0, 1.0], concurrency=2)
        art = render_timeline(placements, width=30)
        assert "slot   0" in art and "slot   1" in art
        assert "cycles" in art

    def test_render_empty(self):
        from repro.gpusim.kernel import render_timeline
        assert "(empty schedule)" in render_timeline([])

    def test_render_caps_slots(self):
        from repro.gpusim.kernel import render_timeline, schedule_blocks
        placements = schedule_blocks(np.ones(40), concurrency=20)
        art = render_timeline(placements, max_slots=4)
        assert "more slots" in art
