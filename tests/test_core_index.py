"""Tests for the high-level GannsIndex API."""

import numpy as np
import pytest

from repro.core.index import GannsIndex
from repro.core.params import BuildParams
from repro.errors import ConfigurationError, SearchError

PARAMS = BuildParams(d_min=6, d_max=12, n_blocks=8)


@pytest.fixture(scope="module")
def points():
    from repro.datasets.synthetic import gaussian_mixture
    return gaussian_mixture(500, 16, n_clusters=8, cluster_std=0.3,
                            intrinsic_dim=8, seed=11)


@pytest.fixture(scope="module")
def queries():
    from repro.datasets.synthetic import gaussian_mixture
    return gaussian_mixture(25, 16, n_clusters=8, cluster_std=0.3,
                            intrinsic_dim=8, seed=12)


@pytest.fixture(scope="module")
def ground_truth(points, queries):
    from repro.datasets.ground_truth import exact_knn
    return exact_knn(points, queries, 10)


class TestBuild:
    def test_nsw_default(self, points, queries, ground_truth):
        index = GannsIndex.build(points, params=PARAMS)
        assert index.graph_type == "nsw"
        recall = index.evaluate_recall(queries, ground_truth, k=10, l_n=64)
        assert recall > 0.8

    @pytest.mark.parametrize("strategy", ["naive-parallel", "serial"])
    def test_nsw_other_strategies(self, points, strategy):
        index = GannsIndex.build(points, strategy=strategy, params=PARAMS)
        assert index.build_report.algorithm.startswith(
            {"naive-parallel": "gnaiveparallel",
             "serial": "gserial"}[strategy])

    def test_hnsw(self, points, queries, ground_truth):
        index = GannsIndex.build(points, graph_type="hnsw", params=PARAMS)
        assert index.order is not None
        recall = index.evaluate_recall(queries, ground_truth, k=10, l_n=64)
        assert recall > 0.7

    def test_knn_graph(self, points):
        index = GannsIndex.build(points, graph_type="knn", knn_k=8,
                                 params=PARAMS)
        assert (index.graph.degrees == 8).all()

    def test_unknown_graph_type(self, points):
        with pytest.raises(ConfigurationError, match="graph_type"):
            GannsIndex.build(points, graph_type="rtree")

    def test_unknown_strategy(self, points):
        with pytest.raises(ConfigurationError, match="strategy"):
            GannsIndex.build(points, strategy="quantum")

    def test_hnsw_rejects_other_strategies(self, points):
        with pytest.raises(ConfigurationError, match="ggraphcon"):
            GannsIndex.build(points, graph_type="hnsw", strategy="serial")

    def test_from_graph(self, points):
        from repro.baselines.nsw_cpu import build_nsw_cpu
        graph = build_nsw_cpu(points, 8, 16).graph
        index = GannsIndex.from_graph(points, graph)
        ids, dists = index.search(points[:3], k=5, l_n=64)
        assert np.array_equal(ids[:, 0], np.arange(3))
        assert np.allclose(dists[:, 0], 0.0, atol=1e-9)


class TestSearch:
    @pytest.fixture(scope="class")
    def index(self, points):
        return GannsIndex.build(points, params=PARAMS)

    def test_search_shapes(self, index, queries):
        ids, dists = index.search(queries, k=7)
        assert ids.shape == (25, 7)
        assert dists.shape == (25, 7)

    def test_all_algorithms_agree_on_easy_queries(self, index, points):
        for algorithm in ("ganns", "song", "beam"):
            ids, _ = index.search(points[:4], k=3, algorithm=algorithm,
                                  l_n=64)
            assert np.array_equal(ids[:, 0], np.arange(4)), algorithm

    def test_search_report_has_tracker(self, index, queries):
        report = index.search_report(queries, k=5, l_n=64)
        assert report.tracker.total_cycles() > 0
        assert report.queries_per_second() > 0

    def test_default_l_n_scales_with_k(self, index, queries):
        report = index.search_report(queries, k=25)
        assert report.ids.shape[1] == 25

    def test_unknown_algorithm(self, index, queries):
        with pytest.raises(SearchError, match="algorithm"):
            index.search(queries, k=5, algorithm="faiss")

    def test_e_budget_knob(self, index, queries, ground_truth):
        low = index.evaluate_recall(queries, ground_truth, k=10,
                                    l_n=64, e=8)
        high = index.evaluate_recall(queries, ground_truth, k=10,
                                     l_n=64, e=64)
        assert high >= low


class TestHnswIdMapping:
    def test_ids_are_original_ids(self, points):
        index = GannsIndex.build(points, graph_type="hnsw", params=PARAMS)
        # Self-queries must return the original row numbers.
        ids, _ = index.search(points[:6], k=3, l_n=64)
        assert np.array_equal(ids[:, 0], np.arange(6))


class TestPersistence:
    def test_flat_round_trip(self, points, queries, tmp_path):
        index = GannsIndex.build(points, params=PARAMS)
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = GannsIndex.load(path)
        a, _ = index.search(queries, k=5, l_n=64)
        b, _ = loaded.search(queries, k=5, l_n=64)
        assert np.array_equal(a, b)

    def test_hierarchical_round_trip(self, points, queries, tmp_path):
        index = GannsIndex.build(points, graph_type="hnsw", params=PARAMS)
        path = tmp_path / "hindex.npz"
        index.save(path)
        loaded = GannsIndex.load(path)
        assert loaded.graph.n_layers == index.graph.n_layers
        a, _ = index.search(queries, k=5, l_n=64)
        b, _ = loaded.search(queries, k=5, l_n=64)
        assert np.array_equal(a, b)

    def test_version_check(self, points, tmp_path):
        index = GannsIndex.build(points, params=PARAMS)
        path = tmp_path / "index.npz"
        index.save(path)
        # Corrupt the version.
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["format_version"] = np.array(999)
        np.savez(path, **arrays)
        with pytest.raises(ConfigurationError, match="format version"):
            GannsIndex.load(path)
