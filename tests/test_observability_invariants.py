"""Invariant suite for the deterministic observability layer.

Three falsifiable claims, property-checked over randomized chaos
replays (aggressive fault plan, randomized trace seeds and shapes):

1. **Well-formed span trees.**  Every trace the engine emits satisfies,
   under an *independent* re-implementation of the rules (not
   :meth:`SpanTracer.validate`): children nest inside their parents,
   same-``(parent, lane)`` siblings never overlap, events fall inside
   their span's interval, and no span is open at shutdown.
2. **Exact reconciliation.**  Span durations, registry counters and the
   report's derived properties are three views of one replay and must
   agree bit-for-bit: request-span durations re-aggregate to the exact
   ServeReport percentiles, compute-span cycle attributes sum to the
   exact ``kernel.cycles.*`` counters, and
   :meth:`ServeReport.verify_against_metrics` /
   :meth:`FaultReport.verify_against_metrics` pass.
3. **Byte determinism.**  Two engines constructed from the same seeds
   produce byte-identical trace files and metric snapshots under an
   aggressive fault plan, and every delivered fault appears as a span
   event.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.params import SearchParams
from repro.faults import (
    AdmissionGovernor,
    BreakerPolicy,
    RetryPolicy,
    named_fault_plan,
)
from repro.gpusim.tracker import CycleTracker
from repro.observability import (
    MetricsRegistry,
    SpanTracer,
    TrackerMirror,
    iter_descendants,
)
from repro.serve import BatchPolicy, ResultCache, ServeEngine, synthetic_trace
from repro.serve.report import _percentile

PARAMS = SearchParams(k=10, l_n=32)
MEAN_QPS = 300_000.0

#: Span-event names the engine uses for fault-tolerance incidents.
FAULT_EVENT_NAMES = {"fault", "deadline_drop", "breaker_open", "degrade"}


def chaos_replay(small_graph, small_points, query_pool, n_requests,
                 trace_seed, fault_seed, mean_qps=MEAN_QPS):
    """One fully armed chaos replay with the observability layer on."""
    plan = named_fault_plan(
        "aggressive", horizon_seconds=2.0 * n_requests / mean_qps,
        seed=fault_seed)
    engine = ServeEngine(
        small_graph, small_points, PARAMS,
        policy=BatchPolicy(max_batch=64, max_wait_seconds=5e-4,
                           max_queue=1024),
        cache=ResultCache(capacity=512),
        faults=plan,
        retry=RetryPolicy(max_retries=2, base_seconds=2e-4,
                          cap_seconds=2e-3),
        breaker=BreakerPolicy(failure_threshold=3,
                              cooldown_seconds=2e-3),
        governor=AdmissionGovernor.default_for(PARAMS),
        default_deadline_seconds=20e-3)
    trace = synthetic_trace(query_pool, n_requests, mean_qps=mean_qps,
                            repeat_fraction=0.3, seed=trace_seed)
    tracer = SpanTracer()
    metrics = MetricsRegistry()
    report = engine.replay(trace, tracer=tracer, metrics=metrics)
    tracer.finish()
    return report, tracer, metrics


# ----------------------------------------------------------------------
# Independent well-formedness rules (deliberately NOT tracer.validate)
# ----------------------------------------------------------------------

def assert_well_formed(tracer: SpanTracer) -> None:
    spans = tracer.spans
    assert tracer.n_open == 0, "spans still open at shutdown"
    for span in spans:
        assert span.end_seconds is not None
        assert span.end_seconds >= span.start_seconds
        if span.parent_id is not None:
            parent = spans[span.parent_id]
            assert parent.start_seconds <= span.start_seconds, (
                f"{span.name} starts before its parent {parent.name}")
            assert span.end_seconds <= parent.end_seconds, (
                f"{span.name} outlives its parent {parent.name}")
        for event in span.events:
            assert (span.start_seconds <= event.seconds
                    <= span.end_seconds), (
                f"event {event.name} escapes span {span.name}")
    # Same-(parent, lane) siblings must not overlap: sort by start and
    # require each to end before the next begins (zero-width spans may
    # share an instant).
    groups = {}
    for span in spans:
        groups.setdefault((span.parent_id, span.lane), []).append(span)
    for (_parent, lane), members in groups.items():
        members.sort(key=lambda s: (s.start_seconds, s.end_seconds))
        for left, right in zip(members, members[1:]):
            assert not left.overlaps(right), (
                f"siblings {left.name}/{right.name} overlap on lane "
                f"{lane}: [{left.start_seconds}, {left.end_seconds}] "
                f"vs [{right.start_seconds}, {right.end_seconds}]")


class TestSpanTreeWellFormedness:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(n_requests=st.integers(min_value=40, max_value=220),
           trace_seed=st.integers(min_value=0, max_value=2**16),
           fault_seed=st.integers(min_value=0, max_value=2**16))
    def test_chaos_traces_are_well_formed(self, small_graph,
                                          small_points, query_pool,
                                          n_requests, trace_seed,
                                          fault_seed):
        report, tracer, _ = chaos_replay(
            small_graph, small_points, query_pool, n_requests,
            trace_seed, fault_seed)
        assert_well_formed(tracer)
        # The structural skeleton is always present.
        roots = tracer.roots()
        assert len(roots) == 1 and roots[0].name == "serve.replay"
        request_spans = tracer.find("request")
        assert len(request_spans) == report.n_requests
        assert len(tracer.find("batch")) >= report.n_batches

    def test_round_trip_preserves_bytes(self, small_graph, small_points,
                                        query_pool):
        _, tracer, _ = chaos_replay(small_graph, small_points,
                                    query_pool, 150, 5, 9)
        payload = tracer.to_json_bytes()
        clone = SpanTracer.from_json_bytes(payload)
        assert clone.to_json_bytes() == payload
        assert_well_formed(clone)


class TestExactReconciliation:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(n_requests=st.integers(min_value=40, max_value=220),
           trace_seed=st.integers(min_value=0, max_value=2**16),
           fault_seed=st.integers(min_value=0, max_value=2**16))
    def test_report_and_ledger_are_registry_views(
            self, small_graph, small_points, query_pool, n_requests,
            trace_seed, fault_seed):
        report, _, metrics = chaos_replay(
            small_graph, small_points, query_pool, n_requests,
            trace_seed, fault_seed)
        assert report.metrics is metrics
        report.verify_against_metrics()
        report.fault_report.verify_against_metrics(metrics)

    def test_request_span_durations_reproduce_percentiles(
            self, small_graph, small_points, query_pool):
        report, tracer, _ = chaos_replay(small_graph, small_points,
                                         query_pool, 200, 3, 7)
        served = [s for s in tracer.find("request")
                  if s.attributes["status"] in ("served", "cache_hit")]
        durations = np.array([s.duration_seconds for s in served],
                             dtype=np.float64)
        assert len(durations) == report.n_served
        # Bit-exact: span endpoints are the same floats the outcomes
        # carry, so the same percentile rule must return the same bits.
        for q, expected in ((50, report.p50_latency),
                            (95, report.p95_latency),
                            (99, report.p99_latency)):
            assert _percentile(durations, q) == expected

    def test_compute_span_cycles_sum_to_registry_counters(
            self, small_graph, small_points, query_pool):
        _, tracer, metrics = chaos_replay(small_graph, small_points,
                                          query_pool, 200, 11, 13)
        # Successful compute spans carry per-phase cycle attributes
        # (failed attempts burn engine time but publish no kernel
        # report).  Summing them in span-id order replays the exact
        # float additions the registry counters performed.
        sums = {}
        n_instrumented = 0
        for span in tracer.find("compute"):
            attrs = {k: v for k, v in span.attributes.items()
                     if k.startswith("cycles.")}
            if not attrs:
                continue
            n_instrumented += 1
            for key, value in attrs.items():
                phase = key[len("cycles."):]
                sums[phase] = sums.get(phase, 0.0) + value
            sums["_total"] = (sums.get("_total", 0.0)
                              + span.attributes["cycles_total"])
        assert n_instrumented > 0
        for phase, total in sums.items():
            name = ("kernel.cycles_total" if phase == "_total"
                    else f"kernel.cycles.{phase}")
            assert metrics.value(name) == total

    def test_drift_is_detected(self, small_graph, small_points,
                               query_pool):
        from repro.errors import ObservabilityError
        report, _, metrics = chaos_replay(small_graph, small_points,
                                          query_pool, 80, 1, 2)
        metrics.counter("serve.served").inc()  # sabotage
        with pytest.raises(ObservabilityError, match="drift"):
            report.verify_against_metrics()


class TestByteDeterminism:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(trace_seed=st.integers(min_value=0, max_value=2**16),
           fault_seed=st.integers(min_value=0, max_value=2**16))
    def test_same_seeds_same_bytes(self, small_graph, small_points,
                                   query_pool, trace_seed, fault_seed):
        first = chaos_replay(small_graph, small_points, query_pool,
                             120, trace_seed, fault_seed)
        second = chaos_replay(small_graph, small_points, query_pool,
                              120, trace_seed, fault_seed)
        assert first[1].to_json_bytes() == second[1].to_json_bytes()
        assert first[2].to_json_bytes() == second[2].to_json_bytes()
        assert first[0].to_bytes() == second[0].to_bytes()

    def test_every_delivered_fault_is_a_span_event(
            self, small_graph, small_points, query_pool):
        # A slower arrival rate stretches the horizon so the aggressive
        # plan actually lands a meaningful number of faults.
        report, tracer, _ = chaos_replay(small_graph, small_points,
                                         query_pool, 250, 21, 23,
                                         mean_qps=20_000.0)
        fr = report.fault_report
        assert fr.n_injected > 0, "chaos plan delivered nothing"
        fault_events = [event for span in tracer.spans
                        for event in span.events
                        if event.name == "fault"]
        # One "fault" span event per delivered injection, attached to
        # the attempt/compute span that absorbed it.
        assert len(fault_events) == fr.n_injected
        kinds = sorted(e.attributes["kind"] for e in fault_events)
        assert kinds == sorted(r.kind for r in fr.injections)
        if fr.deadline_dropped_requests:
            drops = [e for span in tracer.spans for e in span.events
                     if e.name == "deadline_drop"]
            assert len(drops) == fr.deadline_dropped_requests


class TestTrackerMirror:
    @settings(max_examples=25, deadline=None)
    @given(charges=st.lists(
        st.tuples(st.sampled_from(["sorting", "bulk_distance",
                                   "candidate_update"]),
                  st.floats(min_value=0.0, max_value=1e6,
                            allow_nan=False),
                  st.one_of(st.none(),
                            st.integers(min_value=0, max_value=7))),
        min_size=0, max_size=40))
    def test_mirror_totals_match_source_exactly(self, charges):
        source = CycleTracker(n_lanes=8)
        mirror = TrackerMirror(source).attach()
        for phase, cycles, lane in charges:
            lanes = None if lane is None else np.array([lane])
            source.charge(phase, cycles, lanes)
        assert mirror.tracker.phase_totals() == source.phase_totals()
        assert mirror.tracker.total_cycles() == source.total_cycles()
        frozen = mirror.tracker.total_cycles()
        mirror.detach()
        source.charge("sorting", 10.0)
        assert mirror.tracker.total_cycles() == frozen

    def test_descendant_iteration_covers_the_tree(self):
        tracer = SpanTracer()
        root = tracer.begin("root", 0.0)
        a = tracer.begin("a", 1.0, parent_id=root)
        tracer.add("a1", 1.0, 2.0, parent_id=a)
        tracer.end(a, 3.0)
        tracer.add("b", 3.0, 4.0, parent_id=root)
        tracer.end(root, 5.0)
        names = sorted(s.name for s in iter_descendants(tracer, root))
        assert names == ["a", "a1", "b"]


@pytest.fixture(scope="module")
def query_pool():
    """Distinct query vectors for the chaos traces."""
    from repro.datasets.synthetic import gaussian_mixture
    return gaussian_mixture(600, 24, n_clusters=8, cluster_std=0.3,
                            intrinsic_dim=8, seed=11)
