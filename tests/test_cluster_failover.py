"""Determinism and failover behavior of the serving cluster.

Three claims pinned here:

1. **Byte-identical replays** — the same trace, topology and fault
   plan produce byte-identical :class:`ClusterReport` encodings,
   including under aggressive seeded chaos.
2. **Replica failover preserves answers** — killing any single replica
   of a shard yields *exactly* the ids of the healthy run (failover
   costs time, never correctness).
3. **No silent degradation** — answers go partial only when a whole
   shard is dead, and then the outcome is explicitly flagged with the
   missing shard list.
"""

import numpy as np
import pytest

from repro.cluster import ClusterEngine, ClusterStatus, RouterPolicy
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.faults import RetryPolicy, named_fault_plan
from repro.faults.plan import (
    FAULT_WORKER_LOSS,
    FaultEvent,
    FaultPlan,
)
from repro.observability import MetricsRegistry, SpanTracer
from repro.serve import synthetic_trace

PARAMS = SearchParams(k=8, l_n=32, e=2)
N_SHARDS = 3
N_REPLICAS = 2


@pytest.fixture(scope="module")
def corpus():
    return gaussian_mixture(360, 16, n_clusters=4, cluster_std=0.4,
                            seed=21)


@pytest.fixture(scope="module")
def trace():
    pool = gaussian_mixture(48, 16, n_clusters=4, cluster_std=0.4,
                            seed=22)
    return synthetic_trace(pool, 40, mean_qps=2500.0, seed=23)


def make_cluster(corpus, faults=None, **kwargs):
    return ClusterEngine(corpus, n_shards=N_SHARDS,
                         n_replicas=N_REPLICAS, params=PARAMS,
                         faults=faults, **kwargs)


def kill_replicas(slots, at=0.0):
    """A plan that kills the given flat shard-replica slots."""
    return FaultPlan([FaultEvent(FAULT_WORKER_LOSS, max(at, 1e-9),
                                 target=slot) for slot in slots])


class TestDeterminism:
    def test_healthy_replays_are_byte_identical(self, corpus, trace):
        cluster = make_cluster(corpus)
        first = cluster.replay(trace)
        second = cluster.replay(trace)
        assert first.to_bytes() == second.to_bytes()
        assert first.digest() == second.digest()

    def test_chaos_replays_are_byte_identical(self, corpus, trace):
        horizon = trace[-1].arrival_seconds + 0.05
        plan = named_fault_plan(
            "replica-loss", horizon, seed=13,
            n_workers=N_SHARDS * N_REPLICAS)
        cluster = make_cluster(corpus, faults=plan,
                               retry=RetryPolicy(max_retries=2))
        first = cluster.replay(trace)
        second = cluster.replay(trace)
        assert first.to_bytes() == second.to_bytes()
        # Verification holds on every replay, not just the first.
        second.verify_against_metrics()

    def test_fresh_engine_reproduces_the_digest(self, corpus, trace):
        horizon = trace[-1].arrival_seconds + 0.05
        plan = named_fault_plan(
            "replica-loss", horizon, seed=13,
            n_workers=N_SHARDS * N_REPLICAS)
        a = make_cluster(corpus, faults=plan).replay(trace)
        b = make_cluster(corpus, faults=plan).replay(trace)
        assert a.digest() == b.digest()

    def test_different_fault_seeds_change_nothing_silently(
            self, corpus, trace):
        # Different seeds may change timing/outcomes, but every
        # complete answer must carry ids; no empty-but-served rows.
        horizon = trace[-1].arrival_seconds + 0.05
        for seed in (1, 2, 3):
            plan = named_fault_plan(
                "replica-loss", horizon, seed=seed,
                n_workers=N_SHARDS * N_REPLICAS)
            report = make_cluster(corpus, faults=plan).replay(trace)
            report.verify_against_metrics()
            for outcome in report.outcomes:
                if outcome.status is ClusterStatus.SERVED:
                    assert outcome.ids is not None
                    assert not outcome.missing_shards
                elif outcome.status is ClusterStatus.PARTIAL:
                    assert outcome.missing_shards
                else:
                    assert outcome.ids is None


class TestReplicaFailover:
    def test_killing_any_single_replica_preserves_ids(self, corpus,
                                                      trace):
        reference = make_cluster(corpus).replay(trace)
        for replica in range(N_REPLICAS):
            # Kill this replica of shard 1 before the trace starts.
            plan = kill_replicas([1 * N_REPLICAS + replica])
            report = make_cluster(corpus, faults=plan).replay(trace)
            assert report.n_served == reference.n_served
            assert report.n_partial == 0
            for got, want in zip(report.outcomes,
                                 reference.outcomes):
                np.testing.assert_array_equal(got.ids, want.ids)
                np.testing.assert_array_equal(got.dists, want.dists)

    def test_undetected_death_pays_failover_penalty(self, corpus,
                                                    trace):
        # Huge heartbeat: the death is never masked, so round-robin
        # keeps bouncing off the dead replica.
        plan = kill_replicas([0])
        policy = RouterPolicy(heartbeat_seconds=1e9,
                              failover_penalty_seconds=5e-4)
        report = make_cluster(corpus, faults=plan,
                              router_policy=policy).replay(trace)
        assert report.n_failovers > 0
        assert report.n_served == len(trace)

    def test_failovers_are_counted_and_traced(self, corpus, trace):
        plan = kill_replicas([0])
        policy = RouterPolicy(heartbeat_seconds=1e9,
                              failover_penalty_seconds=5e-4)
        tracer = SpanTracer()
        report = make_cluster(corpus, faults=plan,
                              router_policy=policy).replay(
            trace, tracer=tracer)
        tracer.finish()
        tracer.validate()
        events = [e for span in tracer.spans for e in span.events
                  if e.name == "cluster.failover"]
        assert len(events) >= report.n_failovers > 0


class TestWholeShardLoss:
    def test_whole_shard_loss_degrades_to_flagged_partial(
            self, corpus, trace):
        dead_shard = 1
        plan = kill_replicas([dead_shard * N_REPLICAS + r
                              for r in range(N_REPLICAS)])
        report = make_cluster(corpus, faults=plan).replay(trace)
        assert report.n_partial == len(trace)
        assert report.n_failed == 0
        reference = make_cluster(corpus).replay(trace)
        dead_members = set(
            make_cluster(corpus).shard_map.members[dead_shard]
            .tolist())
        for got, want in zip(report.outcomes, reference.outcomes):
            assert got.status is ClusterStatus.PARTIAL
            assert got.missing_shards == (dead_shard,)
            assert got.n_shards_answered == N_SHARDS - 1
            # The partial answer is the healthy shards' exact merge:
            # its prefix is the reference ids minus the dead shard's
            # members, backfilled with deeper healthy-shard neighbors.
            survivors = [i for i in want.ids[0].tolist()
                         if i not in dead_members]
            got_real = [i for i in got.ids[0].tolist() if i >= 0]
            assert got_real[:len(survivors)] == survivors
            assert not dead_members.intersection(got_real)

    def test_all_shards_dead_fails_every_request(self, corpus,
                                                 trace):
        plan = kill_replicas(range(N_SHARDS * N_REPLICAS))
        report = make_cluster(corpus, faults=plan).replay(trace)
        assert report.n_failed == len(trace)
        assert report.n_served == 0
        report.verify_against_metrics()
        for outcome in report.outcomes:
            assert outcome.status is ClusterStatus.FAILED
            assert outcome.ids is None

    def test_partial_results_reconcile_with_metrics(self, corpus,
                                                    trace):
        plan = kill_replicas([0, 1])
        registry = MetricsRegistry()
        report = make_cluster(corpus, faults=plan).replay(
            trace, metrics=registry)
        report.verify_against_metrics()
        assert registry.value("cluster.outcomes.partial") == \
            report.n_partial
        assert registry.value("cluster.shard_misses") == \
            report.n_shard_misses > 0
