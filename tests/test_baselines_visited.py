"""Tests for the visited-marking strategies (Section III-A design space)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.visited import (
    Bitmap,
    BloomFilter,
    OpenAddressingHash,
    make_visited_set,
)
from repro.errors import ConfigurationError


class TestOpenAddressingHash:
    def test_membership(self):
        table = OpenAddressingHash(capacity=16)
        table.add(42)
        assert 42 in table
        assert 43 not in table

    def test_duplicate_add_idempotent(self):
        table = OpenAddressingHash(capacity=16)
        table.add(7)
        table.add(7)
        assert 7 in table

    @given(st.sets(st.integers(min_value=0, max_value=10 ** 6),
                   max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_exact_semantics(self, vertices):
        table = OpenAddressingHash(capacity=64)
        for v in vertices:
            table.add(v)
        for v in vertices:
            assert v in table
        for probe in range(20):
            candidate = probe + 2_000_000
            assert candidate not in table

    def test_overflow_raises(self):
        table = OpenAddressingHash(capacity=2)
        # size = next_pow2(2*2) = 4; capacity - 1 = 3 usable.
        for v in range(3):
            table.add(v)
        with pytest.raises(ConfigurationError, match="overflow"):
            table.add(99)

    def test_cycles_accumulate(self):
        table = OpenAddressingHash(capacity=16)
        table.add(1)
        before = table.cycles
        assert 1 in table
        assert table.cycles > before

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError, match="positive"):
            OpenAddressingHash(capacity=0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(n_bits=512)
        for v in range(40):
            bloom.add(v)
        for v in range(40):
            assert v in bloom

    def test_false_positives_exist_when_saturated(self):
        bloom = BloomFilter(n_bits=64, n_hashes=3)
        for v in range(60):
            bloom.add(v)
        hits = sum(1 for v in range(10_000, 10_200) if v in bloom)
        assert hits > 0  # saturated filter must misfire

    def test_false_positive_rate_formula(self):
        bloom = BloomFilter(n_bits=1024, n_hashes=3)
        assert bloom.false_positive_rate(0) == 0.0
        assert 0.0 < bloom.false_positive_rate(100) < 1.0
        assert (bloom.false_positive_rate(500)
                > bloom.false_positive_rate(100))

    def test_memory_is_bits(self):
        assert BloomFilter(n_bits=1024).memory_bytes() == 128

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(n_bits=0)
        with pytest.raises(ConfigurationError):
            BloomFilter(n_bits=64, n_hashes=0)


class TestBitmap:
    def test_exact_semantics(self):
        bitmap = Bitmap(n_vertices=100)
        bitmap.add(5)
        assert 5 in bitmap
        assert 6 not in bitmap

    def test_random_access_cost(self):
        bitmap = Bitmap(n_vertices=100)
        bitmap.add(0)
        assert bitmap.cycles == pytest.approx(
            Bitmap.RANDOM_ACCESS_CYCLES)

    def test_memory_scales_with_vertices(self):
        """The Section III-A objection: one bit per dataset point."""
        million = Bitmap(n_vertices=1_000_000)
        assert million.memory_bytes() == 125_000
        # That alone exceeds a 48 KB shared-memory block budget.
        from repro.gpusim.device import QUADRO_P5000
        assert (million.memory_bytes()
                > QUADRO_P5000.shared_mem_per_block_bytes)


class TestFactory:
    @pytest.mark.parametrize("strategy,expected", [
        ("hash", OpenAddressingHash),
        ("bloom", BloomFilter),
        ("bitmap", Bitmap),
    ])
    def test_dispatch(self, strategy, expected):
        made = make_visited_set(strategy, n_vertices=1000, budget=64)
        assert isinstance(made, expected)

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError, match="valid"):
            make_visited_set("trie", 1000, 64)

    def test_cost_comparison_matches_paper_ranking(self):
        """Per-operation cost: hash (short probes) < bitmap (full random
        access latency) for the membership-heavy access pattern — the
        reason SONG ships the hash."""
        hash_set = make_visited_set("hash", 10_000, 64)
        bitmap = make_visited_set("bitmap", 10_000, 64)
        for v in range(0, 6400, 100):
            hash_set.add(v)
            bitmap.add(v)
            _ = v in hash_set
            _ = v in bitmap
        per_op_hash = hash_set.cycles / 128
        per_op_bitmap = bitmap.cycles / 128
        assert per_op_hash < per_op_bitmap


class TestSongIntegration:
    def test_bloom_false_positives_can_only_lose_candidates(
            self, small_graph, small_points, small_queries):
        """Bloom-filtered SONG never returns wrong distances, but may
        miss neighbors the exact-hash variant finds."""
        from repro.baselines.song import SongParams, song_search
        exact = song_search(small_graph, small_points, small_queries,
                            SongParams(k=10, pq_bound=64))
        bloom = song_search(small_graph, small_points, small_queries,
                            SongParams(k=10, pq_bound=64,
                                       visited_strategy="bloom"))
        from repro.datasets.ground_truth import exact_knn
        from repro.metrics.recall import recall_at_k
        gt = exact_knn(small_points, small_queries, 10)
        assert (recall_at_k(bloom.ids, gt)
                <= recall_at_k(exact.ids, gt) + 1e-9)

    def test_bitmap_costs_more_structure_time(self, small_graph,
                                              small_points, small_queries):
        from repro.baselines.song import SongParams, song_search
        hash_run = song_search(small_graph, small_points,
                               small_queries[:10],
                               SongParams(k=10, pq_bound=32))
        bitmap_run = song_search(small_graph, small_points,
                                 small_queries[:10],
                                 SongParams(k=10, pq_bound=32,
                                            visited_strategy="bitmap"))
        assert (bitmap_run.tracker.total_cycles()
                > hash_run.tracker.total_cycles())

    def test_invalid_strategy_rejected(self):
        from repro.baselines.song import SongParams
        with pytest.raises(ConfigurationError, match="visited_strategy"):
            SongParams(visited_strategy="cuckoo")
