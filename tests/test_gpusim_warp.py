"""Tests for warp-primitive semantics against their CUDA definitions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.gpusim import warp
from repro.gpusim.tracker import CycleTracker


class TestShflDown:
    def test_basic_shift(self):
        values = np.arange(32, dtype=np.float64)
        out = warp.shfl_down_sync(values, 4)
        assert np.array_equal(out[:28], values[4:])
        # Lanes whose source is out of range keep their value.
        assert np.array_equal(out[28:], values[28:])

    def test_delta_zero_is_identity(self):
        values = np.arange(32, dtype=np.float64)
        assert np.array_equal(warp.shfl_down_sync(values, 0), values)

    def test_negative_delta_rejected(self):
        with pytest.raises(DeviceError, match="non-negative"):
            warp.shfl_down_sync(np.zeros(32), -1)

    def test_wrong_lane_count_rejected(self):
        with pytest.raises(DeviceError, match="32 lanes"):
            warp.shfl_down_sync(np.zeros(16), 1)

    def test_sub_warp_width(self):
        values = np.arange(8, dtype=np.float64)
        out = warp.shfl_down_sync(values, 2, warp_size=8)
        assert np.array_equal(out, [2, 3, 4, 5, 6, 7, 6, 7])


class TestShflXor:
    def test_butterfly_pairs(self):
        values = np.arange(32, dtype=np.float64)
        out = warp.shfl_xor_sync(values, 1)
        assert out[0] == 1 and out[1] == 0 and out[30] == 31

    def test_self_inverse(self):
        values = np.random.default_rng(0).normal(size=32)
        once = warp.shfl_xor_sync(values, 8)
        twice = warp.shfl_xor_sync(once, 8)
        assert np.array_equal(twice, values)

    def test_mask_out_of_range_rejected(self):
        with pytest.raises(DeviceError, match="lane mask"):
            warp.shfl_xor_sync(np.zeros(32), 32)


class TestReductions:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=32, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_shfl_down_reduce_equals_sum(self, values):
        arr = np.asarray(values)
        assert warp.warp_reduce_sum(arr) == pytest.approx(arr.sum(),
                                                          rel=1e-9,
                                                          abs=1e-6)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=16, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_xor_reduce_equals_sum(self, values):
        arr = np.asarray(values)
        assert warp.warp_reduce_sum_xor(arr, warp_size=16) == pytest.approx(
            arr.sum(), rel=1e-9, abs=1e-6)

    def test_reduce_charges_log_steps(self):
        tracker = CycleTracker(1)
        warp.warp_reduce_sum(np.ones(32), tracker=tracker, phase="r")
        # 5 steps of (shuffle + add).
        from repro.gpusim.costs import DEFAULT_COSTS as c
        assert tracker.total_cycles("r") == pytest.approx(
            5 * (c.shuffle_cycles + c.alu_cycles))

    def test_sub_warp_reduction(self):
        arr = np.arange(4, dtype=np.float64)
        assert warp.warp_reduce_sum(arr, warp_size=4) == 6.0


class TestBallotFfs:
    def test_ballot_packs_bits(self):
        predicates = np.zeros(32, dtype=bool)
        predicates[0] = predicates[5] = True
        assert warp.ballot_sync(predicates) == (1 | (1 << 5))

    def test_ballot_empty(self):
        assert warp.ballot_sync(np.zeros(32, dtype=bool)) == 0

    def test_ffs_matches_cuda_semantics(self):
        assert warp.ffs(0) == 0
        assert warp.ffs(1) == 1
        assert warp.ffs(0b1000) == 4

    def test_ffs_rejects_negative(self):
        with pytest.raises(DeviceError, match="non-negative"):
            warp.ffs(-1)

    @given(st.integers(min_value=0, max_value=31))
    @settings(max_examples=32, deadline=None)
    def test_first_set_lane_finds_first_true(self, first):
        predicates = np.zeros(32, dtype=bool)
        predicates[first:] = True
        assert warp.first_set_lane(predicates) == first

    def test_first_set_lane_none(self):
        assert warp.first_set_lane(np.zeros(32, dtype=bool)) == -1

    def test_ballot_ffs_charges_tracker(self):
        tracker = CycleTracker(1)
        warp.first_set_lane(np.ones(32, dtype=bool), tracker=tracker,
                            phase="locate")
        assert tracker.total_cycles("locate") > 0
