"""Tests for Algorithm 1 beam search."""

import numpy as np
import pytest

from repro.baselines.beam import beam_search, beam_search_batch
from repro.datasets.ground_truth import exact_knn
from repro.errors import SearchError
from repro.graphs.adjacency import ProximityGraph


def _line_graph():
    """Points on a line, chained bidirectionally: search is exact."""
    points = np.arange(10, dtype=np.float64)[:, None]
    g = ProximityGraph(10, 4)
    for v in range(9):
        g.insert_edge(v, v + 1, 1.0)
        g.insert_edge(v + 1, v, 1.0)
    return g, points


class TestExactOnEasyGraph:
    def test_finds_true_neighbors_on_line(self):
        g, points = _line_graph()
        result = beam_search(g, points, np.array([4.6]), k=3, ef=6)
        assert np.array_equal(result.ids, [5, 4, 6])

    def test_distances_sorted_ascending(self):
        g, points = _line_graph()
        result = beam_search(g, points, np.array([2.2]), k=5, ef=8)
        assert (np.diff(result.dists) >= 0).all()

    def test_high_ef_matches_brute_force(self, small_graph, small_points,
                                          small_queries):
        gt = exact_knn(small_points, small_queries[:10], 5)
        hits = 0
        for row in range(10):
            result = beam_search(small_graph, small_points,
                                 small_queries[row], k=5, ef=128)
            hits += len(np.intersect1d(result.ids, gt[row]))
        assert hits / 50 > 0.9


class TestBudgetSemantics:
    def test_ef_defaults_to_k(self):
        g, points = _line_graph()
        result = beam_search(g, points, np.array([0.0]), k=2)
        assert len(result.ids) == 2

    def test_larger_ef_never_reduces_recall(self, small_graph, small_points,
                                            small_queries):
        gt = exact_knn(small_points, small_queries[:5], 10)
        for row in range(5):
            small = beam_search(small_graph, small_points,
                                small_queries[row], k=10, ef=10)
            large = beam_search(small_graph, small_points,
                                small_queries[row], k=10, ef=64)
            assert (len(np.intersect1d(large.ids, gt[row]))
                    >= len(np.intersect1d(small.ids, gt[row])) - 1)

    def test_counters_grow_with_ef(self, small_graph, small_points,
                                   small_queries):
        small = beam_search(small_graph, small_points, small_queries[0],
                            k=5, ef=8)
        large = beam_search(small_graph, small_points, small_queries[0],
                            k=5, ef=64)
        assert large.n_distance_computations > small.n_distance_computations
        assert large.n_iterations > small.n_iterations


class TestCounters:
    def test_no_distance_recomputation(self, small_graph, small_points,
                                       small_queries):
        """With the visited hash, each vertex's distance is computed at
        most once: count <= number of distinct visited vertices."""
        result = beam_search(small_graph, small_points, small_queries[0],
                             k=5, ef=32)
        assert result.n_distance_computations <= small_graph.n_vertices
        # Hash probes cover every scanned neighbor (>= distances).
        assert result.n_hash_probes >= result.n_distance_computations - 1


class TestValidation:
    def test_rejects_bad_k(self, small_graph, small_points):
        with pytest.raises(SearchError, match="k must be positive"):
            beam_search(small_graph, small_points, small_points[0], k=0)

    def test_rejects_ef_below_k(self, small_graph, small_points):
        with pytest.raises(SearchError, match="at least k"):
            beam_search(small_graph, small_points, small_points[0], k=5,
                        ef=3)

    def test_rejects_bad_entry(self, small_graph, small_points):
        with pytest.raises(SearchError, match="entry"):
            beam_search(small_graph, small_points, small_points[0], k=1,
                        entry=10 ** 6)


class TestBatch:
    def test_batch_shape_and_padding(self):
        g, points = _line_graph()
        ids = beam_search_batch(g, points, points[:3], k=4, ef=8)
        assert ids.shape == (3, 4)
        assert (ids >= 0).all()

    def test_batch_matches_single(self, small_graph, small_points,
                                  small_queries):
        batch = beam_search_batch(small_graph, small_points,
                                  small_queries[:5], k=5, ef=16)
        for row in range(5):
            single = beam_search(small_graph, small_points,
                                 small_queries[row], k=5, ef=16)
            assert np.array_equal(batch[row], single.ids)

    def test_batch_rejects_1d_queries(self, small_graph, small_points):
        with pytest.raises(SearchError, match="2-D"):
            beam_search_batch(small_graph, small_points, small_points[0],
                              k=2)

    def test_unreachable_vertices_padded(self):
        # Two disconnected pairs; searching from entry 0 reaches only 2.
        points = np.array([[0.0], [1.0], [50.0], [51.0]])
        g = ProximityGraph(4, 2)
        g.insert_edge(0, 1, 1.0)
        g.insert_edge(1, 0, 1.0)
        g.insert_edge(2, 3, 1.0)
        g.insert_edge(3, 2, 1.0)
        ids = beam_search_batch(g, points, np.array([[0.2]]), k=4, ef=8)
        assert set(ids[0][ids[0] >= 0].tolist()) == {0, 1}
        assert (ids[0][2:] == -1).all()
