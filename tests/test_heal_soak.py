"""The whole-stack soak harness: small but honest.

Runs :func:`repro.heal.soak.run_soak_sim` at reduced scale and asserts
the gate's load-bearing properties: byte-identical reruns, zero
oracle violations, every induced replica loss healed within the MTTR
bound, and a canonical report encoding whose digest changes when the
seed does.
"""

import pytest

from repro.errors import HealError
from repro.heal import SoakReport, run_soak_sim

#: One shared small soak (the suite's wall clock lives here).
_CACHE = {}


def _soak(seed=0):
    if seed not in _CACHE:
        _CACHE[seed] = run_soak_sim(
            seed=seed, n_points=300, n_pool=60, n_requests=120,
            n_shards=3, n_replicas=2, mutation_ops=12)
    return _CACHE[seed]


def test_soak_passes_the_gate():
    report = _soak()
    assert isinstance(report, SoakReport)
    assert [p.name for p in report.phases] == \
        ["cluster", "mutable", "quant"]
    assert report.n_wrong == 0
    assert report.n_unhealed == 0
    assert report.n_repairs > 0
    assert report.passed


def test_soak_is_byte_deterministic():
    report = _soak()
    again = run_soak_sim(seed=0, n_points=300, n_pool=60,
                         n_requests=120, n_shards=3, n_replicas=2,
                         mutation_ops=12)
    assert report.to_bytes() == again.to_bytes()
    assert report.digest() == again.digest()


def test_soak_digest_tracks_the_seed():
    assert _soak(0).digest() != _soak(1).digest()


def test_phase_lines_round_into_report_bytes():
    report = _soak()
    encoded = report.to_bytes().decode("utf-8")
    for phase in report.phases:
        assert phase.to_line() in encoded
    assert f"seed={report.seed}" in encoded


def test_summary_shows_the_verdict():
    report = _soak()
    text = report.summary()
    assert "SoakReport:" in text
    assert "PASS" in text


def test_soak_rejects_bad_sizes():
    with pytest.raises(HealError):
        run_soak_sim(seed=0, n_requests=0)
    with pytest.raises(HealError):
        run_soak_sim(seed=0, mutation_ops=0)
