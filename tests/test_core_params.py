"""Tests for search/build parameter validation."""

import pytest

from repro.core.params import BuildParams, SearchParams
from repro.errors import ConfigurationError


class TestSearchParams:
    def test_defaults(self):
        p = SearchParams()
        assert p.k == 10
        assert p.l_n == 64
        assert p.explore_budget == 64
        assert p.n_threads == 32

    def test_explicit_e(self):
        assert SearchParams(e=16).explore_budget == 16

    @pytest.mark.parametrize("l_n", [32, 64, 128, 256])
    def test_paper_pool_lengths_accepted(self, l_n):
        assert SearchParams(l_n=l_n).l_n == l_n

    def test_non_pow2_pool_rejected_with_hint(self):
        with pytest.raises(ConfigurationError, match="64"):
            SearchParams(l_n=48)

    def test_k_above_pool_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot exceed"):
            SearchParams(k=100, l_n=64)

    def test_e_bounds(self):
        with pytest.raises(ConfigurationError, match="e must lie"):
            SearchParams(e=0)
        with pytest.raises(ConfigurationError, match="e must lie"):
            SearchParams(l_n=32, e=33)

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            SearchParams(k=0)

    def test_bad_threads(self):
        with pytest.raises(ConfigurationError, match="n_threads"):
            SearchParams(n_threads=-1)

    def test_with_overrides_revalidates(self):
        p = SearchParams()
        with pytest.raises(ConfigurationError):
            p.with_overrides(l_n=48)
        assert p.with_overrides(k=5).k == 5


class TestBuildParams:
    def test_paper_defaults(self):
        p = BuildParams()
        assert p.d_min == 16
        assert p.d_max == 32
        assert p.effective_ef == 32

    def test_effective_search_l_n_pow2(self):
        p = BuildParams(d_min=16, d_max=32)
        assert p.effective_search_l_n == 32
        p = BuildParams(d_min=16, d_max=32, ef_construction=48)
        assert p.effective_search_l_n == 64

    def test_explicit_search_l_n(self):
        assert BuildParams(search_l_n=128).effective_search_l_n == 128
        with pytest.raises(ConfigurationError, match="power of two"):
            BuildParams(search_l_n=100)

    def test_dmin_above_dmax_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot exceed"):
            BuildParams(d_min=64, d_max=32)

    def test_ef_below_dmin_rejected(self):
        with pytest.raises(ConfigurationError, match="ef_construction"):
            BuildParams(d_min=16, ef_construction=8)

    def test_bad_blocks_rejected(self):
        with pytest.raises(ConfigurationError, match="n_blocks"):
            BuildParams(n_blocks=0)

    def test_with_overrides(self):
        p = BuildParams().with_overrides(n_blocks=50)
        assert p.n_blocks == 50
