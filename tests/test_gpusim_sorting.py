"""Tests for the bitonic sorting/merging networks, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.gpusim.sorting import (
    bitonic_merge_network,
    bitonic_sort_network,
    is_pow2,
    merge_sorted_topm,
    next_pow2,
    pad_pow2,
)


class TestPow2Helpers:
    @pytest.mark.parametrize("n,expected", [
        (1, True), (2, True), (64, True), (3, False), (0, False),
        (-4, False), (96, False),
    ])
    def test_is_pow2(self, n, expected):
        assert is_pow2(n) is expected

    @pytest.mark.parametrize("n,expected", [
        (0, 1), (1, 1), (2, 2), (3, 4), (33, 64), (128, 128),
    ])
    def test_next_pow2(self, n, expected):
        assert next_pow2(n) == expected

    def test_pad_pow2_pads_keys_and_payloads(self):
        keys = np.array([3.0, 1.0, 2.0])
        ids = np.array([7, 8, 9])
        pk, pi = pad_pow2(keys, ids)
        assert pk.shape == (4,) and pi.shape == (4,)
        assert pk[3] == np.inf and pi[3] == -1

    def test_pad_pow2_noop_on_pow2(self):
        keys = np.arange(4.0)
        (out,) = pad_pow2(keys)
        assert out is keys


class TestBitonicSortNetwork:
    @given(st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_sorts_any_pow2_length(self, log_n, seed):
        n = 1 << log_n
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=n)
        (out,) = bitonic_sort_network(keys)
        assert np.array_equal(out, np.sort(keys))

    def test_payloads_follow_keys(self):
        keys = np.array([3.0, 1.0, 4.0, 2.0])
        ids = np.array([30.0, 10.0, 40.0, 20.0])
        out_k, out_i = bitonic_sort_network(keys, ids)
        assert np.array_equal(out_k, [1, 2, 3, 4])
        assert np.array_equal(out_i, [10, 20, 30, 40])

    def test_lexicographic_tie_break(self):
        keys = np.array([1.0, 1.0, 1.0, 0.0])
        ids = np.array([9.0, 2.0, 5.0, 7.0])
        out_k, out_i = bitonic_sort_network(keys, ids)
        assert np.array_equal(out_i, [7, 2, 5, 9])

    def test_batch_rows_sorted_independently(self):
        rng = np.random.default_rng(0)
        keys = rng.normal(size=(5, 16))
        (out,) = bitonic_sort_network(keys)
        assert np.array_equal(out, np.sort(keys, axis=1))

    def test_rejects_non_pow2(self):
        with pytest.raises(DeviceError, match="power of two"):
            bitonic_sort_network(np.zeros(6))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(DeviceError, match="one shape"):
            bitonic_sort_network(np.zeros(4), np.zeros(8))

    def test_rejects_no_keys(self):
        with pytest.raises(DeviceError, match="at least one"):
            bitonic_sort_network()

    def test_does_not_mutate_input(self):
        keys = np.array([2.0, 1.0])
        bitonic_sort_network(keys)
        assert np.array_equal(keys, [2.0, 1.0])

    def test_length_one(self):
        (out,) = bitonic_sort_network(np.array([5.0]))
        assert np.array_equal(out, [5.0])


class TestBitonicMergeNetwork:
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_merges_two_sorted_halves(self, log_half, seed):
        half = 1 << log_half
        rng = np.random.default_rng(seed)
        a = np.sort(rng.normal(size=half))
        b = np.sort(rng.normal(size=half))
        combined = np.concatenate([a, b])
        (out,) = bitonic_merge_network(combined)
        assert np.array_equal(out, np.sort(combined))

    def test_merge_carries_payloads(self):
        a = np.array([1.0, 3.0])
        b = np.array([2.0, 4.0])
        ids = np.array([10.0, 30.0, 20.0, 40.0])
        out_k, out_i = bitonic_merge_network(np.concatenate([a, b]), ids)
        assert np.array_equal(out_k, [1, 2, 3, 4])
        assert np.array_equal(out_i, [10, 20, 30, 40])

    def test_rejects_non_pow2(self):
        with pytest.raises(DeviceError, match="power of two"):
            bitonic_merge_network(np.zeros(12))


class TestMergeSortedTopm:
    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_keeps_m_smallest_sorted(self, la, lb, seed):
        rng = np.random.default_rng(seed)
        a = np.sort(rng.normal(size=la))
        b = np.sort(rng.normal(size=lb))
        m = min(la, 8)
        (out,) = merge_sorted_topm([a], [b], m)
        expected = np.sort(np.concatenate([a, b]))[:m]
        assert np.array_equal(out, expected)

    def test_matches_faithful_network_with_unique_ids(self):
        """The fast lexsort path and the compare-exchange network must
        agree record-for-record when ids are unique (the library's global
        tie-break invariant)."""
        rng = np.random.default_rng(7)
        dists = rng.normal(size=16)
        ids = rng.permutation(16).astype(np.float64)
        a_order = np.argsort(dists[:8])
        b_order = np.argsort(dists[8:]) + 8
        a_d, a_i = dists[a_order], ids[a_order]
        b_d, b_i = dists[b_order], ids[b_order]
        fast_d, fast_i = merge_sorted_topm([a_d, a_i], [b_d, b_i], 8)
        net_d, net_i = bitonic_merge_network(
            np.concatenate([a_d, b_d]), np.concatenate([a_i, b_i]))
        assert np.array_equal(fast_d, net_d[:8])
        assert np.array_equal(fast_i, net_i[:8])

    def test_rejects_key_count_mismatch(self):
        with pytest.raises(DeviceError, match="same number"):
            merge_sorted_topm([np.zeros(2)], [np.zeros(2), np.zeros(2)], 2)

    def test_batch_rows(self):
        a = np.sort(np.random.default_rng(0).normal(size=(3, 4)), axis=1)
        b = np.sort(np.random.default_rng(1).normal(size=(3, 4)), axis=1)
        (out,) = merge_sorted_topm([a], [b], 4)
        expected = np.sort(np.concatenate([a, b], axis=1), axis=1)[:, :4]
        assert np.array_equal(out, expected)
