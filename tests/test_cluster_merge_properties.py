"""Property-based correctness of the scatter-gather top-k merge.

The cluster's answer quality rests on one reduction:
:func:`repro.cluster.merge.merge_topk` must equal brute-force top-k
over the *union* of all shard candidates under ``(distance, id)``
order.  Hypothesis drives that equivalence over arbitrary shard
counts, duplicate distances (tie-breaking), ``k`` larger than any
single shard's candidate list, padded rows, and the zero-shard
degenerate case.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.merge import (
    merge_cycles_per_query,
    merge_launch,
    merge_topk,
)
from repro.errors import ClusterError
from repro.gpusim.costs import DEFAULT_COSTS


def brute_force_merge(k, shard_ids, shard_dists):
    """Reference: per-row top-k of the union by (distance, id)."""
    n_rows = shard_ids[0].shape[0]
    out_ids = np.full((n_rows, k), -1, dtype=np.int64)
    out_dists = np.full((n_rows, k), np.inf, dtype=np.float64)
    for row in range(n_rows):
        pairs = []
        for ids, dists in zip(shard_ids, shard_dists):
            for col in range(ids.shape[1]):
                if ids[row, col] >= 0:
                    pairs.append((float(dists[row, col]),
                                  int(ids[row, col])))
        pairs.sort()
        for rank, (dist, pid) in enumerate(pairs[:k]):
            out_ids[row, rank] = pid
            out_dists[row, rank] = dist
    return out_ids, out_dists


@st.composite
def shard_results(draw):
    """Random per-shard top-k runs with disjoint ids and padding."""
    n_shards = draw(st.integers(min_value=1, max_value=6))
    n_rows = draw(st.integers(min_value=1, max_value=4))
    k = draw(st.integers(min_value=1, max_value=12))
    # Small distance alphabet forces duplicate distances across shards.
    dist_pool = draw(st.lists(
        st.floats(min_value=0.0, max_value=4.0, width=16,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=4))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    next_id = 0
    shard_ids, shard_dists = [], []
    for _ in range(n_shards):
        width = draw(st.integers(min_value=1, max_value=k + 3))
        ids = np.full((n_rows, width), -1, dtype=np.int64)
        dists = np.full((n_rows, width), np.inf, dtype=np.float64)
        for row in range(n_rows):
            # Each row answers with a sorted (possibly short) run.
            n_real = int(rng.integers(0, width + 1))
            row_dists = np.sort(rng.choice(dist_pool, size=n_real))
            for col in range(n_real):
                ids[row, col] = next_id + int(rng.integers(0, 1000))
                dists[row, col] = row_dists[col]
            next_id += 2000  # keep shard id ranges disjoint
        # Make ids unique within the row (disjoint shards guarantee
        # cross-shard uniqueness; enforce within-shard uniqueness too).
        for row in range(n_rows):
            seen = set()
            for col in range(width):
                while ids[row, col] >= 0 and ids[row, col] in seen:
                    ids[row, col] += 1
                if ids[row, col] >= 0:
                    seen.add(int(ids[row, col]))
        shard_ids.append(ids)
        shard_dists.append(dists)
    return k, shard_ids, shard_dists


class TestMergeEqualsBruteForce:
    @settings(max_examples=200, deadline=None)
    @given(shard_results())
    def test_merge_matches_brute_force_over_union(self, case):
        k, shard_ids, shard_dists = case
        got_ids, got_dists = merge_topk(k, shard_ids, shard_dists)
        want_ids, want_dists = brute_force_merge(k, shard_ids,
                                                 shard_dists)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_dists, want_dists)

    @settings(max_examples=50, deadline=None)
    @given(shard_results())
    def test_merge_output_shape_and_order(self, case):
        k, shard_ids, shard_dists = case
        ids, dists = merge_topk(k, shard_ids, shard_dists)
        assert ids.shape == (shard_ids[0].shape[0], k)
        assert ids.dtype == np.int64 and dists.dtype == np.float64
        for row in range(ids.shape[0]):
            real = ids[row] >= 0
            # Padding only at the tail, sorted by (distance, id).
            assert not np.any(np.diff(real.astype(int)) > 0)
            row_d = dists[row][real]
            assert np.all(np.diff(row_d) >= 0)
            ties = np.flatnonzero(np.diff(row_d) == 0)
            for t in ties:
                assert ids[row][real][t] < ids[row][real][t + 1]

    @settings(max_examples=50, deadline=None)
    @given(shard_results())
    def test_merge_is_permutation_invariant(self, case):
        k, shard_ids, shard_dists = case
        forward = merge_topk(k, shard_ids, shard_dists)
        backward = merge_topk(k, shard_ids[::-1], shard_dists[::-1])
        np.testing.assert_array_equal(forward[0], backward[0])
        np.testing.assert_array_equal(forward[1], backward[1])


class TestMergeEdgeCases:
    def test_k_larger_than_every_shard_pads_the_tail(self):
        ids, dists = merge_topk(
            5,
            [np.array([[3]]), np.array([[7]])],
            [np.array([[0.5]]), np.array([[0.25]])])
        np.testing.assert_array_equal(ids, [[7, 3, -1, -1, -1]])
        assert np.isinf(dists[0, 2:]).all()

    def test_all_padding_rows_stay_padding(self):
        ids, dists = merge_topk(
            3,
            [np.full((2, 3), -1)],
            [np.full((2, 3), np.inf)])
        assert (ids == -1).all() and np.isinf(dists).all()

    def test_zero_shards_requires_n_queries(self):
        ids, dists = merge_topk(4, [], [], n_queries=3)
        assert ids.shape == (3, 4) and (ids == -1).all()
        with pytest.raises(ClusterError):
            merge_topk(4, [], [])

    def test_duplicate_distances_break_ties_by_id(self):
        ids, _ = merge_topk(
            4,
            [np.array([[10, 30]]), np.array([[20, 40]])],
            [np.array([[1.0, 1.0]]), np.array([[1.0, 1.0]])])
        np.testing.assert_array_equal(ids, [[10, 20, 30, 40]])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ClusterError):
            merge_topk(2, [np.zeros((2, 3), dtype=int)],
                       [np.zeros((3, 3))])
        with pytest.raises(ClusterError):
            merge_topk(2,
                       [np.zeros((2, 3), dtype=int),
                        np.zeros((3, 3), dtype=int)],
                       [np.zeros((2, 3)), np.zeros((3, 3))])


class TestMergeCost:
    def test_single_run_is_free(self):
        assert merge_cycles_per_query(1, 16) == 0.0
        assert merge_launch(10, 1, 16) == (0.0, 0.0)

    def test_cost_grows_linearly_in_runs(self):
        one = merge_cycles_per_query(2, 16)
        assert one == DEFAULT_COSTS.ganns_merge_cycles(16, 16, 32)
        assert merge_cycles_per_query(5, 16) == pytest.approx(4 * one)

    def test_launch_charges_every_query_block(self):
        cycles, seconds = merge_launch(8, 3, 16)
        assert cycles == pytest.approx(8 * merge_cycles_per_query(3, 16))
        assert seconds > 0.0

    def test_invalid_arguments_raise(self):
        with pytest.raises(ClusterError):
            merge_cycles_per_query(0, 16)
        with pytest.raises(ClusterError):
            merge_cycles_per_query(2, 0)
