"""Unit and integration tests for the sharded serving cluster.

Covers consistent-hash placement, the replica router, the
scatter-gather replay itself (including its equivalence to a plain
single :class:`ServeEngine` on a one-shard topology), report/metrics
reconciliation, and the per-shard ground-truth helper's small-shard
denominator fix.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterEngine,
    ClusterStatus,
    ConsistentHashRing,
    ReplicaRouter,
    RouterPolicy,
    ShardMap,
    hash64,
    merge_topk,
)
from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.params import SearchParams
from repro.datasets.ground_truth import exact_knn
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import ClusterError
from repro.extensions.distributed import shard_ground_truth
from repro.faults.plan import (
    FAULT_NETWORK_PARTITION,
    FAULT_WORKER_LOSS,
    FaultEvent,
    FaultPlan,
)
from repro.metrics.recall import recall_per_query
from repro.observability import MetricsRegistry, SpanTracer
from repro.serve import QueryRequest, ServeEngine, synthetic_trace

PARAMS = SearchParams(k=8, l_n=32, e=2)


@pytest.fixture(scope="module")
def corpus():
    return gaussian_mixture(400, 16, n_clusters=5, cluster_std=0.4,
                            seed=11)


@pytest.fixture(scope="module")
def pool():
    return gaussian_mixture(64, 16, n_clusters=5, cluster_std=0.4,
                            seed=12)


@pytest.fixture(scope="module")
def cluster(corpus):
    return ClusterEngine(corpus, n_shards=4, n_replicas=2,
                         params=PARAMS)


class TestPlacement:
    def test_hash64_is_stable_across_calls(self):
        assert hash64(b"repro") == hash64(b"repro")
        assert hash64(b"repro") != hash64(b"repr0")

    def test_assignment_is_deterministic_and_covers(self):
        ring = ConsistentHashRing(4)
        a = ring.assign(500)
        b = ConsistentHashRing(4).assign(500)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 4

    def test_consistent_hashing_is_stable_under_growth(self):
        # Growing 4 -> 5 shards must move only a minority of keys.
        before = ConsistentHashRing(4).assign(2000)
        after = ConsistentHashRing(5).assign(2000)
        moved = np.mean(before != after)
        assert moved < 0.5

    def test_salt_namespaces_rings(self):
        a = ConsistentHashRing(4, salt=0).assign(300)
        b = ConsistentHashRing(4, salt=1).assign(300)
        assert not np.array_equal(a, b)

    def test_shard_map_members_partition_the_corpus(self):
        ring = ConsistentHashRing(3)
        shard_map = ShardMap.from_ring(600, ring)
        union = np.concatenate(shard_map.members)
        np.testing.assert_array_equal(np.sort(union), np.arange(600))
        assert sum(shard_map.shard_sizes()) == 600

    def test_to_global_translates_and_keeps_padding(self):
        shard_map = ShardMap(np.array([1, 0, 1, 0, 1]), 2)
        out = shard_map.to_global(1, np.array([[0, 2, -1]]))
        np.testing.assert_array_equal(out, [[0, 4, -1]])

    def test_empty_shard_raises(self):
        with pytest.raises(ClusterError):
            ShardMap(np.zeros(10, dtype=int), 2)

    def test_invalid_topology_raises(self):
        with pytest.raises(ClusterError):
            ConsistentHashRing(0)
        with pytest.raises(ClusterError):
            ShardMap(np.array([0, 3]), 2)


class TestRouter:
    def test_round_robin_spreads_load(self):
        router = ReplicaRouter(1, 3)
        picks = [router.route(0, 0.0).replica for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_undetected_death_bounces_with_penalty(self):
        plan = FaultPlan([FaultEvent(FAULT_WORKER_LOSS, 1.0,
                                     target=0)])
        policy = RouterPolicy(heartbeat_seconds=1.0,
                              failover_penalty_seconds=0.5)
        router = ReplicaRouter(1, 2, policy=policy, plan=plan)
        # At t=1.5 replica 0 is dead but not yet masked.
        decision = router.route(0, 1.5)
        assert decision.replica == 1
        assert decision.n_failovers == 1
        assert decision.penalty_seconds == pytest.approx(0.5)

    def test_masked_death_routes_clean(self):
        plan = FaultPlan([FaultEvent(FAULT_WORKER_LOSS, 1.0,
                                     target=0)])
        policy = RouterPolicy(heartbeat_seconds=0.1)
        router = ReplicaRouter(1, 2, policy=policy, plan=plan)
        for _ in range(4):
            decision = router.route(0, 5.0)
            assert decision.replica == 1
            assert decision.n_failovers == 0

    def test_whole_shard_dead_is_flagged(self):
        plan = FaultPlan([
            FaultEvent(FAULT_WORKER_LOSS, 1.0, target=0),
            FaultEvent(FAULT_WORKER_LOSS, 1.0, target=1),
        ])
        router = ReplicaRouter(1, 2, plan=plan)
        assert router.route(0, 10.0).shard_dead

    def test_out_of_range_targets_fold_deterministically(self):
        plan = FaultPlan([FaultEvent(FAULT_WORKER_LOSS, 1.0,
                                     target=99)])
        a = ReplicaRouter(2, 2, plan=plan)
        b = ReplicaRouter(2, 2, plan=plan)
        assert a.death_at == b.death_at
        assert a.n_loss_events == 1

    def test_sibling_excludes_and_respects_death(self):
        plan = FaultPlan([FaultEvent(FAULT_WORKER_LOSS, 1.0,
                                     target=1)])
        router = ReplicaRouter(1, 3, plan=plan)
        assert router.sibling(0, (0,), 5.0) == 2
        assert router.sibling(0, (0, 2), 5.0) is None

    def test_partition_windows_sorted(self):
        plan = FaultPlan([
            FaultEvent(FAULT_NETWORK_PARTITION, 2.0, magnitude=0.5),
            FaultEvent(FAULT_NETWORK_PARTITION, 0.5, magnitude=0.25),
        ])
        router = ReplicaRouter(1, 1)
        assert router.partition_windows(plan) == [
            (0.5, 0.75), (2.0, 2.5)]


class TestClusterReplay:
    def test_replay_serves_everything_without_faults(self, cluster,
                                                     pool):
        trace = synthetic_trace(pool, 30, mean_qps=2000.0, seed=5)
        report = cluster.replay(trace)
        assert report.n_served == 30
        assert report.n_partial == 0 and report.n_failed == 0
        for outcome in report.outcomes:
            assert outcome.status is ClusterStatus.SERVED
            assert outcome.n_shards_answered == 4
            assert (outcome.ids >= 0).all()
            assert outcome.completion_seconds > outcome.arrival_seconds

    def test_merged_ids_are_globally_consistent(self, cluster, corpus,
                                                pool):
        trace = synthetic_trace(pool, 10, mean_qps=2000.0, seed=6)
        report = cluster.replay(trace)
        for pos, outcome in enumerate(report.outcomes):
            # Merged distances must match the actual global (squared
            # euclidean, the repo's metric convention) distances.
            queries = trace[pos].queries
            diffs = (corpus[outcome.ids[0]].astype(np.float64)
                     - queries[0])
            np.testing.assert_allclose((diffs ** 2).sum(axis=1),
                                       outcome.dists[0], rtol=1e-4)

    def test_single_shard_cluster_matches_serve_engine(self, corpus,
                                                       pool):
        trace = synthetic_trace(pool, 20, mean_qps=2000.0, seed=7)
        single = ClusterEngine(corpus, n_shards=1, n_replicas=1,
                               params=PARAMS)
        creport = single.replay(trace)
        graph = build_nsw_cpu(corpus, d_min=8, d_max=16).graph
        sreport = ServeEngine(graph, corpus, PARAMS).replay(trace)
        for cout, sout in zip(creport.outcomes, sreport.outcomes):
            # Normalize the engine's rows to the merge's (dist, id)
            # order before comparing.
            order = np.lexsort((sout.ids.astype(np.int64),
                                sout.dists.astype(np.float64)), axis=1)
            want = np.take_along_axis(sout.ids.astype(np.int64),
                                      order, axis=1)
            np.testing.assert_array_equal(cout.ids, want)

    def test_report_reconciles_with_metrics(self, cluster, pool):
        trace = synthetic_trace(pool, 25, mean_qps=2000.0, seed=8)
        registry = MetricsRegistry()
        report = cluster.replay(trace, metrics=registry)
        report.verify_against_metrics()
        assert registry.value("cluster.requests") == 25
        assert registry.value("cluster.shard_queries") == 25 * 4

    def test_tracer_output_is_valid_and_shaped(self, cluster, pool):
        trace = synthetic_trace(pool, 15, mean_qps=2000.0, seed=9)
        tracer = SpanTracer()
        cluster.replay(trace, tracer=tracer)
        tracer.finish()
        tracer.validate()
        roots = tracer.roots()
        assert [r.name for r in roots] == ["cluster.replay"]
        assert len(tracer.find("cluster.request")) == 15
        assert tracer.find("cluster.replica")
        assert len(tracer.find("cluster.merge")) == 15

    def test_out_of_order_trace_raises(self, cluster, pool):
        reqs = [
            QueryRequest(request_id=0, queries=pool[:1],
                         arrival_seconds=1.0),
            QueryRequest(request_id=1, queries=pool[1:2],
                         arrival_seconds=0.5),
        ]
        with pytest.raises(ClusterError):
            cluster.replay(reqs)

    def test_dimension_mismatch_raises(self, cluster):
        req = QueryRequest(request_id=0,
                           queries=np.zeros((1, 7), dtype=np.float32),
                           arrival_seconds=0.0)
        with pytest.raises(ClusterError):
            cluster.replay([req])

    def test_undersized_shards_rejected_at_construction(self):
        tiny = gaussian_mixture(20, 8, seed=3)
        with pytest.raises(ClusterError):
            ClusterEngine(tiny, n_shards=8, n_replicas=1,
                          params=SearchParams(k=8, l_n=32))

    def test_network_partition_delays_scatter(self, corpus, pool):
        trace = synthetic_trace(pool, 5, mean_qps=2000.0, seed=10)
        horizon = trace[-1].arrival_seconds + 1.0
        plan = FaultPlan([FaultEvent(FAULT_NETWORK_PARTITION, 0.0,
                                     magnitude=horizon)])
        slow = ClusterEngine(corpus, n_shards=2, n_replicas=1,
                             params=PARAMS, faults=plan)
        fast = ClusterEngine(corpus, n_shards=2, n_replicas=1,
                             params=PARAMS)
        assert (slow.replay(trace).p99_latency
                > fast.replay(trace).p99_latency)


class TestShardGroundTruth:
    """Regression: shards smaller than k must clamp and pad, so recall
    denominators count only real neighbors."""

    def test_merged_shard_truth_equals_global_truth(self, corpus,
                                                    pool):
        assignment = ConsistentHashRing(4).assign(len(corpus))
        per_shard = shard_ground_truth(corpus, pool[:16], assignment,
                                       k=10)
        merged_ids, merged_dists = merge_topk(
            10, [s["ids"] for s in per_shard],
            [s["dists"] for s in per_shard])
        want_ids, want_dists = exact_knn(corpus, pool[:16], 10,
                                         return_distances=True)
        np.testing.assert_array_equal(merged_ids, want_ids)
        np.testing.assert_allclose(merged_dists, want_dists,
                                   rtol=1e-6)

    def test_shard_smaller_than_k_pads_instead_of_raising(self):
        points = gaussian_mixture(30, 8, seed=4)
        # Shard 1 holds only 3 points — fewer than k=5.
        assignment = np.zeros(30, dtype=np.int64)
        assignment[:3] = 1
        queries = gaussian_mixture(6, 8, seed=5)
        per_shard = shard_ground_truth(points, queries, assignment,
                                       k=5)
        small = per_shard[1]
        assert small["ids"].shape == (6, 5)
        assert (small["ids"][:, :3] >= 0).all()
        assert (small["ids"][:, 3:] == -1).all()
        assert np.isinf(small["dists"][:, 3:]).all()
        # Real entries reference the shard's own members, globally.
        assert set(np.unique(small["ids"][:, :3])) <= {0, 1, 2}

    def test_padded_truth_keeps_recall_denominator_honest(self):
        points = gaussian_mixture(30, 8, seed=4)
        assignment = np.zeros(30, dtype=np.int64)
        assignment[:2] = 1
        queries = gaussian_mixture(4, 8, seed=5)
        per_shard = shard_ground_truth(points, queries, assignment,
                                       k=6)
        truth = per_shard[1]["ids"]
        # A perfect answer over the 2 real neighbors scores 1.0, not
        # 2/6 — the padding must not inflate the denominator.
        recall = recall_per_query(truth, truth)
        np.testing.assert_allclose(recall, 1.0)

    def test_invalid_inputs_raise(self, corpus):
        from repro.errors import ConstructionError
        with pytest.raises(ConstructionError):
            shard_ground_truth(corpus, corpus[:2],
                               np.zeros(3, dtype=int), 4)
        with pytest.raises(ConstructionError):
            shard_ground_truth(corpus, corpus[:2],
                               np.zeros(len(corpus), dtype=int), 0)
