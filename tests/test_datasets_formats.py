"""Tests for the TEXMEX fvecs/bvecs/ivecs readers and writers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.formats import (
    read_bvecs,
    read_fvecs,
    read_ivecs,
    write_bvecs,
    write_fvecs,
    write_ivecs,
)
from repro.errors import DatasetError


class TestRoundTrips:
    def test_fvecs(self, tmp_path):
        matrix = np.random.default_rng(0).normal(
            size=(7, 12)).astype(np.float32)
        path = tmp_path / "x.fvecs"
        write_fvecs(path, matrix)
        assert np.array_equal(read_fvecs(path), matrix)

    def test_bvecs(self, tmp_path):
        matrix = np.random.default_rng(1).integers(
            0, 256, size=(5, 128)).astype(np.uint8)
        path = tmp_path / "x.bvecs"
        write_bvecs(path, matrix)
        assert np.array_equal(read_bvecs(path), matrix)

    def test_ivecs(self, tmp_path):
        matrix = np.random.default_rng(2).integers(
            0, 10 ** 6, size=(4, 100)).astype(np.int32)
        path = tmp_path / "x.ivecs"
        write_ivecs(path, matrix)
        assert np.array_equal(read_ivecs(path), matrix)

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_fvecs_any_shape(self, n, d, seed):
        import tempfile
        matrix = np.random.default_rng(seed).normal(
            size=(n, d)).astype(np.float32)
        with tempfile.TemporaryDirectory() as tmp:
            path = f"{tmp}/x.fvecs"
            write_fvecs(path, matrix)
            assert np.array_equal(read_fvecs(path), matrix)


class TestPrefixReads:
    def test_max_vectors(self, tmp_path):
        matrix = np.arange(40, dtype=np.float32).reshape(10, 4)
        path = tmp_path / "x.fvecs"
        write_fvecs(path, matrix)
        head = read_fvecs(path, max_vectors=3)
        assert np.array_equal(head, matrix[:3])

    def test_max_vectors_beyond_file(self, tmp_path):
        matrix = np.zeros((2, 4), dtype=np.float32)
        path = tmp_path / "x.fvecs"
        write_fvecs(path, matrix)
        assert read_fvecs(path, max_vectors=100).shape == (2, 4)

    def test_invalid_max_vectors(self, tmp_path):
        path = tmp_path / "x.fvecs"
        write_fvecs(path, np.zeros((2, 4), dtype=np.float32))
        with pytest.raises(DatasetError, match="max_vectors"):
            read_fvecs(path, max_vectors=0)


class TestFramingValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="cannot read"):
            read_fvecs(tmp_path / "nope.fvecs")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fvecs"
        path.write_bytes(b"")
        with pytest.raises(DatasetError, match="empty"):
            read_fvecs(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.fvecs"
        path.write_bytes(b"\x04\x00")
        with pytest.raises(DatasetError, match="truncated"):
            read_fvecs(path)

    def test_misaligned_file(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        write_fvecs(path, np.zeros((2, 4), dtype=np.float32))
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00")
        with pytest.raises(DatasetError, match="multiple"):
            read_fvecs(path)

    def test_inconsistent_dimensions(self, tmp_path):
        path = tmp_path / "mixed.fvecs"
        header4 = np.array([4], dtype="<i4").tobytes()
        header3 = np.array([3], dtype="<i4").tobytes()
        body4 = np.zeros(4, dtype="<f4").tobytes()
        # Second record declares 3 dims but is padded to the same record
        # size, so the framing check passes and the header check fires.
        path.write_bytes(header4 + body4 + header3 + body4)
        with pytest.raises(DatasetError, match="declares dimension"):
            read_fvecs(path)

    def test_implausible_dimension(self, tmp_path):
        path = tmp_path / "huge.fvecs"
        path.write_bytes(np.array([2_000_000], dtype="<i4").tobytes()
                         + b"\x00" * 16)
        with pytest.raises(DatasetError, match="implausible"):
            read_fvecs(path)

    def test_writer_rejects_bad_shapes(self, tmp_path):
        with pytest.raises(DatasetError, match="2-D"):
            write_fvecs(tmp_path / "x.fvecs", np.zeros(4))
        with pytest.raises(DatasetError, match="2-D"):
            write_fvecs(tmp_path / "x.fvecs", np.zeros((3, 0)))


class TestEndToEndWithLibrary:
    def test_search_pipeline_from_fvecs(self, tmp_path):
        """The real-data path: fvecs on disk -> index -> search."""
        from repro import GannsIndex, BuildParams
        from repro.datasets.ground_truth import exact_knn
        from repro.datasets.synthetic import gaussian_mixture
        from repro.metrics.recall import recall_at_k

        points = gaussian_mixture(600, 16, n_clusters=6, intrinsic_dim=8,
                                  seed=9)
        queries = gaussian_mixture(20, 16, n_clusters=6, intrinsic_dim=8,
                                   seed=10)
        write_fvecs(tmp_path / "base.fvecs", points)
        write_fvecs(tmp_path / "query.fvecs", queries)
        gt = exact_knn(points, queries, 5)
        write_ivecs(tmp_path / "gt.ivecs", gt)

        base = read_fvecs(tmp_path / "base.fvecs")
        query = read_fvecs(tmp_path / "query.fvecs")
        truth = read_ivecs(tmp_path / "gt.ivecs")
        index = GannsIndex.build(
            base, params=BuildParams(d_min=8, d_max=16, n_blocks=8))
        ids, _ = index.search(query, k=5, l_n=128)
        assert recall_at_k(ids, truth) > 0.6
