"""Tests for GGraphCon NSW construction, including the Section IV-C
equivalence theorem."""

import numpy as np
import pytest

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.construction import build_nsw_gpu
from repro.core.params import BuildParams
from repro.errors import ConstructionError
from repro.graphs.stats import edge_recall_against, reachable_fraction
from repro.graphs.validation import validate_graph
from repro.gpusim.tracker import PhaseCategory


PARAMS = BuildParams(d_min=6, d_max=12, n_blocks=8)


class TestEquivalenceTheorem:
    """Section IV-C: given exact nearest neighbors, Algorithm 2 generates
    the same NSW graph as sequential insertion."""

    @pytest.mark.parametrize("n_blocks", [2, 5, 16])
    def test_exact_mode_equals_sequential_insertion(self, small_points,
                                                    n_blocks):
        points = small_points[:250]
        params = PARAMS.with_overrides(n_blocks=n_blocks)
        gpu = build_nsw_gpu(points, params, exact=True)
        cpu = build_nsw_cpu(points, params.d_min, params.d_max, exact=True)
        assert gpu.graph.edge_set() == cpu.graph.edge_set()

    def test_exact_mode_cosine(self, cosine_points):
        points = cosine_points[:200]
        params = PARAMS.with_overrides(n_blocks=4)
        gpu = build_nsw_gpu(points, params, metric="cosine", exact=True)
        cpu = build_nsw_cpu(points, params.d_min, params.d_max,
                            metric="cosine", exact=True)
        assert gpu.graph.edge_set() == cpu.graph.edge_set()

    def test_single_group_is_sequential(self, small_points):
        points = small_points[:150]
        params = PARAMS.with_overrides(n_blocks=1)
        gpu = build_nsw_gpu(points, params, exact=True)
        cpu = build_nsw_cpu(points, params.d_min, params.d_max, exact=True)
        assert gpu.graph.edge_set() == cpu.graph.edge_set()


class TestApproximateQuality:
    def test_graph_validates(self, small_points):
        report = build_nsw_gpu(small_points[:300], PARAMS)
        validate_graph(report.graph, points=small_points[:300],
                       check_distances=True)

    def test_connected(self, small_points):
        report = build_nsw_gpu(small_points[:300], PARAMS)
        assert reachable_fraction(report.graph, 0) > 0.95

    def test_edge_overlap_with_sequential(self, small_points):
        """Approximate-search GGraphCon produces a graph sharing most
        edges with the sequential build (Figure 12's quality match)."""
        points = small_points[:300]
        gpu = build_nsw_gpu(points, PARAMS)
        cpu = build_nsw_cpu(points, PARAMS.d_min, PARAMS.d_max)
        assert edge_recall_against(gpu.graph, cpu.graph) > 0.5

    def test_search_recall_matches_sequential(self, small_points,
                                              small_queries):
        from repro.core.ganns import ganns_search
        from repro.core.params import SearchParams
        from repro.datasets.ground_truth import exact_knn
        from repro.metrics.recall import recall_at_k

        points = small_points[:400]
        gt = exact_knn(points, small_queries, 10)
        gpu_graph = build_nsw_gpu(points, PARAMS).graph
        cpu_graph = build_nsw_cpu(points, PARAMS.d_min, PARAMS.d_max).graph
        search = SearchParams(k=10, l_n=64)
        r_gpu = recall_at_k(
            ganns_search(gpu_graph, points, small_queries, search).ids, gt)
        r_cpu = recall_at_k(
            ganns_search(cpu_graph, points, small_queries, search).ids, gt)
        assert r_gpu > r_cpu - 0.08


class TestTimingModel:
    def test_phase_seconds_present(self, small_points):
        report = build_nsw_gpu(small_points[:200], PARAMS)
        assert "local_construction" in report.phase_seconds
        assert "merge_search" in report.phase_seconds
        assert report.seconds == pytest.approx(
            sum(report.phase_seconds.values()))

    def test_category_split_sums_to_total(self, small_points):
        report = build_nsw_gpu(small_points[:200], PARAMS)
        assert sum(report.category_seconds.values()) == pytest.approx(
            report.seconds, rel=1e-6)

    def test_ganns_kernel_builds_faster_than_song(self, small_points):
        """GGraphCon_GANNS vs GGraphCon_SONG (Section V-B: 1.4-3.3x)."""
        points = small_points[:300]
        ganns = build_nsw_gpu(points, PARAMS, search_kernel="ganns")
        song = build_nsw_gpu(points, PARAMS, search_kernel="song")
        assert song.seconds / ganns.seconds > 1.2
        # Same construction, same traversals: identical graphs.
        assert ganns.graph.edge_set() == song.graph.edge_set()

    def test_more_blocks_build_faster(self, small_points):
        """Inter-block parallelism pays (Figure 14's direction)."""
        points = small_points[:400]
        few = build_nsw_gpu(points, PARAMS.with_overrides(n_blocks=2))
        many = build_nsw_gpu(points, PARAMS.with_overrides(n_blocks=32))
        assert many.seconds < few.seconds

    def test_details_recorded(self, small_points):
        report = build_nsw_gpu(small_points[:200],
                               PARAMS.with_overrides(n_blocks=5))
        assert report.details["n_groups"] == 5
        assert report.details["merge_iterations"] == 4
        assert report.n_points == 200
        assert report.algorithm == "ggraphcon-ganns"


class TestValidation:
    def test_rejects_empty_points(self):
        with pytest.raises(ConstructionError, match="non-empty"):
            build_nsw_gpu(np.zeros((0, 4)), PARAMS)

    def test_rejects_unknown_kernel(self, small_points):
        with pytest.raises(Exception, match="kernel"):
            build_nsw_gpu(small_points[:50], PARAMS,
                          search_kernel="magic")

    def test_more_groups_than_points_clamped(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(20, 4)).astype(np.float32)
        report = build_nsw_gpu(points,
                               BuildParams(d_min=2, d_max=4, n_blocks=100))
        assert report.details["n_groups"] <= 20
        validate_graph(report.graph)
