"""Tests for the recall-targeted auto-tuner."""

import numpy as np
import pytest

from repro.core.tuner import (
    DEFAULT_GANNS_GRID,
    TuningResult,
    tune_search,
)
from repro.errors import ConfigurationError, SearchError


@pytest.fixture(scope="module")
def setup(request):
    from repro.baselines.nsw_cpu import build_nsw_cpu
    from repro.datasets.synthetic import gaussian_mixture

    points = gaussian_mixture(1200, 24, n_clusters=8, cluster_std=0.3,
                              intrinsic_dim=8, seed=21)
    queries = gaussian_mixture(60, 24, n_clusters=8, cluster_std=0.3,
                               intrinsic_dim=8, seed=22)
    graph = build_nsw_cpu(points, d_min=8, d_max=16).graph
    return graph, points, queries


class TestTuneGanns:
    def test_meets_moderate_target(self, setup):
        graph, points, queries = setup
        result = tune_search(graph, points, queries, target_recall=0.7)
        assert result.target_met
        assert result.recall >= 0.7
        assert result.qps > 0
        assert result.setting in DEFAULT_GANNS_GRID

    def test_returns_cheapest_qualifying_setting(self, setup):
        """A stricter target must never yield a *cheaper* setting."""
        graph, points, queries = setup
        loose = tune_search(graph, points, queries, target_recall=0.5)
        strict = tune_search(graph, points, queries, target_recall=0.9)
        loose_idx = DEFAULT_GANNS_GRID.index(loose.setting)
        strict_idx = DEFAULT_GANNS_GRID.index(strict.setting)
        assert strict_idx >= loose_idx
        assert loose.qps >= strict.qps

    def test_binary_search_evaluates_log_many(self, setup):
        graph, points, queries = setup
        result = tune_search(graph, points, queries, target_recall=0.7)
        import math
        assert len(result.evaluations) <= math.ceil(
            math.log2(len(DEFAULT_GANNS_GRID))) + 1

    def test_unreachable_target_reports_best_effort(self, setup):
        graph, points, queries = setup
        result = tune_search(graph, points, queries, target_recall=1.0,
                             grid=[(32, 8), (32, 16)])
        if not result.target_met:
            assert result.recall < 1.0
            assert result.setting in ((32, 8), (32, 16))

    def test_custom_grid(self, setup):
        graph, points, queries = setup
        result = tune_search(graph, points, queries, target_recall=0.1,
                             grid=[(64, 64)])
        assert result.setting == (64, 64)


class TestTuneSong:
    def test_song_tuning(self, setup):
        graph, points, queries = setup
        result = tune_search(graph, points, queries, target_recall=0.7,
                             algorithm="song")
        assert result.algorithm == "song"
        assert result.target_met
        assert result.recall >= 0.7

    def test_ganns_faster_than_song_at_same_target(self, setup):
        graph, points, queries = setup
        ganns = tune_search(graph, points, queries, target_recall=0.8)
        song = tune_search(graph, points, queries, target_recall=0.8,
                           algorithm="song")
        if ganns.target_met and song.target_met:
            assert ganns.qps > song.qps


class TestValidation:
    def test_bad_target(self, setup):
        graph, points, queries = setup
        with pytest.raises(ConfigurationError, match="target_recall"):
            tune_search(graph, points, queries, target_recall=0.0)

    def test_bad_algorithm(self, setup):
        graph, points, queries = setup
        with pytest.raises(SearchError, match="algorithm"):
            tune_search(graph, points, queries, target_recall=0.5,
                        algorithm="faiss")

    def test_empty_grid(self, setup):
        graph, points, queries = setup
        with pytest.raises(ConfigurationError, match="grid"):
            tune_search(graph, points, queries, target_recall=0.5,
                        grid=[])

    def test_precomputed_ground_truth(self, setup):
        from repro.datasets.ground_truth import exact_knn
        graph, points, queries = setup
        gt = exact_knn(points, queries, 10)
        result = tune_search(graph, points, queries, target_recall=0.5,
                             ground_truth=gt)
        assert isinstance(result, TuningResult)
