"""Documentation-repo consistency: DESIGN.md's promises must hold.

DESIGN.md maps every paper experiment to a benchmark target and every
subsystem to modules; these tests keep those tables honest as the code
evolves.
"""

import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..")


def _read(path):
    with open(os.path.join(ROOT, path)) as handle:
        return handle.read()


class TestDesignDocument:
    def test_design_md_exists_with_required_sections(self):
        text = _read("DESIGN.md")
        for heading in ("Substitutions", "System inventory",
                        "Per-experiment index"):
            assert heading in text, heading

    def test_every_bench_target_in_design_exists(self):
        text = _read("DESIGN.md")
        targets = re.findall(r"benchmarks/(bench_\w+\.py)", text)
        assert targets, "DESIGN.md must name benchmark targets"
        for target in targets:
            assert os.path.exists(os.path.join(ROOT, "benchmarks",
                                               target)), target

    def test_every_bench_file_covers_a_paper_item_or_ablation(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if not name.startswith("bench_"):
                continue
            body = _read(os.path.join("benchmarks", name))
            assert ("Figure" in body or "Table" in body
                    or "Ablation" in body or "Scalability" in body), name

    def test_design_modules_exist(self):
        text = _read("DESIGN.md")
        modules = re.findall(r"`repro/([\w/{},.]+)\.py`", text)
        flattened = []
        for match in modules:
            if "{" in match:
                prefix, rest = match.split("{", 1)
                names, _ = rest.split("}", 1)
                flattened.extend(prefix + n for n in names.split(","))
            else:
                flattened.append(match)
        assert flattened
        for module in flattened:
            path = os.path.join(ROOT, "src", "repro", module + ".py")
            assert os.path.exists(path), module


class TestReadme:
    def test_readme_examples_exist(self):
        text = _read("README.md")
        examples = re.findall(r"`(\w+\.py)`", text)
        for example in examples:
            assert os.path.exists(os.path.join(ROOT, "examples",
                                               example)), example

    def test_readme_quickstart_names_real_api(self):
        text = _read("README.md")
        import repro
        for name in ("GannsIndex", "BuildParams", "load_dataset",
                     "recall_at_k", "tune_search", "stream_batches"):
            assert name in text
            assert hasattr(repro, name)


class TestPaperMapping:
    def test_mapping_doc_module_references_resolve(self):
        import importlib
        text = _read(os.path.join("docs", "paper_mapping.md"))
        for dotted in set(re.findall(r"`(repro(?:\.\w+)+)`", text)):
            parts = dotted.split(".")
            # Resolve progressively: module path then attribute chain.
            module = None
            for split in range(len(parts), 0, -1):
                try:
                    module = importlib.import_module(
                        ".".join(parts[:split]))
                    remainder = parts[split:]
                    break
                except ImportError:
                    continue
            assert module is not None, dotted
            obj = module
            for attr in remainder:
                assert hasattr(obj, attr), dotted
                obj = getattr(obj, attr)

    def test_mapping_doc_test_references_exist(self):
        text = _read(os.path.join("docs", "paper_mapping.md"))
        for test_file in set(re.findall(r"`(test_\w+\.py)", text)):
            assert os.path.exists(os.path.join(ROOT, "tests",
                                               test_file)), test_file
        for bench_file in set(re.findall(r"`(bench_\w+\.py)`", text)):
            assert os.path.exists(os.path.join(ROOT, "benchmarks",
                                               bench_file)), bench_file
