"""Tests for structural graph validation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import ProximityGraph
from repro.graphs.validation import validate_graph


def _valid_graph():
    g = ProximityGraph(6, 3)
    g.set_row(0, [1, 2], [0.1, 0.2])
    g.set_row(1, [0], [0.1])
    g.set_row(2, [0, 3], [0.2, 0.5])
    g.set_row(3, [2], [0.5])
    g.set_row(4, [5], [0.3])
    g.set_row(5, [4], [0.3])
    return g


class TestValidGraphPasses:
    def test_valid_graph(self):
        validate_graph(_valid_graph())

    def test_empty_graph(self):
        validate_graph(ProximityGraph(3, 2))

    def test_distance_check_passes_on_true_distances(self):
        points = np.array([[0.0], [1.0], [2.0], [4.0]])
        g = ProximityGraph(4, 2)
        g.set_row(0, [1, 2], [1.0, 4.0])
        g.set_row(3, [2], [4.0])
        validate_graph(g, points=points, check_distances=True)


class TestViolationsDetected:
    def test_degree_above_dmax(self):
        g = _valid_graph()
        g.degrees[0] = 5
        with pytest.raises(GraphError, match="degree"):
            validate_graph(g)

    def test_out_of_range_id(self):
        g = _valid_graph()
        g.neighbor_ids[0, 0] = 99
        with pytest.raises(GraphError, match="out-of-range"):
            validate_graph(g)

    def test_stale_entries_past_degree(self):
        g = _valid_graph()
        g.neighbor_ids[1, 2] = 4  # degree is 1
        with pytest.raises(GraphError, match="past its degree"):
            validate_graph(g)

    def test_self_loop(self):
        g = _valid_graph()
        g.neighbor_ids[2, 0] = 2
        with pytest.raises(GraphError, match="self-loop"):
            validate_graph(g)

    def test_duplicate_neighbors(self):
        g = _valid_graph()
        g.neighbor_ids[2, 1] = 0  # 0 already at slot 0
        with pytest.raises(GraphError, match="duplicate"):
            validate_graph(g)

    def test_unsorted_row(self):
        g = _valid_graph()
        g.neighbor_dists[2] = [0.5, 0.2, np.inf]
        with pytest.raises(GraphError, match="sorted"):
            validate_graph(g)

    def test_degree_floor(self):
        g = _valid_graph()
        with pytest.raises(GraphError, match="d_min floor"):
            validate_graph(g, d_min=2)

    def test_degree_floor_accounts_for_small_graphs(self):
        # 2 vertices cannot satisfy d_min=5; floor is n - 1 = 1.
        g = ProximityGraph(2, 8)
        g.set_row(0, [1], [0.1])
        g.set_row(1, [0], [0.1])
        validate_graph(g, d_min=5)

    def test_invalid_d_min(self):
        with pytest.raises(GraphError, match="d_min must be positive"):
            validate_graph(_valid_graph(), d_min=0)

    def test_wrong_stored_distances(self):
        points = np.array([[0.0], [1.0], [2.0], [4.0]])
        g = ProximityGraph(4, 2)
        g.set_row(0, [1, 2], [1.0, 3.0])  # true d(0,2) is 4.0
        with pytest.raises(GraphError, match="deviating"):
            validate_graph(g, points=points, check_distances=True)

    def test_distance_check_skipped_without_flag(self):
        points = np.array([[0.0], [1.0], [2.0], [4.0]])
        g = ProximityGraph(4, 2)
        g.set_row(0, [1, 2], [1.0, 3.0])
        validate_graph(g, points=points, check_distances=False)
