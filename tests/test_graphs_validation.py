"""Tests for structural graph validation."""

import numpy as np
import pytest

from repro.errors import GraphError, ValidationError
from repro.graphs.adjacency import ProximityGraph
from repro.graphs.validation import validate_graph


def _valid_graph():
    g = ProximityGraph(6, 3)
    g.set_row(0, [1, 2], [0.1, 0.2])
    g.set_row(1, [0], [0.1])
    g.set_row(2, [0, 3], [0.2, 0.5])
    g.set_row(3, [2], [0.5])
    g.set_row(4, [5], [0.3])
    g.set_row(5, [4], [0.3])
    return g


class TestValidGraphPasses:
    def test_valid_graph(self):
        validate_graph(_valid_graph())

    def test_empty_graph(self):
        validate_graph(ProximityGraph(3, 2))

    def test_distance_check_passes_on_true_distances(self):
        points = np.array([[0.0], [1.0], [2.0], [4.0]])
        g = ProximityGraph(4, 2)
        g.set_row(0, [1, 2], [1.0, 4.0])
        g.set_row(3, [2], [4.0])
        validate_graph(g, points=points, check_distances=True)


class TestViolationsDetected:
    def test_degree_above_dmax(self):
        g = _valid_graph()
        g.degrees[0] = 5
        with pytest.raises(GraphError, match="degree"):
            validate_graph(g)

    def test_out_of_range_id(self):
        g = _valid_graph()
        g.neighbor_ids[0, 0] = 99
        with pytest.raises(GraphError, match="out-of-range"):
            validate_graph(g)

    def test_stale_entries_past_degree(self):
        g = _valid_graph()
        g.neighbor_ids[1, 2] = 4  # degree is 1
        with pytest.raises(GraphError, match="past its degree"):
            validate_graph(g)

    def test_self_loop(self):
        g = _valid_graph()
        g.neighbor_ids[2, 0] = 2
        with pytest.raises(GraphError, match="self-loop"):
            validate_graph(g)

    def test_duplicate_neighbors(self):
        g = _valid_graph()
        g.neighbor_ids[2, 1] = 0  # 0 already at slot 0
        with pytest.raises(GraphError, match="duplicate"):
            validate_graph(g)

    def test_unsorted_row(self):
        g = _valid_graph()
        g.neighbor_dists[2] = [0.5, 0.2, np.inf]
        with pytest.raises(GraphError, match="sorted"):
            validate_graph(g)

    def test_degree_floor(self):
        g = _valid_graph()
        with pytest.raises(GraphError, match="d_min floor"):
            validate_graph(g, d_min=2)

    def test_degree_floor_accounts_for_small_graphs(self):
        # 2 vertices cannot satisfy d_min=5; floor is n - 1 = 1.
        g = ProximityGraph(2, 8)
        g.set_row(0, [1], [0.1])
        g.set_row(1, [0], [0.1])
        validate_graph(g, d_min=5)

    def test_invalid_d_min(self):
        with pytest.raises(GraphError, match="d_min must be positive"):
            validate_graph(_valid_graph(), d_min=0)

    def test_wrong_stored_distances(self):
        points = np.array([[0.0], [1.0], [2.0], [4.0]])
        g = ProximityGraph(4, 2)
        g.set_row(0, [1, 2], [1.0, 3.0])  # true d(0,2) is 4.0
        with pytest.raises(GraphError, match="deviating"):
            validate_graph(g, points=points, check_distances=True)

    def test_distance_check_skipped_without_flag(self):
        points = np.array([[0.0], [1.0], [2.0], [4.0]])
        g = ProximityGraph(4, 2)
        g.set_row(0, [1, 2], [1.0, 3.0])
        validate_graph(g, points=points, check_distances=False)


def _compacted_graph():
    """A graph whose vertex 3 was tombstoned and detached."""
    g = ProximityGraph(5, 3)
    g.set_row(0, [1, 2], [0.1, 0.2])
    g.set_row(1, [0], [0.1])
    g.set_row(2, [0], [0.2])
    g.set_row(4, [1], [0.4])
    mask = np.zeros(5, dtype=bool)
    mask[3] = True
    return g, mask


class TestTombstoneValidation:
    """The corruption matrix for tombstone-aware validation."""

    def test_detached_tombstone_passes(self):
        g, mask = _compacted_graph()
        validate_graph(g, tombstones=mask)

    def test_no_mask_behaves_as_before(self):
        g, _ = _compacted_graph()
        validate_graph(g)

    def test_all_false_mask_is_a_no_op(self):
        g, _ = _compacted_graph()
        validate_graph(g, tombstones=np.zeros(5, dtype=bool))

    def test_reachable_tombstone_rejected(self):
        g, mask = _compacted_graph()
        # A live vertex still points at the dead one.
        g.set_row(4, [1, 3], [0.4, 0.5])
        with pytest.raises(ValidationError, match="reachable tombstone"):
            validate_graph(g, tombstones=mask)

    def test_tombstone_with_outgoing_edges_rejected(self):
        g, mask = _compacted_graph()
        # The dead vertex still carries an outgoing edge.
        g.set_row(3, [0], [0.3])
        with pytest.raises(ValidationError, match="still carries"):
            validate_graph(g, tombstones=mask)

    def test_wrong_mask_shape_rejected(self):
        g, _ = _compacted_graph()
        with pytest.raises(GraphError, match="shape"):
            validate_graph(g, tombstones=np.zeros(3, dtype=bool))

    def test_d_min_floor_skips_tombstoned_vertices(self):
        # The detached vertex has degree 0; it must not trip the floor.
        g, mask = _compacted_graph()
        g.set_row(4, [0, 1], [0.3, 0.4])
        g.set_row(0, [1, 2], [0.1, 0.2])
        validate_graph(g, d_min=1, tombstones=mask)

    def test_d_min_floor_still_applies_to_live_vertices(self):
        g, mask = _compacted_graph()
        g.set_row(2, [], [])  # live vertex with degree 0
        with pytest.raises(GraphError, match="d_min floor"):
            validate_graph(g, d_min=1, tombstones=mask)

    def test_validation_error_is_a_graph_error(self):
        assert issubclass(ValidationError, GraphError)
