"""Cross-backend equivalence: fast == reference, observably.

The fast backend's whole contract is "same answers, same accounting,
less wall-clock".  This suite pins the contract:

- search ids, iterations and distance counts match **exactly** (and the
  golden workload's ids byte-for-byte against the committed artifact);
- per-phase, per-lane cycle charges match exactly — the simulated clock
  cannot tell the backends apart;
- distances match to dtype-scaled tolerance (the GEMM euclidean form
  regroups the same arithmetic; cosine/ip use identical expressions);
- construction produces byte-identical graphs and identical simulated
  phase seconds;
- the batched HNSW descent returns the reference entries and distance
  counts exactly.
"""

import os

import numpy as np
import pytest

from repro.baselines.hnsw_cpu import hnsw_entry_descent
from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.construction import build_nsw_gpu
from repro.core.ganns import ganns_search
from repro.core.hnsw import build_hnsw_gpu
from repro.core.params import BuildParams, SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.perf.arena import get_arena
from repro.perf.backend import FAST, REFERENCE
from repro.perf.descent import hnsw_entry_descent_batch

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "ganns_golden.npz")

#: Distance tolerance per compute dtype: the euclidean GEMM form
#: (norms - 2ab) regroups the reference's (a-b)^2 sum, so the results
#: agree to a few ulps of the dtype, never exactly.
ATOL = {np.dtype(np.float64): 1e-10, np.dtype(np.float32): 1e-4}


def _assert_trackers_equal(ref, fast):
    assert ref.phase_names == fast.phase_names
    for phase in ref.phase_names:
        ref_lanes = ref.lane_cycles(phase)
        fast_lanes = fast.lane_cycles(phase)
        assert np.array_equal(ref_lanes, fast_lanes), (
            f"per-lane cycle drift in phase {phase!r}"
        )


def _assert_reports_equivalent(ref, fast, dtype=np.float64):
    assert ref.ids.tobytes() == fast.ids.tobytes()
    assert np.array_equal(ref.iterations, fast.iterations)
    assert ref.n_distance_computations == fast.n_distance_computations
    assert ref.dists.dtype == fast.dists.dtype
    np.testing.assert_allclose(ref.dists, fast.dists,
                               atol=ATOL[np.dtype(dtype)], rtol=0)
    _assert_trackers_equal(ref.tracker, fast.tracker)


def _graph_and_data(metric, n=300, m=24, d=16, seed=5):
    points = gaussian_mixture(n, d, seed=seed)
    queries = gaussian_mixture(m, d, seed=seed + 1)
    graph = build_nsw_cpu(points, d_min=8, d_max=16).graph
    # "ip" has no CPU-builder metric; the searched structure is what
    # matters, so rebadge the euclidean graph for the kernel.
    graph.metric_name = metric
    return graph, points, queries


class TestSearchEquivalence:
    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "ip"])
    @pytest.mark.parametrize("lazy_check", [True, False])
    def test_ids_cycles_and_counts_match(self, metric, lazy_check):
        graph, points, queries = _graph_and_data(metric)
        params = SearchParams(k=10, l_n=32, e=24)
        ref = ganns_search(graph, points, queries,
                           params.with_overrides(backend=REFERENCE),
                           lazy_check=lazy_check)
        fast = ganns_search(graph, points, queries,
                            params.with_overrides(backend=FAST),
                            lazy_check=lazy_check)
        _assert_reports_equivalent(ref, fast)

    def test_float32_compute_dtype(self):
        graph, points, queries = _graph_and_data("euclidean")
        params = SearchParams(k=10, l_n=32)
        ref = ganns_search(graph, points, queries,
                           params.with_overrides(backend=REFERENCE),
                           dtype=np.float32)
        fast = ganns_search(graph, points, queries,
                            params.with_overrides(backend=FAST),
                            dtype=np.float32)
        assert ref.dists.dtype == np.dtype(np.float32)
        _assert_reports_equivalent(ref, fast, dtype=np.float32)

    def test_per_query_entry_vertices(self):
        graph, points, queries = _graph_and_data("euclidean")
        entries = np.arange(len(queries)) % graph.n_vertices
        params = SearchParams(k=5, l_n=16)
        ref = ganns_search(graph, points, queries,
                           params.with_overrides(backend=REFERENCE),
                           entry=entries)
        fast = ganns_search(graph, points, queries,
                            params.with_overrides(backend=FAST),
                            entry=entries)
        _assert_reports_equivalent(ref, fast)

    def test_fast_matches_golden_ids_byte_for_byte(self):
        # The frozen scenario of test_golden_determinism, run fast.
        points = gaussian_mixture(400, 16, n_clusters=6, cluster_std=0.3,
                                  intrinsic_dim=6, seed=42)
        queries = gaussian_mixture(30, 16, n_clusters=6, cluster_std=0.3,
                                   intrinsic_dim=6, seed=43)
        graph = build_nsw_cpu(points, d_min=8, d_max=16).graph
        report = ganns_search(graph, points, queries,
                              SearchParams(k=10, l_n=32, e=24,
                                           backend=FAST))
        with np.load(GOLDEN_PATH) as golden:
            assert report.ids.tobytes() == golden["ids"].tobytes()
            np.testing.assert_allclose(report.dists, golden["dists"],
                                       atol=1e-10, rtol=0)


class TestConstructionEquivalence:
    def _assert_graphs_byte_equal(self, ref, fast):
        assert ref.graph.neighbor_ids.tobytes() == \
            fast.graph.neighbor_ids.tobytes()
        assert ref.graph.neighbor_dists.tobytes() == \
            fast.graph.neighbor_dists.tobytes()
        assert ref.graph.degrees.tobytes() == fast.graph.degrees.tobytes()
        assert ref.seconds == fast.seconds
        assert ref.phase_seconds == fast.phase_seconds

    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    def test_nsw_build_byte_identical(self, metric):
        points = gaussian_mixture(300, 16, seed=9)
        params = BuildParams(d_min=8, d_max=16, n_blocks=8)
        ref = build_nsw_gpu(points, params, metric=metric,
                            backend=REFERENCE)
        fast = build_nsw_gpu(points, params, metric=metric, backend=FAST)
        self._assert_graphs_byte_equal(ref, fast)

    def test_exact_mode_byte_identical(self):
        points = gaussian_mixture(120, 8, seed=10)
        params = BuildParams(d_min=4, d_max=8, n_blocks=5)
        ref = build_nsw_gpu(points, params, exact=True, backend=REFERENCE)
        fast = build_nsw_gpu(points, params, exact=True, backend=FAST)
        self._assert_graphs_byte_equal(ref, fast)

    @pytest.mark.parametrize("n_blocks", [1, 257])
    def test_block_count_extremes(self, n_blocks):
        points = gaussian_mixture(257, 8, seed=11)
        params = BuildParams(d_min=4, d_max=8, n_blocks=n_blocks)
        ref = build_nsw_gpu(points, params, backend=REFERENCE)
        fast = build_nsw_gpu(points, params, backend=FAST)
        self._assert_graphs_byte_equal(ref, fast)

    def test_hnsw_build_byte_identical(self):
        points = gaussian_mixture(250, 8, seed=12)
        params = BuildParams(d_min=4, d_max=8, n_blocks=4, seed=3)
        ref = build_hnsw_gpu(points, params, backend=REFERENCE)
        fast = build_hnsw_gpu(points, params, backend=FAST)
        assert np.array_equal(ref.order, fast.order)
        assert ref.seconds == fast.seconds
        for layer_ref, layer_fast in zip(ref.graph.layers,
                                         fast.graph.layers):
            assert layer_ref.neighbor_ids.tobytes() == \
                layer_fast.neighbor_ids.tobytes()
            assert layer_ref.neighbor_dists.tobytes() == \
                layer_fast.neighbor_dists.tobytes()
            assert layer_ref.degrees.tobytes() == \
                layer_fast.degrees.tobytes()


class TestDescentEquivalence:
    @pytest.mark.parametrize("metric", ["euclidean", "cosine"])
    def test_batch_descent_matches_reference(self, metric):
        points = gaussian_mixture(250, 8, seed=13)
        queries = gaussian_mixture(40, 8, seed=14)
        params = BuildParams(d_min=4, d_max=8, n_blocks=4, seed=3)
        built = build_hnsw_gpu(points, params, metric=metric)
        shuffled = points[built.order]
        entries, n_dists = hnsw_entry_descent_batch(built.graph, shuffled,
                                                    queries)
        for row in range(len(queries)):
            entry, count = hnsw_entry_descent(built.graph, shuffled,
                                              queries[row])
            assert entries[row] == entry
            assert n_dists[row] == count


class TestArenaReuse:
    def test_same_shape_reuses_buffers(self):
        first = get_arena(40, 32, 16, np.dtype(np.float64))
        second = get_arena(30, 32, 16, np.dtype(np.float64))
        assert second is first  # smaller batch fits the cached arena

    def test_capacity_grows_when_needed(self):
        small = get_arena(8, 64, 16, np.dtype(np.float64))
        large = get_arena(8 * 1024, 64, 16, np.dtype(np.float64))
        assert large is not small
        assert large.capacity >= 8 * 1024

    def test_reset_clears_state_between_searches(self):
        graph, points, queries = _graph_and_data("euclidean", n=200, m=10)
        params = SearchParams(k=5, l_n=16, backend=FAST)
        first = ganns_search(graph, points, queries, params)
        second = ganns_search(graph, points, queries, params)
        assert first.ids.tobytes() == second.ids.tobytes()
        assert first.dists.tobytes() == second.dists.tobytes()
        _assert_trackers_equal(first.tracker, second.tracker)
