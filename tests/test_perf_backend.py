"""Backend selection and dtype pinning for the fast execution path.

The fast backend is strictly opt-in: with no explicit request and no
``REPRO_BACKEND`` environment variable, every entry point runs the
reference kernel, and nothing about the choice leaks into result
identity (``SearchParams.signature``).
"""

import numpy as np
import pytest

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import ConfigurationError, GraphError, SearchError
from repro.graphs.adjacency import ProximityGraph
from repro.perf.backend import (
    BACKEND_ENV_VAR,
    FAST,
    REFERENCE,
    VALID_BACKENDS,
    resolve_backend,
)
from repro.perf.distance import resolve_compute_dtype


class TestResolveBackend:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend() == REFERENCE

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, REFERENCE)
        assert resolve_backend(FAST) == FAST

    def test_env_applies_when_no_explicit(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, FAST)
        assert resolve_backend() == FAST

    def test_empty_env_means_reference(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend() == REFERENCE

    def test_invalid_explicit_raises(self):
        with pytest.raises(ConfigurationError, match="backend"):
            resolve_backend("cuda")

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp-speed")
        with pytest.raises(ConfigurationError, match=BACKEND_ENV_VAR):
            resolve_backend()

    def test_valid_backends_is_the_pair(self):
        assert set(VALID_BACKENDS) == {REFERENCE, FAST}


class TestSearchParamsBackend:
    def test_default_backend_is_none(self):
        assert SearchParams().backend is None

    @pytest.mark.parametrize("backend", [REFERENCE, FAST, None])
    def test_valid_backends_accepted(self, backend):
        assert SearchParams(backend=backend).backend == backend

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            SearchParams(backend="gpu")

    def test_signature_excludes_backend(self):
        ref = SearchParams(k=5, l_n=32, backend=REFERENCE)
        fast = SearchParams(k=5, l_n=32, backend=FAST)
        assert ref.signature() == fast.signature()

    def test_with_overrides_revalidates(self):
        params = SearchParams()
        with pytest.raises(ConfigurationError):
            params.with_overrides(backend="nope")


class TestComputeDtype:
    def test_default_is_float64(self):
        pts = np.zeros((4, 3), dtype=np.float32)
        qs = np.zeros((2, 3), dtype=np.float32)
        assert resolve_compute_dtype(pts, qs) == np.dtype(np.float64)

    def test_explicit_float32(self):
        pts = np.zeros((4, 3), dtype=np.float32)
        qs = np.zeros((2, 3), dtype=np.float32)
        assert (resolve_compute_dtype(pts, qs, np.float32)
                == np.dtype(np.float32))

    def test_mixed_dtypes_raise(self):
        pts = np.zeros((4, 3), dtype=np.float32)
        qs = np.zeros((2, 3), dtype=np.float64)
        with pytest.raises(SearchError, match="mixed-dtype"):
            resolve_compute_dtype(pts, qs)

    def test_unsupported_dtype_raises(self):
        pts = np.zeros((4, 3), dtype=np.float64)
        qs = np.zeros((2, 3), dtype=np.float64)
        with pytest.raises(SearchError, match="float16"):
            resolve_compute_dtype(pts, qs, np.float16)

    def test_mixed_dtype_surfaces_through_search(self):
        pts = gaussian_mixture(60, 8, seed=1).astype(np.float32)
        qs = gaussian_mixture(4, 8, seed=2).astype(np.float64)
        graph = build_nsw_cpu(pts, d_min=4, d_max=8).graph
        with pytest.raises(SearchError, match="mixed-dtype"):
            ganns_search(graph, pts, qs, SearchParams(k=4, l_n=8))


class TestGraphDtypePinning:
    def test_default_dtype_is_float64(self):
        graph = ProximityGraph(4, 2)
        assert graph.dtype == np.dtype(np.float64)
        assert graph.neighbor_dists.dtype == np.dtype(np.float64)

    def test_float32_rows_stay_float32(self):
        graph = ProximityGraph(4, 2, dtype=np.float32)
        graph.set_row(0, [1, 2], [0.25, 0.5])
        assert graph.neighbor_dists.dtype == np.dtype(np.float32)
        graph.merge_row(0, [3], [0.125])
        assert graph.neighbor_dists.dtype == np.dtype(np.float32)
        assert graph.copy().dtype == np.dtype(np.float32)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(GraphError, match="dtype"):
            ProximityGraph(4, 2, dtype=np.int32)
