"""Cross-module integration flows: catalog dataset -> build -> search ->
recall/timing, exercised the way the benchmark suite uses the library."""

import numpy as np
import pytest

from repro import (
    BuildParams,
    GannsIndex,
    SearchParams,
    SongParams,
    build_nsw_cpu,
    build_nsw_gpu,
    ganns_search,
    load_dataset,
    recall_at_k,
    song_search,
)
from repro.bench.runner import (
    CurvePoint,
    GraphCache,
    qps_at_recall,
    sweep_ganns,
    sweep_song,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("sift1m", n_points=1500, n_queries=60)


@pytest.fixture(scope="module")
def graph(dataset):
    params = BuildParams(d_min=8, d_max=16, n_blocks=16)
    return build_nsw_gpu(dataset.points, params).graph


class TestSearchPipeline:
    def test_ganns_beats_song_throughput_at_same_recall(self, dataset,
                                                        graph):
        """The paper's central claim, end to end on a catalog stand-in."""
        gt = dataset.ground_truth(10)
        ganns = ganns_search(graph, dataset.points, dataset.queries,
                             SearchParams(k=10, l_n=64))
        song = song_search(graph, dataset.points, dataset.queries,
                           SongParams(k=10, pq_bound=64))
        r_ganns = recall_at_k(ganns.ids, gt)
        r_song = recall_at_k(song.ids, gt)
        assert r_ganns == pytest.approx(r_song, abs=0.05)
        assert (ganns.queries_per_second()
                > 1.5 * song.queries_per_second())

    def test_song_structure_share_in_paper_band(self, dataset, graph):
        song = song_search(graph, dataset.points, dataset.queries[:50],
                           SongParams(k=10, pq_bound=64))
        assert song.structure_fraction() > 0.5

    def test_ganns_structure_share_below_song(self, dataset, graph):
        ganns = ganns_search(graph, dataset.points, dataset.queries[:50],
                             SearchParams(k=10, l_n=64))
        song = song_search(graph, dataset.points, dataset.queries[:50],
                           SongParams(k=10, pq_bound=64))
        assert ganns.structure_fraction() < song.structure_fraction()


class TestSweepHelpers:
    def test_sweep_curves_monotone_in_budget(self, dataset, graph):
        curve = sweep_ganns(graph, dataset, 10,
                            [(32, 16), (64, 64), (128, 128)])
        recalls = [p.recall for p in curve]
        assert recalls == sorted(recalls)
        qps = [p.qps for p in curve]
        assert qps == sorted(qps, reverse=True)

    def test_song_sweep(self, dataset, graph):
        curve = sweep_song(graph, dataset, 10, [16, 64])
        assert curve[1].recall >= curve[0].recall

    def test_qps_at_recall_interpolates(self):
        curve = [CurvePoint(0.5, 1000.0, (1,)),
                 CurvePoint(0.9, 100.0, (2,))]
        mid = qps_at_recall(curve, 0.7)
        assert 100.0 < mid < 1000.0
        assert qps_at_recall(curve, 0.3) == 1000.0
        assert qps_at_recall(curve, 0.99) == 100.0

    def test_graph_cache_round_trip(self, dataset, tmp_path):
        cache = GraphCache(str(tmp_path / "cache"))
        params = BuildParams(d_min=4, d_max=8, n_blocks=8)
        first = cache.nsw_graph(dataset, params)
        second = cache.nsw_graph(dataset, params)
        assert np.array_equal(first.neighbor_ids, second.neighbor_ids)
        # Cached copy must be read from disk, not rebuilt (same content).
        files = list((tmp_path / "cache").iterdir())
        assert len(files) == 1


class TestIndexOnCatalogData:
    def test_cosine_catalog_dataset(self):
        ds = load_dataset("nytimes", n_points=1000, n_queries=40)
        index = GannsIndex.build(
            ds.points, metric="cosine",
            params=BuildParams(d_min=8, d_max=16, n_blocks=16))
        recall = index.evaluate_recall(ds.queries, ds.ground_truth(10),
                                       k=10, l_n=128)
        assert recall > 0.6

    def test_dimensionality_sweep_dataset_view(self, dataset):
        """Figure 9's mechanism: truncating dimensions keeps the pipeline
        working and speeds up the simulated search."""
        truncated = dataset.truncate_dims(32)
        params = BuildParams(d_min=8, d_max=16, n_blocks=16)
        graph = build_nsw_gpu(truncated.points, params).graph
        full_graph = build_nsw_gpu(dataset.points, params).graph
        narrow = ganns_search(graph, truncated.points, truncated.queries,
                              SearchParams(k=10, l_n=64))
        wide = ganns_search(full_graph, dataset.points, dataset.queries,
                            SearchParams(k=10, l_n=64))
        assert (narrow.queries_per_second() > wide.queries_per_second())
