"""Failure injection: corrupted inputs must fail loudly or heal.

A production library's failure modes matter as much as its happy path:
structural corruption must be *detected* (never silently wrong results),
and recoverable corruption (cache files) must heal automatically.
"""

import numpy as np
import pytest

from repro.core.params import BuildParams
from repro.errors import GraphError
from repro.graphs.adjacency import ProximityGraph
from repro.graphs.validation import validate_graph


class TestCorruptedGraphDetection:
    def _corrupt_and_check(self, graph, mutate, match):
        clone = graph.copy()
        mutate(clone)
        with pytest.raises(GraphError, match=match):
            validate_graph(clone)

    def test_all_corruptions_detected(self, small_graph):
        def out_of_range(g):
            g.neighbor_ids[3, 0] = g.n_vertices + 5

        def self_loop(g):
            g.neighbor_ids[3, 0] = 3

        def unsorted(g):
            degree = g.degrees[3]
            assert degree >= 2
            g.neighbor_dists[3, 0] = g.neighbor_dists[3, degree - 1] + 1

        def duplicate(g):
            degree = g.degrees[3]
            assert degree >= 2
            g.neighbor_ids[3, 1] = g.neighbor_ids[3, 0]

        def degree_overflow(g):
            g.degrees[3] = g.d_max + 1

        def nan_distance(g):
            g.neighbor_dists[3, 0] = np.nan

        def posinf_distance(g):
            g.neighbor_dists[3, 0] = np.inf

        def neginf_distance(g):
            g.neighbor_dists[3, 0] = -np.inf

        def shape_mismatch(g):
            g.neighbor_ids = g.neighbor_ids[:, :-1].copy()

        self._corrupt_and_check(small_graph, out_of_range, "out-of-range")
        self._corrupt_and_check(small_graph, self_loop, "self-loop")
        self._corrupt_and_check(small_graph, unsorted, "sorted")
        self._corrupt_and_check(small_graph, duplicate, "duplicate")
        self._corrupt_and_check(small_graph, degree_overflow, "degree")
        self._corrupt_and_check(small_graph, nan_distance, "non-finite")
        self._corrupt_and_check(small_graph, posinf_distance,
                                "non-finite")
        self._corrupt_and_check(small_graph, neginf_distance,
                                "non-finite")
        self._corrupt_and_check(small_graph, shape_mismatch,
                                "adjacency arrays")

    def test_nan_in_padding_is_not_flagged(self, small_graph):
        """Only *live* slots matter: garbage past the degree is padding
        territory and must not fail validation."""
        clone = small_graph.copy()
        vertex = int(np.argmin(clone.degrees))
        degree = clone.degrees[vertex]
        assert degree < clone.d_max
        clone.neighbor_dists[vertex, degree:] = np.nan
        validate_graph(clone)

    def test_nan_distance_names_vertex_and_slot(self, small_graph):
        clone = small_graph.copy()
        clone.neighbor_dists[7, 1] = np.nan
        with pytest.raises(GraphError, match=r"vertex 7.*slot 1"):
            validate_graph(clone)

    def test_wrong_distance_values_detected(self, small_graph,
                                            small_points):
        clone = small_graph.copy()
        clone.neighbor_dists[5, 0] *= 3.0
        clone.neighbor_dists[5].sort()
        with pytest.raises(GraphError, match="deviating"):
            validate_graph(clone, points=small_points,
                           check_distances=True)

    def test_index_build_validates_by_default(self, small_points):
        """GannsIndex.build runs validation, so a construction bug would
        surface at build time rather than as silent bad recall."""
        from repro.core.index import GannsIndex
        index = GannsIndex.build(
            small_points[:150],
            params=BuildParams(d_min=4, d_max=8, n_blocks=4))
        validate_graph(index.graph)


class TestCacheHealing:
    def test_corrupted_graph_cache_rebuilds(self, tmp_path):
        from repro.bench.runner import GraphCache
        from repro.datasets.catalog import load_dataset

        dataset = load_dataset("sift1m", n_points=300, n_queries=5)
        cache = GraphCache(str(tmp_path))
        params = BuildParams(d_min=4, d_max=8, n_blocks=4)
        first = cache.nsw_graph(dataset, params)
        # Corrupt the single cache file.
        (cache_file,) = list(tmp_path.iterdir())
        cache_file.write_bytes(b"not an npz archive")
        healed = cache.nsw_graph(dataset, params)
        assert np.array_equal(first.neighbor_ids, healed.neighbor_ids)

    def test_corrupted_timing_cache_rebuilds(self, tmp_path):
        from repro.bench.runner import GraphCache
        from repro.bench.workloads import construction_device
        from repro.datasets.catalog import load_dataset

        dataset = load_dataset("sift1m", n_points=250, n_queries=5)
        cache = GraphCache(str(tmp_path))
        params = BuildParams(d_min=4, d_max=8, n_blocks=4)
        device = construction_device()
        first = cache.construction_timing(dataset, params, "ggc-ganns",
                                          device=device)
        (cache_file,) = list(tmp_path.iterdir())
        cache_file.write_bytes(b"garbage")
        healed = cache.construction_timing(dataset, params, "ggc-ganns",
                                           device=device)
        assert healed.seconds == pytest.approx(first.seconds)


class TestDegenerateInputs:
    def test_single_point_dataset(self):
        from repro.baselines.nsw_cpu import build_nsw_cpu
        points = np.zeros((1, 4), dtype=np.float32)
        report = build_nsw_cpu(points, d_min=2, d_max=4)
        assert report.graph.n_edges() == 0

    def test_two_point_search(self):
        from repro.baselines.nsw_cpu import build_nsw_cpu
        from repro.core.ganns import ganns_search
        from repro.core.params import SearchParams
        points = np.array([[0.0, 0.0], [1.0, 1.0]], dtype=np.float32)
        graph = build_nsw_cpu(points, d_min=1, d_max=2).graph
        report = ganns_search(graph, points, points, SearchParams(
            k=2, l_n=32))
        assert np.array_equal(report.ids[:, 0], [0, 1])

    def test_duplicate_points(self):
        """Coincident points (distance 0 ties) must not break ordering
        invariants anywhere."""
        from repro.baselines.nsw_cpu import build_nsw_cpu
        from repro.core.ganns import ganns_search
        from repro.core.params import SearchParams
        rng = np.random.default_rng(0)
        base = rng.normal(size=(50, 4)).astype(np.float32)
        points = np.concatenate([base, base[:10]])  # 10 exact duplicates
        graph = build_nsw_cpu(points, d_min=4, d_max=8).graph
        validate_graph(graph)
        report = ganns_search(graph, points, base[:5],
                              SearchParams(k=5, l_n=32))
        # A distance-0 copy of the query (original or duplicate) must
        # rank first; which copy depends on graph connectivity.
        assert np.allclose(report.dists[:, 0], 0.0)
        for row in range(5):
            assert report.ids[row, 0] in (row, row + 50)

    def test_query_equals_all_zeros_cosine(self, cosine_graph,
                                           cosine_points):
        """A zero query under cosine is orderable (distance 1 to all)."""
        from repro.core.ganns import ganns_search
        from repro.core.params import SearchParams
        zero = np.zeros((1, cosine_points.shape[1]), dtype=np.float32)
        report = ganns_search(cosine_graph, cosine_points, zero,
                              SearchParams(k=3, l_n=32))
        assert (report.ids[0] >= 0).all()
