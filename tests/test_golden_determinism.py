"""Golden-file determinism: GANNS results are frozen byte-for-byte.

The repository's headline reproducibility claim is pinned here against a
committed artifact: ``ganns_search`` on a fixed-seed synthetic dataset
must return ids and distances *byte-identical* to the golden file under
``tests/data/`` — across runs, processes and releases.  Any change that
moves a single bit (a reordered reduction, a different tie-break, a new
default) fails this test and must either be fixed or consciously
regenerate the golden:

    PYTHONPATH=src python tests/test_golden_determinism.py --regenerate
"""

import os

import numpy as np

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "ganns_golden.npz")

#: The frozen scenario.  Never change these values without regenerating
#: the golden file (and saying so in the commit message).
N_POINTS = 400
N_QUERIES = 30
N_DIMS = 16
SEED_POINTS = 42
SEED_QUERIES = 43
D_MIN, D_MAX = 8, 16
PARAMS = SearchParams(k=10, l_n=32, e=24)


def _compute():
    """Run the frozen scenario from scratch (dataset, graph, search)."""
    points = gaussian_mixture(N_POINTS, N_DIMS, n_clusters=6,
                              cluster_std=0.3, intrinsic_dim=6,
                              seed=SEED_POINTS)
    queries = gaussian_mixture(N_QUERIES, N_DIMS, n_clusters=6,
                               cluster_std=0.3, intrinsic_dim=6,
                               seed=SEED_QUERIES)
    graph = build_nsw_cpu(points, d_min=D_MIN, d_max=D_MAX).graph
    report = ganns_search(graph, points, queries, PARAMS)
    return report.ids, report.dists


class TestGoldenFile:
    def test_golden_file_is_committed(self):
        assert os.path.exists(GOLDEN_PATH), (
            f"golden file missing at {GOLDEN_PATH}; regenerate with "
            f"PYTHONPATH=src python {__file__} --regenerate"
        )

    def test_search_matches_golden_byte_for_byte(self):
        ids, dists = _compute()
        with np.load(GOLDEN_PATH) as golden:
            golden_ids = golden["ids"]
            golden_dists = golden["dists"]
        assert ids.dtype == golden_ids.dtype
        assert dists.dtype == golden_dists.dtype
        assert ids.shape == golden_ids.shape
        assert dists.shape == golden_dists.shape
        # Byte identity, not approximate equality: tobytes() comparison
        # catches even a flipped sign bit on a zero.
        assert ids.tobytes() == golden_ids.tobytes()
        assert dists.tobytes() == golden_dists.tobytes()

    def test_back_to_back_runs_are_byte_identical(self):
        ids_a, dists_a = _compute()
        ids_b, dists_b = _compute()
        assert ids_a.tobytes() == ids_b.tobytes()
        assert dists_a.tobytes() == dists_b.tobytes()


def _regenerate():
    ids, dists = _compute()
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    np.savez_compressed(GOLDEN_PATH, ids=ids, dists=dists)
    print(f"wrote {GOLDEN_PATH}: ids {ids.shape} {ids.dtype}, "
          f"dists {dists.shape} {dists.dtype}")


if __name__ == "__main__":
    import sys
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print("pass --regenerate to rewrite the golden file")
