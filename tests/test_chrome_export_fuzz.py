"""Fuzzing the Chrome ``trace_event`` exporter with hypothesis trees.

The exporter promises that *any* well-formed span tree — arbitrary
nesting, zero-width spans, shared timestamps, unicode attribute values,
instants on span boundaries — exports to a payload the trace viewer can
load: valid JSON, matched ``B``/``E`` pairs per thread, non-decreasing
timestamps, instants inside an open span.  ``parse_chrome_trace`` is
the machine-checkable form of that contract, so the property is simply
export → parse for randomly grown trees built through the public
:class:`SpanTracer` API.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import (
    SpanTracer,
    export_chrome_trace_bytes,
    parse_chrome_trace,
)

names = st.text(min_size=1, max_size=12)
attr_values = st.one_of(
    st.text(max_size=20),                      # includes unicode
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.none(),
)
attrs = st.dictionaries(st.text(min_size=1, max_size=8), attr_values,
                        max_size=3)
lanes = st.sampled_from([None, "alpha", "beta", "γ-lane"])


@st.composite
def span_trees(draw):
    """Grow a random closed span tree through the tracer API."""
    tracer = SpanTracer()

    def grow(parent_id, lo, hi, depth):
        n_children = draw(st.integers(min_value=0,
                                      max_value=3 if depth < 3 else 0))
        cursor = lo
        for _ in range(n_children):
            # Child interval inside [cursor, hi]; may be zero-width.
            start = draw(st.floats(min_value=cursor, max_value=hi,
                                   allow_nan=False))
            end = draw(st.floats(min_value=start, max_value=hi,
                                 allow_nan=False))
            span_id = tracer.begin(draw(names), start,
                                   parent_id=parent_id,
                                   lane=draw(lanes),
                                   attributes=draw(attrs))
            grow(span_id, start, end, depth + 1)
            n_events = draw(st.integers(min_value=0, max_value=2))
            for _ in range(n_events):
                at = draw(st.floats(min_value=start, max_value=end,
                                    allow_nan=False))
                tracer.event(span_id, at, draw(names),
                             attributes=draw(attrs))
            tracer.end(span_id, end)
            cursor = end
        return cursor

    n_roots = draw(st.integers(min_value=1, max_value=3))
    cursor = 0.0
    for _ in range(n_roots):
        start = draw(st.floats(min_value=cursor, max_value=1e3,
                               allow_nan=False))
        end = draw(st.floats(min_value=start, max_value=1e3,
                             allow_nan=False))
        root = tracer.begin(draw(names), start, lane=draw(lanes),
                            attributes=draw(attrs))
        grow(root, start, end, 0)
        tracer.end(root, end)
        cursor = end
    tracer.finish()
    return tracer


class TestChromeExportFuzz:
    @settings(max_examples=150, deadline=None)
    @given(tracer=span_trees())
    def test_every_tree_exports_to_a_loadable_trace(self, tracer):
        payload = export_chrome_trace_bytes(tracer)
        events = parse_chrome_trace(payload)
        durations = [e for e in events if e["ph"] in ("B", "E")]
        instants = [e for e in events if e["ph"] == "i"]
        # Nothing is dropped: one B/E pair per span, every span event
        # survives as an instant (pushdown relocates, never discards).
        assert len(durations) == 2 * len(tracer.spans)
        assert len(instants) == sum(len(s.events)
                                    for s in tracer.spans)

    @settings(max_examples=150, deadline=None)
    @given(tracer=span_trees())
    def test_export_is_deterministic_ascii_json(self, tracer):
        payload = export_chrome_trace_bytes(tracer)
        assert payload == export_chrome_trace_bytes(tracer)
        payload.decode("ascii")  # unicode is escaped, never raw
        data = json.loads(payload)
        assert data["displayTimeUnit"] == "ms"

    def test_instant_inside_child_does_not_regress_timestamps(self):
        # Regression shape: a parent event strictly inside its child's
        # interval must be pushed inside the child's B/E pair.
        tracer = SpanTracer()
        parent = tracer.begin("parent", 0.0, lane="x")
        tracer.add("child", 1.0, 3.0, parent_id=parent, lane="x")
        tracer.event(parent, 2.0, "mid")  # strictly inside the child
        tracer.end(parent, 4.0)
        tracer.finish()
        events = parse_chrome_trace(export_chrome_trace_bytes(tracer))
        order = [(e["ph"], e["name"]) for e in events
                 if e["ph"] != "M"]
        assert order == [("B", "parent"), ("B", "child"),
                         ("i", "mid"), ("E", "child"), ("E", "parent")]
