"""The paper's worked example (Figure 1, Examples 1 and 2).

The graph ``G_1`` has 12 vertices; the examples fix the distance ranking
to the query ``q`` and the traversal order:

- entry ``v_1``; its neighbors are ``v_2, v_3, v_5, v_7, v_8``;
- iteration order ``v_1, v_8, v_10, v_12, v_9`` (Example 1's path
  ``v_10 -> v_12 -> v_9``);
- Example 2's sorted neighbor buffer after iteration 1 is
  ``v_8, v_7, v_2, v_5, v_3`` (increasing distance to q);
- both algorithms return ``{v_12, v_9, v_8, v_10}`` for ``k = 4``, with
  ``v_10`` the furthest result and ``v_4`` the best remaining candidate.

We realise those constraints with 1-D coordinates (only distances to
``q`` matter for search) and the adjacency lists implied by the figure,
then assert the exact traversal and result for Algorithm 1, GANNS
(batched) and the faithful GANNS kernel.  Vertex ``v_i`` is index
``i - 1``.
"""

import numpy as np
import pytest

from repro.baselines.beam import beam_search
from repro.baselines.song import SongParams, song_search
from repro.core.ganns import ganns_search
from repro.core.ganns_kernel import ganns_search_kernel
from repro.core.params import SearchParams
from repro.graphs.adjacency import ProximityGraph

# Distance of each vertex to q (vertex v_i at index i-1):
#   v12 < v9 < v8 < v10 < v4 < v7 < v2 < v5 < v3 < v1 < v6 < v11
_DIST_TO_Q = {
    12: 1.0, 9: 2.0, 8: 3.0, 10: 4.0, 4: 5.0, 7: 6.0,
    2: 7.0, 5: 8.0, 3: 9.0, 1: 10.0, 6: 11.0, 11: 12.0,
}

# Adjacency from Figure 1 (1-based vertex names).
_ADJACENCY = {
    1: [2, 3, 5, 7, 8],
    2: [1, 3],
    3: [1, 2],
    5: [1, 7],
    7: [1, 5, 8],
    8: [1, 7, 10],
    10: [8, 12],
    12: [9, 10],
    9: [4, 12],
    4: [6, 9],
    6: [4, 11],
    11: [6],
}


@pytest.fixture(scope="module")
def g1():
    """The example graph over 1-D points placed at their q-distances."""
    points = np.zeros((12, 1), dtype=np.float64)
    for vertex, dist in _DIST_TO_Q.items():
        points[vertex - 1, 0] = dist
    graph = ProximityGraph(12, 8)
    for vertex, neighbors in _ADJACENCY.items():
        v = vertex - 1
        for u_name in neighbors:
            u = u_name - 1
            graph.insert_edge(v, u, abs(points[v, 0] - points[u, 0]) ** 2)
    query = np.array([0.0])
    return graph, points, query


def _names(ids):
    return [int(i) + 1 for i in ids]


class TestExample1Algorithm1:
    def test_returns_v12_v9_v8_v10(self, g1):
        graph, points, query = g1
        result = beam_search(graph, points, query, k=4, ef=4, entry=0)
        assert _names(result.ids) == [12, 9, 8, 10]

    def test_terminates_after_five_iterations(self, g1):
        """Example 1: 'After iteration 5 ... traversal terminates.'"""
        graph, points, query = g1
        result = beam_search(graph, points, query, k=4, ef=4, entry=0)
        assert result.n_iterations == 6  # 5 expansions + terminating pop

    def test_v4_never_expanded(self, g1):
        """v_4 is the best remaining candidate when the search stops, so
        its neighbors (v_6) must never be visited."""
        graph, points, query = g1
        result = beam_search(graph, points, query, k=4, ef=4, entry=0)
        assert 6 - 1 not in result.ids  # v_6 absent
        # v_6 and v_11 were never even distance-computed: 12 - 2 = 10
        assert result.n_distance_computations <= 10


class TestExample2Ganns:
    def test_returns_v12_v9_v8_v10_in_order(self, g1):
        graph, points, query = g1
        report = ganns_search(graph, points, query[None, :],
                              SearchParams(k=4, l_n=32))
        assert _names(report.ids[0]) == [12, 9, 8, 10]

    def test_kernel_agrees(self, g1):
        graph, points, query = g1
        report = ganns_search_kernel(graph, points, query,
                                     SearchParams(k=4, l_n=32))
        assert _names(report.ids[0]) == [12, 9, 8, 10]

    def test_song_agrees(self, g1):
        graph, points, query = g1
        report = song_search(graph, points, query[None, :],
                             SongParams(k=4, pq_bound=4))
        assert _names(report.ids[0]) == [12, 9, 8, 10]

    def test_iteration_1_buffer_order(self, g1):
        """Example 2: after sorting, T holds v8, v7, v2, v5, v3."""
        graph, points, query = g1
        neighbor_ids = graph.neighbors(0)  # v_1's row
        dists = graph.metric.one_to_many(query, points[neighbor_ids])
        order = np.lexsort((neighbor_ids, dists))
        assert _names(neighbor_ids[order]) == [8, 7, 2, 5, 3]

    def test_five_explorations(self, g1):
        """Example 2 explores v1, v8, v10, v12, v9 — five iterations.

        The example's pool is exactly the result size (l_n = k = 4):
        "In iteration 5, the only unexplored point in N, v9, is chosen".
        """
        graph, points, query = g1
        report = ganns_search(graph, points, query[None, :],
                              SearchParams(k=4, l_n=4))
        assert report.iterations[0] == 5
        assert _names(report.ids[0]) == [12, 9, 8, 10]

    def test_same_search_path_as_algorithm_1(self, g1):
        """Section III-B: 'our search algorithm has the same search path
        as Algorithm 1' — identical results on the worked example."""
        graph, points, query = g1
        ganns = ganns_search(graph, points, query[None, :],
                             SearchParams(k=4, l_n=32))
        beam = beam_search(graph, points, query, k=4, ef=4, entry=0)
        assert np.array_equal(ganns.ids[0], beam.ids)
