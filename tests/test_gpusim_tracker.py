"""Tests for per-lane, per-phase cycle accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpusim.tracker import CycleTracker, PhaseCategory


class TestChargeSemantics:
    def test_scalar_charge_all_lanes(self):
        t = CycleTracker(4)
        t.charge("a", 10.0)
        assert np.array_equal(t.lane_cycles("a"), [10, 10, 10, 10])

    def test_boolean_mask_charge(self):
        t = CycleTracker(4)
        t.charge("a", 5.0, np.array([True, False, True, False]))
        assert np.array_equal(t.lane_cycles("a"), [5, 0, 5, 0])

    def test_index_array_charge(self):
        t = CycleTracker(4)
        t.charge("a", 3.0, np.array([1, 3]))
        assert np.array_equal(t.lane_cycles("a"), [0, 3, 0, 3])

    def test_vector_charge_on_indices(self):
        t = CycleTracker(4)
        t.charge("a", np.array([1.0, 2.0]), np.array([0, 2]))
        assert np.array_equal(t.lane_cycles("a"), [1, 0, 2, 0])

    def test_charges_accumulate(self):
        t = CycleTracker(2)
        t.charge("a", 1.0)
        t.charge("a", 2.0)
        assert np.array_equal(t.lane_cycles("a"), [3, 3])

    def test_wrong_mask_shape_rejected(self):
        t = CycleTracker(4)
        with pytest.raises(ConfigurationError, match="mask"):
            t.charge("a", 1.0, np.array([True, False]))

    def test_zero_lanes_rejected(self):
        with pytest.raises(ConfigurationError, match="positive"):
            CycleTracker(0)


class TestReadout:
    def test_unknown_phase_reads_as_zero(self):
        t = CycleTracker(3)
        assert np.array_equal(t.lane_cycles("never"), [0, 0, 0])

    def test_total_cycles_sums_lanes_and_phases(self):
        t = CycleTracker(2)
        t.charge("a", 1.0)
        t.charge("b", 2.0)
        assert t.total_cycles() == 6.0
        assert t.total_cycles("a") == 2.0

    def test_phase_totals(self):
        t = CycleTracker(2)
        t.charge("a", 1.0)
        assert t.phase_totals() == {"a": 2.0}

    def test_breakdown_sums_to_one(self):
        t = CycleTracker(1)
        t.charge("a", 3.0)
        t.charge("b", 1.0)
        breakdown = t.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["a"] == pytest.approx(0.75)

    def test_breakdown_empty_tracker(self):
        assert CycleTracker(1).breakdown() == {}

    def test_lane_cycles_returns_copy(self):
        t = CycleTracker(2)
        t.charge("a", 1.0)
        arr = t.lane_cycles("a")
        arr[:] = 99
        assert t.total_cycles("a") == 2.0


class TestCategories:
    def test_registered_category(self):
        t = CycleTracker(1, {"dist": PhaseCategory.DISTANCE})
        assert t.category_of("dist") is PhaseCategory.DISTANCE

    def test_unknown_phase_is_other(self):
        t = CycleTracker(1)
        assert t.category_of("x") is PhaseCategory.OTHER

    def test_category_totals(self):
        t = CycleTracker(1, {"d": PhaseCategory.DISTANCE,
                             "s": PhaseCategory.STRUCTURE})
        t.charge("d", 3.0)
        t.charge("s", 1.0)
        totals = t.category_totals()
        assert totals[PhaseCategory.DISTANCE] == 3.0
        assert totals[PhaseCategory.STRUCTURE] == 1.0

    def test_category_lane_cycles(self):
        t = CycleTracker(2, {"d": PhaseCategory.DISTANCE})
        t.charge("d", 2.0, np.array([0]))
        assert np.array_equal(
            t.category_lane_cycles(PhaseCategory.DISTANCE), [2, 0])

    def test_register_category_later(self):
        t = CycleTracker(1)
        t.charge("x", 1.0)
        t.register_category("x", PhaseCategory.MEMORY)
        assert t.category_totals()[PhaseCategory.MEMORY] == 1.0


class TestMergeAndReset:
    def test_merge_from(self):
        a = CycleTracker(2, {"p": PhaseCategory.DISTANCE})
        b = CycleTracker(2)
        a.charge("p", 1.0)
        b.charge("p", np.array([1.0, 2.0]), np.array([0, 1]))
        a.merge_from(b)
        assert np.array_equal(a.lane_cycles("p"), [2, 3])

    def test_merge_adopts_categories(self):
        a = CycleTracker(1)
        b = CycleTracker(1, {"p": PhaseCategory.STRUCTURE})
        b.charge("p", 1.0)
        a.merge_from(b)
        assert a.category_of("p") is PhaseCategory.STRUCTURE

    def test_merge_lane_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="lane counts"):
            CycleTracker(2).merge_from(CycleTracker(3))

    def test_reset_clears_cycles_keeps_categories(self):
        t = CycleTracker(1, {"p": PhaseCategory.DISTANCE})
        t.charge("p", 5.0)
        t.reset()
        assert t.total_cycles() == 0.0
        assert t.category_of("p") is PhaseCategory.DISTANCE
