"""Equivalence: the faithful warp-primitive kernel vs the batched path.

The batched implementation is what benchmarks run; the kernel built from
``ballot/ffs/shfl_down`` and the real bitonic networks is what the paper
describes.  They must agree.
"""

import numpy as np
import pytest

from repro.core.ganns import ganns_search
from repro.core.ganns_kernel import ganns_search_kernel
from repro.core.params import SearchParams
from repro.errors import SearchError


@pytest.fixture(scope="module")
def params():
    return SearchParams(k=5, l_n=32, n_threads=32)


class TestEquivalence:
    def test_same_ids_and_distances(self, small_graph, small_points,
                                    small_queries, params):
        batched = ganns_search(small_graph, small_points,
                               small_queries[:12], params)
        for row in range(12):
            single = ganns_search_kernel(small_graph, small_points,
                                         small_queries[row], params)
            assert np.array_equal(single.ids[0], batched.ids[row]), row
            assert np.allclose(single.dists[0], batched.dists[row],
                               rtol=1e-6, atol=1e-9)

    def test_same_iteration_counts(self, small_graph, small_points,
                                   small_queries, params):
        batched = ganns_search(small_graph, small_points,
                               small_queries[:8], params)
        for row in range(8):
            single = ganns_search_kernel(small_graph, small_points,
                                         small_queries[row], params)
            assert single.iterations[0] == batched.iterations[row]

    def test_same_phase_charges(self, small_graph, small_points,
                                small_queries, params):
        """Cycle accounting must be implementation-independent: the same
        traversal yields the same per-phase charges."""
        batched = ganns_search(small_graph, small_points,
                               small_queries[:4], params)
        for row in range(4):
            single = ganns_search_kernel(small_graph, small_points,
                                         small_queries[row], params)
            for phase in single.tracker.phase_names:
                assert single.tracker.total_cycles(phase) == pytest.approx(
                    batched.tracker.lane_cycles(phase)[row]), phase

    def test_with_explore_budget(self, small_graph, small_points,
                                 small_queries):
        params = SearchParams(k=5, l_n=32, e=10, n_threads=32)
        batched = ganns_search(small_graph, small_points,
                               small_queries[:6], params)
        for row in range(6):
            single = ganns_search_kernel(small_graph, small_points,
                                         small_queries[row], params)
            assert np.array_equal(single.ids[0], batched.ids[row])

    def test_sub_warp_threads(self, small_graph, small_points,
                              small_queries):
        params = SearchParams(k=5, l_n=32, n_threads=8)
        single = ganns_search_kernel(small_graph, small_points,
                                     small_queries[0], params)
        batched = ganns_search(small_graph, small_points,
                               small_queries[:1], params)
        assert np.array_equal(single.ids[0], batched.ids[0])

    def test_cosine_equivalence(self, cosine_graph, cosine_points):
        params = SearchParams(k=3, l_n=32, n_threads=32)
        queries = cosine_points[100:105]
        batched = ganns_search(cosine_graph, cosine_points, queries, params)
        for row in range(5):
            single = ganns_search_kernel(cosine_graph, cosine_points,
                                         queries[row], params)
            assert np.array_equal(single.ids[0], batched.ids[row])


class TestKernelValidation:
    def test_rejects_non_pow2_threads(self, small_graph, small_points,
                                      small_queries):
        with pytest.raises(SearchError, match="power-of-two"):
            ganns_search_kernel(small_graph, small_points, small_queries[0],
                                SearchParams(k=5, l_n=32, n_threads=12))

    def test_rejects_pool_smaller_than_buffer(self, small_points,
                                              small_queries):
        from repro.baselines.nsw_cpu import build_nsw_cpu
        wide = build_nsw_cpu(small_points[:100], d_min=8, d_max=64).graph
        with pytest.raises(SearchError, match="merge network"):
            ganns_search_kernel(wide, small_points[:100], small_queries[0],
                                SearchParams(k=5, l_n=32))

    def test_rejects_bad_entry(self, small_graph, small_points,
                               small_queries):
        with pytest.raises(SearchError, match="entry"):
            ganns_search_kernel(small_graph, small_points, small_queries[0],
                                SearchParams(k=5, l_n=32), entry=-1)

    def test_rejects_dim_mismatch(self, small_graph, small_points):
        with pytest.raises(SearchError, match="dimensionality"):
            ganns_search_kernel(small_graph, small_points, np.zeros(3),
                                SearchParams(k=5, l_n=32))
