"""Golden-file determinism for the mutation workload.

``docs/mutable_index.md`` claims the whole mutation lifecycle — WAL,
streaming inserts, tombstone deletes, crash-interrupted compactions,
checkpoints and recovery — is byte-deterministic.  This pins that
claim against a committed artifact: a frozen chaos-mutation scenario
must serialize to a :class:`MutationReport` *and* a span trace
byte-identical to ``tests/data/mutate_trace_golden.json.gz`` across
runs, processes and releases.  Regenerate consciously with:

    PYTHONPATH=src python scripts/regen_golden.py --mutate-trace

(the script packs with ``gzip`` ``mtime=0`` so the archive bytes are
reproducible; say so in the commit message when you regenerate).
"""

import base64
import gzip
import hashlib
import json
import os

from repro.faults import named_fault_plan
from repro.mutable import run_mutation_sim
from repro.observability import MetricsRegistry, SpanTracer

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "mutate_trace_golden.json.gz")

#: The frozen scenario.  Never change these values without regenerating
#: the golden file (and saying so in the commit message).
N_POINTS = 200
N_DIMS = 16
N_OPS = 24
SEED = 0
BATCH = 8
K = 5
L_N = 32
COMPACT_EVERY = 6
CHECKPOINT_EVERY = 9
FAULT_PLAN = "compaction-crash"
SEED_FAULTS = 0


def compute_golden_mutation() -> bytes:
    """Run the frozen scenario from scratch; returns the payload bytes.

    The payload wraps the mutation report and the span trace in one
    JSON document so a drift in either fails the same golden.
    """
    plan = named_fault_plan(FAULT_PLAN, horizon_seconds=float(N_OPS + 1),
                            seed=SEED_FAULTS)
    tracer = SpanTracer()
    metrics = MetricsRegistry()
    report = run_mutation_sim(
        n_points=N_POINTS, n_dims=N_DIMS, n_ops=N_OPS, seed=SEED,
        batch_size=BATCH, k=K, l_n=L_N, compact_every=COMPACT_EVERY,
        checkpoint_every=CHECKPOINT_EVERY, fault_plan=plan,
        tracer=tracer, metrics=metrics)
    tracer.finish()
    tracer.validate()
    report.verify_against_metrics()
    doc = {
        "format": "mutate-golden-v1",
        "report_digest": report.digest(),
        # Report bytes embed raw array payloads; base64 keeps the
        # wrapper valid JSON.
        "report": base64.b64encode(report.to_bytes()).decode("ascii"),
        "trace": tracer.to_json_bytes().decode("utf-8"),
    }
    return json.dumps(doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def write_golden(payload: bytes) -> None:
    """Write the golden archive reproducibly (fixed gzip mtime)."""
    with open(GOLDEN_PATH, "wb") as handle:
        with gzip.GzipFile(fileobj=handle, mode="wb", mtime=0) as gz:
            gz.write(payload)


class TestMutateTraceGolden:
    def test_golden_file_is_committed(self):
        assert os.path.exists(GOLDEN_PATH), (
            f"golden mutation trace missing at {GOLDEN_PATH}; "
            f"regenerate with PYTHONPATH=src python "
            f"scripts/regen_golden.py --mutate-trace"
        )

    def test_mutation_run_matches_golden_byte_for_byte(self):
        payload = compute_golden_mutation()
        with gzip.open(GOLDEN_PATH, "rb") as gz:
            golden = gz.read()
        assert payload == golden, (
            "mutation report/trace bytes drifted from the committed "
            "golden; if the change is intentional, regenerate with "
            "PYTHONPATH=src python scripts/regen_golden.py "
            "--mutate-trace"
        )

    def test_golden_is_a_valid_well_formed_artifact(self):
        with gzip.open(GOLDEN_PATH, "rb") as gz:
            doc = json.loads(gz.read())
        assert doc["format"] == "mutate-golden-v1"
        report = base64.b64decode(doc["report"])
        assert report.startswith(b"mutation-report-v1\n")
        assert doc["report_digest"] == hashlib.sha256(report).hexdigest()
        tracer = SpanTracer.from_json_bytes(doc["trace"].encode("utf-8"))
        tracer.validate()
        assert tracer.find("mutate.insert")
        assert tracer.find("compaction.pass")
        # The frozen chaos recipe must actually exercise a crash.
        assert b"crashed" in report
        assert tracer.find("recovery.replay")
