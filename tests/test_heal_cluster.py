"""Engine-level self-healing: PARTIAL -> rebuild -> verify -> healthy.

Drives :class:`repro.cluster.engine.ClusterEngine` with targeted
worker-loss plans and asserts the full detect -> rebuild -> catch-up
-> verify -> re-admit story: a single-replica shard degrades to
``PARTIAL`` while its slot is down and returns to ``SERVED`` after
re-admission, healed answers are byte-equal to the offline per-shard
merge, heal metrics and spans reconcile with zero drift, and the
whole thing replays byte-identically.
"""

import math

import numpy as np
import pytest

from repro.cluster import ClusterEngine, ClusterStatus, merge_topk
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.faults.plan import FAULT_WORKER_LOSS, FaultEvent, FaultPlan
from repro.heal import HealPolicy
from repro.observability import SpanTracer
from repro.serve import synthetic_trace

N_POINTS = 300
N_DIMS = 16
PARAMS = SearchParams(k=5, l_n=32)
DEATH_SECONDS = 0.002


def _corpus():
    points = gaussian_mixture(N_POINTS, N_DIMS, n_clusters=4,
                              cluster_std=0.4, seed=21)
    pool = gaussian_mixture(40, N_DIMS, n_clusters=4,
                            cluster_std=0.4, seed=22)
    return points, pool


def _loss_plan(slot, at=DEATH_SECONDS, seed=0):
    return FaultPlan(events=[FaultEvent(
        kind=FAULT_WORKER_LOSS, at_seconds=at, magnitude=1.0,
        target=slot)], seed=seed)


def _trace(pool, n_requests=150, seed=1):
    return synthetic_trace(pool, n_requests, mean_qps=20_000.0,
                           queries_per_request=1, seed=seed)


def _engine(points, plan=None, heal=None, n_shards=3, n_replicas=1,
            **kwargs):
    return ClusterEngine(points, n_shards=n_shards,
                         n_replicas=n_replicas, params=PARAMS,
                         faults=plan, heal=heal, **kwargs)


def _reference(engine, pool):
    shard_ids, shard_dists = [], []
    for shard in range(engine.n_shards):
        result = ganns_search(engine.shard_graphs[shard],
                              engine.shard_points[shard], pool,
                              PARAMS)
        shard_ids.append(engine.shard_map.to_global(shard, result.ids))
        shard_dists.append(result.dists)
    return merge_topk(PARAMS.k, shard_ids, shard_dists)


class TestHealLifecycle:
    def test_partial_returns_to_served_after_readmission(self):
        points, pool = _corpus()
        trace = _trace(pool)
        heal = HealPolicy()
        engine = _engine(points, plan=_loss_plan(1), heal=heal)
        report = engine.replay(trace)
        assert report.heal_enabled
        assert report.n_repairs == 1
        rec = report.repairs[0]
        assert rec.healed
        admitted = rec.admitted_seconds
        # The trace outlives the repair, so the tail is healthy again.
        assert trace[-1].arrival_seconds > admitted
        statuses = [(req.arrival_seconds, o.status)
                    for req, o in zip(trace, report.outcomes)]
        during = [s for t, s in statuses
                  if DEATH_SECONDS < t <= admitted]
        after = [s for t, s in statuses if t > admitted]
        assert ClusterStatus.PARTIAL in during, (
            "a single-replica shard death never degraded service — "
            "the loss window missed the trace")
        assert after and all(s == ClusterStatus.SERVED for s in after)

    def test_without_heal_the_shard_stays_partial_forever(self):
        points, pool = _corpus()
        trace = _trace(pool)
        engine = _engine(points, plan=_loss_plan(1), heal=None)
        report = engine.replay(trace)
        assert not report.heal_enabled
        assert report.n_repairs == 0
        tail = [o.status for o in report.outcomes
                if o.completion_seconds > 0.004]
        assert tail and all(s == ClusterStatus.PARTIAL for s in tail)

    def test_healed_answers_match_offline_merge(self):
        points, pool = _corpus()
        trace = _trace(pool)
        engine = _engine(points, plan=_loss_plan(1), heal=HealPolicy())
        report = engine.replay(trace)
        ref_ids, ref_dists = _reference(engine, pool)
        pool_row = {pool[i].tobytes(): i for i in range(len(pool))}
        checked = 0
        for pos, outcome in enumerate(report.outcomes):
            if not outcome.complete or outcome.degraded_tier != 0:
                continue
            rows = [pool_row[q.tobytes()]
                    for q in trace[pos].queries]
            assert np.array_equal(outcome.ids, ref_ids[rows])
            assert np.array_equal(outcome.dists, ref_dists[rows])
            checked += 1
        assert checked > 0

    def test_quarantined_rebuild_is_never_admitted(self):
        points, pool = _corpus()
        trace = _trace(pool)
        heal = HealPolicy(corruption_probability=0.8,
                          max_rebuild_attempts=2)
        engine = _engine(points, plan=_loss_plan(1, seed=3), heal=heal)
        report = engine.replay(trace)
        rec = report.repairs[0]
        for attempt in rec.attempts[:-1]:
            assert not attempt.digest_matched
        if rec.healed:
            assert rec.attempts[-1].digest_matched
        else:
            assert math.isinf(rec.admitted_seconds)
            tail = [o.status for o in report.outcomes
                    if o.completion_seconds > rec.attempts[-1].end_seconds]
            assert all(s == ClusterStatus.PARTIAL for s in tail)

    def test_sibling_replica_carries_the_shard_while_healing(self):
        points, pool = _corpus()
        trace = _trace(pool)
        engine = _engine(points, plan=_loss_plan(2), heal=HealPolicy(),
                         n_shards=3, n_replicas=2)
        report = engine.replay(trace)
        assert report.n_repairs == 1
        assert all(o.status == ClusterStatus.SERVED
                   for o in report.outcomes)
        assert report.n_failovers > 0


class TestHealAccounting:
    def test_metrics_and_spans_reconcile(self):
        points, pool = _corpus()
        trace = _trace(pool)
        tracer = SpanTracer()
        engine = _engine(points, plan=_loss_plan(1),
                         heal=HealPolicy())
        report = engine.replay(trace, tracer=tracer)
        tracer.finish()
        tracer.validate()
        report.verify_against_metrics()
        names = {span.name for span in tracer.spans}
        assert "heal.repair" in names
        assert "heal.transfer" in names
        assert "heal.verify" in names

    def test_heal_replay_is_byte_deterministic(self):
        points, pool = _corpus()
        trace = _trace(pool)
        heal = HealPolicy(corruption_probability=0.5,
                          max_rebuild_attempts=3)
        engine = _engine(points, plan=_loss_plan(1, seed=7), heal=heal)
        first = engine.replay(trace)
        second = engine.replay(trace)
        assert first.to_bytes() == second.to_bytes()
        assert first.digest() == second.digest()

    def test_heal_with_no_losses_reports_zero_repairs(self):
        points, pool = _corpus()
        trace = _trace(pool)
        engine = _engine(points, plan=None, heal=HealPolicy())
        report = engine.replay(trace)
        assert report.heal_enabled
        assert report.n_repairs == 0
        assert report.max_mttr_seconds == 0.0
        report.verify_against_metrics()

    def test_heal_section_only_encodes_when_enabled(self):
        points, pool = _corpus()
        trace = _trace(pool)
        on = _engine(points, plan=None,
                     heal=HealPolicy()).replay(trace)
        off = _engine(points, plan=None, heal=None).replay(trace)
        assert b"\nheal " in on.to_bytes()
        assert b"\nheal " not in off.to_bytes()
        # Outcomes themselves are untouched by arming heal.
        for a, b in zip(on.outcomes, off.outcomes):
            assert a.status == b.status
            assert a.completion_seconds == b.completion_seconds

    def test_mttr_bound_accounting(self):
        points, pool = _corpus()
        trace = _trace(pool)
        engine = _engine(points, plan=_loss_plan(1),
                         heal=HealPolicy())
        report = engine.replay(trace)
        assert report.unhealed_within(report.mttr_bound_seconds) == []
        # An impossible bound flags every repair.
        assert len(report.unhealed_within(1e-12)) == report.n_repairs


class TestSnapshotServing:
    def test_repair_store_charges_wal_catchup(self):
        from repro.mutable import run_mutation_sim
        from repro.mutable.recovery import recover

        mreport = run_mutation_sim(n_points=140, n_dims=8, n_ops=14,
                                   seed=5, checkpoint_every=6)
        store = mreport.store
        handle = recover(store).snapshot()
        rng = np.random.default_rng(6)
        pool = rng.standard_normal(
            (24, handle.points.shape[1])).astype(handle.points.dtype)
        trace = _trace(pool, n_requests=100, seed=2)
        engine = ClusterEngine.from_snapshot(
            handle, 2, 1, params=PARAMS, faults=_loss_plan(1),
            heal=HealPolicy(), repair_store=store)
        report = engine.replay(trace)
        assert report.n_repairs == 1
        rec = report.repairs[0]
        assert rec.healed
        assert rec.wal_records == len(store.surviving_records())
        from repro.heal import StoreShardSource, shard_payload_bytes
        source = StoreShardSource(store)
        assert rec.attempts[0].catchup_seconds == \
            source.catchup_seconds
        # Each shard ships its own serving state, not the whole store.
        assert rec.snapshot_bytes == shard_payload_bytes(
            engine.shard_graphs[rec.shard],
            engine.shard_points[rec.shard])
        # Tombstoned slot ids never surface through the mapping.
        live = set(handle.live_ids().tolist())
        for outcome in report.outcomes:
            if not outcome.complete:
                continue
            external = engine.map_to_external(outcome.ids)
            served = external[external >= 0]
            assert set(served.tolist()) <= live
        report.verify_against_metrics()
