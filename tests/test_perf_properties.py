"""Hypothesis property test: fast backend == reference, always.

One composite strategy draws a whole randomised workload — dataset
seed and size, metric, compute dtype, pool shape, entry scheme, lazy
check — and the single property is the backend contract: identical ids,
iterations and per-phase cycle charges, distances within dtype
tolerance.  Well-separated Gaussian data (not raw hypothesis arrays)
keeps the workloads representative of what the kernels actually see.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.perf.backend import FAST, REFERENCE

ATOL = {np.dtype(np.float64): 1e-10, np.dtype(np.float32): 1e-4}


@st.composite
def backend_workload(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=40, max_value=160))
    dims = draw(st.sampled_from([4, 8, 16]))
    n_queries = draw(st.integers(min_value=1, max_value=12))
    metric = draw(st.sampled_from(["euclidean", "cosine", "ip"]))
    dtype = draw(st.sampled_from([np.float64, np.float32]))
    l_n = draw(st.sampled_from([8, 16, 32]))
    k = draw(st.integers(min_value=1, max_value=min(l_n, 8)))
    e = draw(st.one_of(st.none(),
                       st.integers(min_value=1, max_value=l_n)))
    lazy_check = draw(st.booleans())
    per_query_entries = draw(st.booleans())

    points = gaussian_mixture(n, dims, n_clusters=4, cluster_std=0.3,
                              intrinsic_dim=min(4, dims), seed=seed)
    queries = gaussian_mixture(n_queries, dims, n_clusters=4,
                               cluster_std=0.3,
                               intrinsic_dim=min(4, dims), seed=seed + 1)
    if per_query_entries:
        entry = draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                              min_size=n_queries, max_size=n_queries))
        entry = np.asarray(entry, dtype=np.int64)
    else:
        entry = draw(st.integers(min_value=0, max_value=n - 1))
    params = SearchParams(k=k, l_n=l_n, e=e)
    return points, queries, metric, dtype, params, entry, lazy_check


class TestBackendProperty:
    @given(backend_workload())
    @settings(max_examples=30, deadline=None)
    def test_fast_equals_reference(self, workload):
        points, queries, metric, dtype, params, entry, lazy = workload
        graph = build_nsw_cpu(points, d_min=4, d_max=8).graph
        graph.metric_name = metric
        ref = ganns_search(graph, points, queries,
                           params.with_overrides(backend=REFERENCE),
                           entry=entry, lazy_check=lazy, dtype=dtype)
        fast = ganns_search(graph, points, queries,
                            params.with_overrides(backend=FAST),
                            entry=entry, lazy_check=lazy, dtype=dtype)
        assert ref.ids.tobytes() == fast.ids.tobytes()
        assert np.array_equal(ref.iterations, fast.iterations)
        assert ref.n_distance_computations == \
            fast.n_distance_computations
        assert ref.dists.dtype == fast.dists.dtype == np.dtype(dtype)
        np.testing.assert_allclose(ref.dists, fast.dists,
                                   atol=ATOL[np.dtype(dtype)], rtol=0)
        assert ref.tracker.phase_names == fast.tracker.phase_names
        for phase in ref.tracker.phase_names:
            assert np.array_equal(ref.tracker.lane_cycles(phase),
                                  fast.tracker.lane_cycles(phase))
