"""Trace ↔ report reconciliation at scale (2,000-request replay).

The claim under test: the serialized span trace alone is enough to
re-derive the ServeReport's headline numbers *exactly* — per-request
span durations re-aggregate to the same p50/p95/p99 bits, the per-tier
served counts match, and the queue/compute split of every served
request reproduces its outcome record.  If the trace and the report
ever disagree, one of them is lying about the replay.
"""

import numpy as np
import pytest

from repro.core.params import SearchParams
from repro.faults import (
    AdmissionGovernor,
    BreakerPolicy,
    RetryPolicy,
    named_fault_plan,
)
from repro.observability import MetricsRegistry, SpanTracer
from repro.serve import BatchPolicy, ResultCache, ServeEngine, synthetic_trace
from repro.serve.report import _percentile
from repro.serve.request import RequestStatus

N_REQUESTS = 2000
MEAN_QPS = 150_000.0
PARAMS = SearchParams(k=10, l_n=32)


@pytest.fixture(scope="module")
def replayed(small_graph, small_points):
    """One large chaos replay plus its round-tripped trace."""
    from repro.datasets.synthetic import gaussian_mixture
    pool = gaussian_mixture(800, 24, n_clusters=8, cluster_std=0.3,
                            intrinsic_dim=8, seed=19)
    plan = named_fault_plan(
        "aggressive", horizon_seconds=2.0 * N_REQUESTS / MEAN_QPS,
        seed=5)
    engine = ServeEngine(
        small_graph, small_points, PARAMS,
        policy=BatchPolicy(max_batch=128, max_wait_seconds=5e-4,
                           max_queue=2048),
        cache=ResultCache(capacity=1024),
        faults=plan,
        retry=RetryPolicy(max_retries=2, base_seconds=2e-4,
                          cap_seconds=2e-3),
        breaker=BreakerPolicy(failure_threshold=3,
                              cooldown_seconds=2e-3),
        governor=AdmissionGovernor.default_for(PARAMS),
        default_deadline_seconds=20e-3)
    trace = synthetic_trace(pool, N_REQUESTS, mean_qps=MEAN_QPS,
                            repeat_fraction=0.3, seed=23)
    tracer = SpanTracer()
    report = engine.replay(trace, tracer=tracer,
                           metrics=MetricsRegistry())
    tracer.finish()
    # Everything below reads the *serialized* trace, as an external
    # analysis tool would.
    parsed = SpanTracer.from_json_bytes(tracer.to_json_bytes())
    return report, parsed


def served_request_spans(tracer):
    return [s for s in tracer.find("request")
            if s.attributes["status"] in ("served", "cache_hit")]


class TestLatencyReconciliation:
    def test_span_durations_reaggregate_to_exact_percentiles(
            self, replayed):
        report, tracer = replayed
        durations = np.array(
            [s.duration_seconds for s in served_request_spans(tracer)],
            dtype=np.float64)
        assert len(durations) == report.n_served > 0
        assert _percentile(durations, 50) == report.p50_latency
        assert _percentile(durations, 95) == report.p95_latency
        assert _percentile(durations, 99) == report.p99_latency
        assert float(durations.mean()) == report.mean_latency

    def test_queue_compute_split_matches_outcomes(self, replayed):
        report, tracer = replayed
        by_id = {o.request_id: o for o in report.outcomes}
        checked = 0
        for span in tracer.find("request"):
            outcome = by_id[span.attributes["request_id"]]
            if outcome.status is not RequestStatus.SERVED:
                continue
            children = {c.name: c
                        for c in tracer.children_of(span.span_id)}
            queue = children["request.queue"]
            compute = children["request.compute"]
            assert queue.duration_seconds == outcome.queue_seconds
            assert compute.duration_seconds == outcome.compute_seconds
            assert span.duration_seconds == outcome.latency_seconds
            checked += 1
        assert checked == sum(
            1 for o in report.outcomes
            if o.status is RequestStatus.SERVED)


class TestCountReconciliation:
    def test_per_tier_counts_match(self, replayed):
        report, tracer = replayed
        tiers = {}
        for span in served_request_spans(tracer):
            tier = span.attributes["tier"]
            tiers[tier] = tiers.get(tier, 0) + 1
        assert tiers == report.per_tier_counts()

    def test_status_counts_match(self, replayed):
        report, tracer = replayed
        statuses = {}
        for span in tracer.find("request"):
            status = span.attributes["status"]
            statuses[status] = statuses.get(status, 0) + 1
        assert sum(statuses.values()) == report.n_requests
        assert statuses.get("rejected", 0) == report.n_rejected
        assert statuses.get("failed", 0) == report.n_failed
        assert statuses.get("timed_out", 0) == report.n_timed_out
        assert statuses.get("cache_hit", 0) == report.n_cache_hits

    def test_batch_spans_match_dispatch_ledger(self, replayed):
        report, tracer = replayed
        served_or_failed = [
            s for s in tracer.find("batch")
            if s.attributes["outcome"] in ("served", "failed")]
        # Every dispatched batch (served or permanently failed) was
        # recorded in the report's size/trigger ledgers.
        assert len(served_or_failed) == report.n_batches
        triggers = {}
        for span in served_or_failed:
            trig = span.attributes["trigger"]
            triggers[trig] = triggers.get(trig, 0) + 1
        assert triggers == report.trigger_counts()

    def test_chaos_was_real(self, replayed):
        report, _ = replayed
        assert report.fault_report.n_injected > 0
        assert report.n_served > 0
        report.verify_against_metrics()
