"""Tests for the simulated device specification and occupancy rules."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.device import DeviceSpec, QUADRO_P5000, quadro_p5000


class TestDeviceSpecValidation:
    def test_preset_is_valid(self):
        assert QUADRO_P5000.total_cores == 2560
        assert QUADRO_P5000.num_sms == 20
        assert QUADRO_P5000.warp_size == 32

    def test_preset_function_returns_same_spec(self):
        assert quadro_p5000() is QUADRO_P5000

    def test_clock_hz(self):
        assert QUADRO_P5000.clock_hz == pytest.approx(1.607e9)

    @pytest.mark.parametrize("field", [
        "num_sms", "cores_per_sm", "warp_size", "clock_ghz",
        "max_threads_per_sm", "shared_mem_per_sm_bytes",
        "pcie_bandwidth_gbps",
    ])
    def test_rejects_non_positive_fields(self, field):
        with pytest.raises(ConfigurationError, match=field):
            QUADRO_P5000.with_overrides(**{field: 0})

    def test_rejects_negative_pcie_latency(self):
        with pytest.raises(ConfigurationError, match="pcie_latency"):
            QUADRO_P5000.with_overrides(pcie_latency_us=-1.0)

    def test_rejects_non_pow2_warp(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            QUADRO_P5000.with_overrides(warp_size=24)

    def test_rejects_block_not_multiple_of_warp(self):
        with pytest.raises(ConfigurationError, match="multiple"):
            QUADRO_P5000.with_overrides(max_threads_per_block=100)

    def test_rejects_block_smem_above_sm_smem(self):
        with pytest.raises(ConfigurationError, match="cannot exceed"):
            QUADRO_P5000.with_overrides(
                shared_mem_per_block_bytes=QUADRO_P5000.shared_mem_per_sm_bytes
                + 1)

    def test_with_overrides_returns_new_spec(self):
        other = QUADRO_P5000.with_overrides(num_sms=10)
        assert other.num_sms == 10
        assert QUADRO_P5000.num_sms == 20


class TestOccupancy:
    def test_thread_limited(self):
        # 2048 threads/SM at 128 threads/block -> 16 blocks/SM, 20 SMs.
        assert QUADRO_P5000.concurrent_blocks(128) == 16 * 20

    def test_slot_limited(self):
        # 32 threads/block would allow 64 by threads but slots cap at 32.
        assert QUADRO_P5000.concurrent_blocks(32) == 32 * 20

    def test_shared_memory_limited(self):
        blocks = QUADRO_P5000.concurrent_blocks(32,
                                                shared_mem_per_block=24 * 1024)
        # 96 KB / 24 KB = 4 blocks per SM.
        assert blocks == 4 * 20

    def test_zero_shared_memory_ignores_smem_bound(self):
        assert (QUADRO_P5000.concurrent_blocks(64, 0)
                == QUADRO_P5000.concurrent_blocks(64))

    def test_rejects_oversized_block(self):
        with pytest.raises(ConfigurationError, match="exceeds device limit"):
            QUADRO_P5000.concurrent_blocks(2048)

    def test_rejects_oversized_shared_memory(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            QUADRO_P5000.concurrent_blocks(32, 64 * 1024)

    def test_rejects_non_positive_threads(self):
        with pytest.raises(ConfigurationError, match="positive"):
            QUADRO_P5000.concurrent_blocks(0)

    def test_at_least_one_block_per_sm(self):
        # A maximal block still runs, one per SM.
        spec = QUADRO_P5000
        assert spec.concurrent_blocks(1024) >= spec.num_sms
