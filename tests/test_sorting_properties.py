"""Deeper property tests on the bitonic networks.

The networks are the load-bearing data-parallel primitives of GANNS
phases (5)/(6) and GGraphCon's merge step; these properties pin their
semantics beyond simple sortedness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.sorting import (
    bitonic_merge_network,
    bitonic_sort_network,
    merge_sorted_topm,
    next_pow2,
    pad_pow2,
)


def _random_records(rng, n):
    dists = rng.normal(size=n)
    ids = rng.permutation(n).astype(np.float64)
    return dists, ids


class TestSortProperties:
    @given(st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_multiset_preserved(self, log_n, seed):
        """Sorting permutes records; it never invents or loses one."""
        n = 1 << log_n
        rng = np.random.default_rng(seed)
        dists, ids = _random_records(rng, n)
        out_d, out_i = bitonic_sort_network(dists, ids)
        assert sorted(out_d.tolist()) == sorted(dists.tolist())
        assert sorted(out_i.tolist()) == sorted(ids.tolist())

    @given(st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_records_stay_paired(self, log_n, seed):
        """Each (dist, id) pair travels through the network intact."""
        n = 1 << log_n
        rng = np.random.default_rng(seed)
        dists, ids = _random_records(rng, n)
        pairs_in = set(zip(dists.tolist(), ids.tolist()))
        out_d, out_i = bitonic_sort_network(dists, ids)
        pairs_out = set(zip(out_d.tolist(), out_i.tolist()))
        assert pairs_in == pairs_out

    @given(st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_idempotent_on_sorted_input(self, log_n, seed):
        n = 1 << log_n
        rng = np.random.default_rng(seed)
        dists = np.sort(rng.normal(size=n))
        (once,) = bitonic_sort_network(dists)
        (twice,) = bitonic_sort_network(once)
        assert np.array_equal(once, twice)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_lexsort_on_duplicate_keys(self, seed):
        """With duplicate distances, the (dist, id) lexicographic order
        is the library-wide contract; the network must produce it."""
        rng = np.random.default_rng(seed)
        dists = rng.integers(0, 4, size=32).astype(np.float64)
        ids = rng.permutation(32).astype(np.float64)
        net_d, net_i = bitonic_sort_network(dists, ids)
        order = np.lexsort((ids, dists))
        assert np.array_equal(net_d, dists[order])
        assert np.array_equal(net_i, ids[order])


class TestMergeProperties:
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_sort_of_concatenation(self, log_half, seed):
        half = 1 << log_half
        rng = np.random.default_rng(seed)
        a = np.sort(rng.normal(size=half))
        b = np.sort(rng.normal(size=half))
        (merged,) = bitonic_merge_network(np.concatenate([a, b]))
        assert np.array_equal(merged, np.sort(np.concatenate([a, b])))

    @given(st.integers(min_value=1, max_value=48),
           st.integers(min_value=1, max_value=48),
           st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_topm_is_exact_selection(self, la, lb, m, seed):
        rng = np.random.default_rng(seed)
        a = np.sort(rng.normal(size=la))
        b = np.sort(rng.normal(size=lb))
        m = min(m, la + lb)
        (kept,) = merge_sorted_topm([a], [b], m)
        expected = np.sort(np.concatenate([a, b]))[:m]
        assert np.array_equal(kept, expected)

    def test_pad_then_merge_matches_unpadded_selection(self):
        """The GANNS phase-6 path: pad T with +inf to the pool width,
        merge, truncate — identical to exact top-l_n selection."""
        rng = np.random.default_rng(1)
        pool = np.sort(rng.normal(size=64))
        buffer = np.sort(rng.normal(size=20))
        padded, = pad_pow2(buffer)
        padded = np.concatenate([padded,
                                 np.full(64 - len(padded), np.inf)])
        merged, = bitonic_merge_network(np.concatenate([pool, padded]))
        expected = np.sort(np.concatenate([pool, buffer]))[:64]
        assert np.array_equal(merged[:64], expected)


class TestPadProperties:
    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_pad_reaches_power_of_two(self, n):
        keys = np.zeros(n)
        (padded,) = pad_pow2(keys)
        assert len(padded) == next_pow2(n)
        assert np.isinf(padded[n:]).all()


class TestNumpyEquivalenceAcrossDtypesAndShapes:
    """The network must equal ``np.sort`` for every buffer a kernel
    would actually hold: any dtype, any row batch, any non-power-of-two
    length after padding."""

    @given(st.sampled_from(["float64", "float32", "int64", "int32"]),
           st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_sort_matches_np_sort_per_dtype(self, dtype, log_n, seed):
        n = 1 << log_n
        rng = np.random.default_rng(seed)
        if dtype.startswith("float"):
            keys = rng.normal(size=n).astype(dtype)
        else:
            keys = rng.integers(-1000, 1000, size=n).astype(dtype)
        (out,) = bitonic_sort_network(keys)
        assert out.dtype == np.dtype(dtype)
        assert np.array_equal(out, np.sort(keys))

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_sort_matches_np_sort_on_random_row_batches(
            self, log_n, n_rows, seed):
        """Batched rows (one per simulated thread block) sort exactly
        like a per-row np.sort, whatever the (rows, length) shape."""
        n = 1 << log_n
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(n_rows, n))
        (out,) = bitonic_sort_network(keys)
        assert np.array_equal(out, np.sort(keys, axis=1))

    @given(st.integers(min_value=1, max_value=70),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_non_pow2_lengths_via_padding(self, n, seed):
        """Any length: pad with +inf as the GPU buffer would be, sort,
        truncate — identical to np.sort of the raw values."""
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=n)
        padded, = pad_pow2(keys)
        (out,) = bitonic_sort_network(padded)
        assert np.array_equal(out[:n], np.sort(keys))
        assert np.isinf(out[n:]).all()

    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_merge_non_pow2_runs_via_padding(self, la, lb, seed):
        """Two sorted runs of arbitrary (non-pow2) lengths, each padded
        to a common power of two, bitonic-merge to np.sort of the
        concatenation."""
        rng = np.random.default_rng(seed)
        a = np.sort(rng.normal(size=la))
        b = np.sort(rng.normal(size=lb))
        width = next_pow2(max(la, lb))
        a_pad = np.concatenate([a, np.full(width - la, np.inf)])
        b_pad = np.concatenate([b, np.full(width - lb, np.inf)])
        (merged,) = bitonic_merge_network(np.concatenate([a_pad, b_pad]))
        expected = np.sort(np.concatenate([a, b]))
        assert np.array_equal(merged[:la + lb], expected)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_sort_handles_inf_and_duplicate_values(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.choice([0.0, 1.0, np.inf, -np.inf, 2.5], size=16)
        (out,) = bitonic_sort_network(keys)
        assert np.array_equal(out, np.sort(keys))
