"""The public API surface: everything advertised must exist and work."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_exception_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.GraphError, repro.ReproError)
        assert issubclass(repro.SearchError, repro.ReproError)
        assert issubclass(repro.ConstructionError, repro.ReproError)
        assert issubclass(repro.DatasetError, repro.ReproError)
        assert issubclass(repro.DeviceError, repro.ReproError)
        assert issubclass(repro.FaultError, repro.ReproError)
        assert issubclass(repro.KernelTimeoutError, repro.FaultError)
        assert issubclass(repro.MemoryFaultError, repro.FaultError)
        assert issubclass(repro.DeviceMemoryError, repro.FaultError)

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.baselines", "repro.gpusim", "repro.graphs",
        "repro.datasets", "repro.metrics", "repro.bench",
        "repro.extensions", "repro.cli", "repro.serve", "repro.faults",
        "repro.observability", "repro.cluster", "repro.heal",
    ])
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.baselines", "repro.gpusim", "repro.bench",
        "repro.extensions", "repro.serve", "repro.faults",
        "repro.observability", "repro.cluster", "repro.heal",
    ])
    def test_subpackage_alls_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_every_public_module_has_docstring(self):
        import os
        import repro as pkg
        root = os.path.dirname(pkg.__file__)
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, filename),
                                      root)
                module_name = "repro." + rel[:-3].replace(os.sep, ".")
                module_name = module_name.replace(".__init__", "")
                mod = importlib.import_module(module_name)
                assert mod.__doc__, f"{module_name} lacks a docstring"


class TestMinimalEndToEnd:
    """The README quickstart, verbatim-ish, must work."""

    def test_readme_quickstart(self):
        from repro import GannsIndex, BuildParams, load_dataset, \
            recall_at_k

        dataset = load_dataset("sift1m", n_points=800, n_queries=20)
        index = GannsIndex.build(
            dataset.points,
            params=BuildParams(d_min=8, d_max=16, n_blocks=8))
        ids, dists = index.search(dataset.queries, k=10, l_n=64)
        recall = recall_at_k(ids, dataset.ground_truth(10))
        assert recall > 0.6
        report = index.search_report(dataset.queries, k=10, l_n=64)
        assert report.queries_per_second() > 0
