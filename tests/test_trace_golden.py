"""Golden-file determinism for the observability trace format.

The byte-determinism claim of ``docs/observability.md`` is pinned here
against a committed artifact: a frozen chaos-serving scenario (fixed
dataset seeds, fixed fault plan, fixed engine knobs) must serialize to
a span trace *byte-identical* to ``tests/data/trace_golden.json.gz``
across runs, processes and releases.  Any change that moves a single
byte — a reordered span, a different float path, a new attribute —
fails this test and must either be fixed or consciously regenerate the
golden:

    PYTHONPATH=src python scripts/regen_golden.py --trace

(the script rewrites ``tests/data/trace_golden.json.gz`` with
``gzip`` ``mtime=0`` so the archive itself is reproducible; say so in
the commit message when you regenerate).
"""

import gzip
import os

from repro.core.params import SearchParams
from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.datasets.synthetic import gaussian_mixture
from repro.faults import (
    AdmissionGovernor,
    BreakerPolicy,
    RetryPolicy,
    named_fault_plan,
)
from repro.observability import MetricsRegistry, SpanTracer
from repro.serve import BatchPolicy, ResultCache, ServeEngine, synthetic_trace

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "trace_golden.json.gz")

#: The frozen scenario.  Never change these values without regenerating
#: the golden file (and saying so in the commit message).
N_POINTS = 400
N_DIMS = 16
POOL_SIZE = 120
N_REQUESTS = 400
MEAN_QPS = 30_000.0
SEED_POINTS = 42
SEED_POOL = 43
SEED_TRACE = 17
SEED_FAULTS = 29
D_MIN, D_MAX = 8, 16
PARAMS = SearchParams(k=8, l_n=32)


def compute_golden_trace() -> bytes:
    """Run the frozen scenario from scratch; returns the trace bytes."""
    points = gaussian_mixture(N_POINTS, N_DIMS, n_clusters=6,
                              cluster_std=0.3, intrinsic_dim=6,
                              seed=SEED_POINTS)
    pool = gaussian_mixture(POOL_SIZE, N_DIMS, n_clusters=6,
                            cluster_std=0.3, intrinsic_dim=6,
                            seed=SEED_POOL)
    graph = build_nsw_cpu(points, d_min=D_MIN, d_max=D_MAX).graph
    plan = named_fault_plan(
        "aggressive", horizon_seconds=2.0 * N_REQUESTS / MEAN_QPS,
        seed=SEED_FAULTS)
    engine = ServeEngine(
        graph, points, PARAMS,
        policy=BatchPolicy(max_batch=32, max_wait_seconds=5e-4,
                           max_queue=512),
        cache=ResultCache(capacity=256),
        faults=plan,
        retry=RetryPolicy(max_retries=2, base_seconds=2e-4,
                          cap_seconds=2e-3),
        breaker=BreakerPolicy(failure_threshold=3,
                              cooldown_seconds=2e-3),
        governor=AdmissionGovernor.default_for(PARAMS),
        default_deadline_seconds=20e-3)
    trace = synthetic_trace(pool, N_REQUESTS, mean_qps=MEAN_QPS,
                            repeat_fraction=0.3, seed=SEED_TRACE)
    tracer = SpanTracer()
    report = engine.replay(trace, tracer=tracer,
                           metrics=MetricsRegistry())
    tracer.finish()
    tracer.validate()
    report.verify_against_metrics()
    return tracer.to_json_bytes()


def write_golden(payload: bytes) -> None:
    """Write the golden archive reproducibly (fixed gzip mtime)."""
    with open(GOLDEN_PATH, "wb") as handle:
        with gzip.GzipFile(fileobj=handle, mode="wb", mtime=0) as gz:
            gz.write(payload)


class TestTraceGolden:
    def test_golden_file_is_committed(self):
        assert os.path.exists(GOLDEN_PATH), (
            f"golden trace missing at {GOLDEN_PATH}; regenerate with "
            f"PYTHONPATH=src python scripts/regen_golden.py --trace"
        )

    def test_trace_matches_golden_byte_for_byte(self):
        payload = compute_golden_trace()
        with gzip.open(GOLDEN_PATH, "rb") as gz:
            golden = gz.read()
        assert payload == golden, (
            "trace bytes drifted from the committed golden; if the "
            "change is intentional, regenerate with "
            "PYTHONPATH=src python scripts/regen_golden.py --trace"
        )

    def test_golden_is_a_valid_well_formed_trace(self):
        with gzip.open(GOLDEN_PATH, "rb") as gz:
            tracer = SpanTracer.from_json_bytes(gz.read())
        tracer.validate()
        assert tracer.roots()[0].name == "serve.replay"
        assert len(tracer.find("request")) == N_REQUESTS
