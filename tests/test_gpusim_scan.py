"""Tests for prefix sums and the CSR gather/scatter helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.gpusim.scan import (
    blelloch_exclusive_scan,
    csr_offsets_from_sorted_ids,
    exclusive_scan,
    inclusive_scan,
    segment_starts,
)


class TestNumpyScans:
    def test_exclusive_scan_basic(self):
        assert np.array_equal(exclusive_scan(np.array([1, 2, 3])),
                              [0, 1, 3])

    def test_inclusive_scan_basic(self):
        assert np.array_equal(inclusive_scan(np.array([1, 2, 3])),
                              [1, 3, 6])

    def test_exclusive_scan_2d_rows(self):
        values = np.array([[1, 1, 1], [2, 2, 2]])
        out = exclusive_scan(values)
        assert np.array_equal(out, [[0, 1, 2], [0, 2, 4]])


class TestBlellochScan:
    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=0, max_size=130))
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_exclusive_scan(self, values):
        arr = np.asarray(values, dtype=np.float64)
        assert np.allclose(blelloch_exclusive_scan(arr),
                           exclusive_scan(arr))

    def test_non_pow2_length(self):
        arr = np.arange(37, dtype=np.float64)
        assert np.allclose(blelloch_exclusive_scan(arr),
                           exclusive_scan(arr))

    def test_rejects_2d_input(self):
        with pytest.raises(DeviceError, match="1-D"):
            blelloch_exclusive_scan(np.zeros((2, 2)))

    def test_empty(self):
        assert blelloch_exclusive_scan(np.zeros(0)).shape == (0,)


class TestScanProperties:
    """Algebraic properties pinning the scan beyond example equality."""

    @given(st.sampled_from(["float64", "float32", "int64", "int32"]),
           st.integers(min_value=0, max_value=130),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_blelloch_matches_numpy_across_dtypes(self, dtype, n, seed):
        rng = np.random.default_rng(seed)
        if dtype.startswith("float"):
            values = rng.normal(size=n).astype(dtype)
        else:
            values = rng.integers(0, 100, size=n).astype(dtype)
        assert np.allclose(blelloch_exclusive_scan(values),
                           exclusive_scan(values.astype(np.float64)))

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_inclusive_is_exclusive_shifted_by_input(self, values):
        arr = np.asarray(values, dtype=np.float64)
        assert np.allclose(inclusive_scan(arr),
                           exclusive_scan(arr) + arr)

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_last_exclusive_plus_last_equals_total(self, values):
        arr = np.asarray(values, dtype=np.float64)
        out = blelloch_exclusive_scan(arr)
        assert out[0] == 0.0
        assert out[-1] + arr[-1] == pytest.approx(arr.sum())

    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_scan_is_monotone_on_nonnegative_input(self, n, seed):
        rng = np.random.default_rng(seed)
        arr = rng.integers(0, 9, size=n).astype(np.float64)
        out = blelloch_exclusive_scan(arr)
        assert (np.diff(out) >= 0).all()

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_exclusive_scan_rows_independent_any_shape(self, n_rows, n,
                                                       seed):
        """The NumPy fast path scans each row of any (rows, n) batch
        exactly as it scans the row alone."""
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 100, size=(n_rows, n))
        out = exclusive_scan(values)
        for row in range(n_rows):
            assert np.array_equal(out[row], exclusive_scan(values[row]))


class TestSegmentStarts:
    def test_flags_run_starts(self):
        ids = np.array([3, 3, 5, 5, 5, 9])
        assert np.array_equal(segment_starts(ids), [1, 0, 1, 0, 0, 1])

    def test_single_run(self):
        assert np.array_equal(segment_starts(np.array([2, 2, 2])),
                              [1, 0, 0])

    def test_empty(self):
        assert segment_starts(np.zeros(0, dtype=int)).shape == (0,)

    def test_rejects_2d(self):
        with pytest.raises(DeviceError, match="1-D"):
            segment_starts(np.zeros((2, 2), dtype=int))


class TestCsrOffsets:
    def test_offsets_delimit_segments(self):
        ids = np.array([1, 1, 4, 4, 4, 7])
        offsets = csr_offsets_from_sorted_ids(ids)
        assert np.array_equal(offsets, [0, 2, 5, 6])
        # Segment s spans [offsets[s], offsets[s+1]) with one distinct id.
        for s in range(len(offsets) - 1):
            segment = ids[offsets[s]:offsets[s + 1]]
            assert len(np.unique(segment)) == 1

    @given(st.lists(st.integers(min_value=0, max_value=20),
                    min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_segment_lengths_match_counts(self, raw_ids):
        ids = np.sort(np.asarray(raw_ids))
        offsets = csr_offsets_from_sorted_ids(ids)
        lengths = np.diff(offsets)
        _, counts = np.unique(ids, return_counts=True)
        assert np.array_equal(lengths, counts)
        assert offsets[-1] == len(ids)
