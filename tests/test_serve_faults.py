"""Tests for the fault-tolerant serving engine.

Each fault-tolerance mechanism — retries, circuit breaker, deadlines,
graceful degradation — is exercised in isolation with hand-built fault
plans, plus the golden determinism guarantee: the same trace under the
same plan replays byte-for-byte.
"""

import numpy as np
import pytest

from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.faults import (
    AdmissionGovernor,
    BreakerPolicy,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    named_fault_plan,
)
from repro.faults.plan import (
    FAULT_ECC_BITFLIP,
    FAULT_KERNEL_STALL,
    FAULT_KERNEL_TIMEOUT,
    FAULT_MEM_EXHAUSTION,
)
from repro.faults.policy import DEGRADE_BREAKER, DEGRADE_PRESSURE
from repro.serve import (
    BatchPolicy,
    QueryRequest,
    ResultCache,
    ServeEngine,
    synthetic_trace,
)
from repro.serve.request import RequestStatus

PARAMS = SearchParams(k=5, l_n=32)
POLICY = BatchPolicy(max_batch=64, max_wait_seconds=2e-3, max_queue=256)


def _requests(points, arrivals, **kwargs):
    """One single-query request per arrival, queries drawn from points."""
    return [QueryRequest(request_id=i, queries=points[i % 40][None, :],
                         arrival_seconds=t, **kwargs)
            for i, t in enumerate(arrivals)]


def _plan(*events, seed=0):
    return FaultPlan(events, seed=seed)


class TestRetries:
    def test_timeout_then_retry_serves_exact_results(
            self, small_graph, small_points):
        plan = _plan(FaultEvent(kind=FAULT_KERNEL_TIMEOUT,
                                at_seconds=0.0, magnitude=1e-4))
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY, faults=plan,
                             breaker=BreakerPolicy(failure_threshold=10))
        trace = _requests(small_points, [0.0])
        report = engine.replay(trace)

        outcome = report.outcomes[0]
        assert outcome.status is RequestStatus.SERVED
        assert outcome.n_retries == 1
        direct = ganns_search(small_graph, small_points,
                              trace[0].queries, PARAMS)
        assert np.array_equal(outcome.ids, direct.ids)
        assert np.array_equal(outcome.dists, direct.dists)
        fr = report.fault_report
        assert fr.n_injected == 1 and fr.n_fatal == 1
        assert fr.n_retries == 1
        assert fr.retries[0].backoff_seconds > 0

    @pytest.mark.parametrize("kind", [FAULT_ECC_BITFLIP,
                                      FAULT_MEM_EXHAUSTION])
    def test_discarded_attempts_never_leak_results(
            self, small_graph, small_points, kind):
        """ECC/OOM attempts are discarded and re-executed: the served
        answer is byte-identical to a fault-free search."""
        plan = _plan(FaultEvent(kind=kind, at_seconds=0.0))
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY, faults=plan,
                             breaker=BreakerPolicy(failure_threshold=10))
        trace = _requests(small_points, [0.0])
        report = engine.replay(trace)
        outcome = report.outcomes[0]
        assert outcome.status is RequestStatus.SERVED
        direct = ganns_search(small_graph, small_points,
                              trace[0].queries, PARAMS)
        assert np.array_equal(outcome.ids, direct.ids)
        assert report.fault_report.injected_by_kind() == {kind: 1}

    def test_stall_is_survivable_without_retry(self, small_graph,
                                               small_points):
        plan = _plan(FaultEvent(kind=FAULT_KERNEL_STALL, at_seconds=0.0,
                                magnitude=8.0))
        clean = ServeEngine(small_graph, small_points, PARAMS,
                            policy=POLICY)
        faulty = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY, faults=plan)
        trace = _requests(small_points, [0.0])
        clean_report = clean.replay(trace)
        stalled = faulty.replay(_requests(small_points, [0.0]))
        outcome = stalled.outcomes[0]
        assert outcome.status is RequestStatus.SERVED
        assert outcome.n_retries == 0
        assert not stalled.fault_report.injections[0].fatal
        assert outcome.latency_seconds > \
            clean_report.outcomes[0].latency_seconds

    def test_retries_exhausted_fails_the_batch(self, small_graph,
                                               small_points):
        plan = _plan(
            FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=0.0,
                       magnitude=1e-4),
            FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=0.0,
                       magnitude=1e-4))
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY, faults=plan,
                             retry=RetryPolicy(max_retries=1),
                             breaker=BreakerPolicy(failure_threshold=10))
        report = engine.replay(_requests(small_points, [0.0]))
        outcome = report.outcomes[0]
        assert outcome.status is RequestStatus.FAILED
        assert "retries exhausted" in outcome.detail
        assert outcome.ids is None
        assert report.n_failed == 1 and report.n_served == 0


class TestCircuitBreaker:
    def _engine(self, graph, points, plan, cooldown):
        return ServeEngine(
            graph, points, PARAMS,
            policy=BatchPolicy(max_batch=64, max_wait_seconds=1e-4,
                               max_queue=256),
            faults=plan, retry=RetryPolicy(max_retries=0),
            breaker=BreakerPolicy(failure_threshold=2,
                                  cooldown_seconds=cooldown))

    def test_trip_then_fail_fast_then_recover(self, small_graph,
                                              small_points):
        # Two timeouts trip the breaker (threshold 2, no retries); the
        # third batch arrives while open and fails fast without
        # dispatch; the fourth arrives after the cooldown, probes
        # half-open, succeeds, and closes the breaker.
        plan = _plan(
            FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=0.0,
                       magnitude=1e-4),
            FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=0.0,
                       magnitude=1e-4))
        engine = self._engine(small_graph, small_points, plan,
                              cooldown=5e-3)
        trace = _requests(small_points, [0.0, 1e-3, 2e-3, 20e-3])
        report = engine.replay(trace)

        statuses = [o.status for o in report.outcomes]
        assert statuses[0] is RequestStatus.FAILED
        assert statuses[1] is RequestStatus.FAILED
        assert statuses[2] is RequestStatus.FAILED
        assert "circuit breaker open" in report.outcomes[2].detail
        assert statuses[3] is RequestStatus.SERVED

        fr = report.fault_report
        assert fr.fast_failed_requests == 1
        assert fr.n_breaker_trips >= 1
        states = [(t.from_state, t.to_state)
                  for t in fr.breaker_transitions]
        assert ("open", "half_open") in states
        assert ("half_open", "closed") in states

    def test_multi_probe_half_open_reconciles_metrics(
            self, small_graph, small_points):
        # With half_open_probes=2 the first post-cooldown success
        # leaves the breaker half-open; the second closes it.  Both
        # probes surface as faults.breaker.probe_successes and the
        # ledger reconciles with zero drift.
        from repro.observability import MetricsRegistry

        plan = _plan(
            FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=0.0,
                       magnitude=1e-4),
            FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=0.0,
                       magnitude=1e-4))
        engine = ServeEngine(
            small_graph, small_points, PARAMS,
            policy=BatchPolicy(max_batch=64, max_wait_seconds=1e-4,
                               max_queue=256),
            faults=plan, retry=RetryPolicy(max_retries=0),
            breaker=BreakerPolicy(failure_threshold=2,
                                  cooldown_seconds=5e-3,
                                  half_open_probes=2))
        trace = _requests(small_points,
                          [0.0, 1e-3, 20e-3, 40e-3, 60e-3])
        registry = MetricsRegistry()
        report = engine.replay(trace, metrics=registry)
        fr = report.fault_report
        assert fr.probe_successes == 2
        states = [(t.from_state, t.to_state)
                  for t in fr.breaker_transitions]
        assert ("open", "half_open") in states
        assert ("half_open", "closed") in states
        assert registry.value("faults.breaker.probe_successes",
                              default=0.0) == 2
        fr.verify_against_metrics(registry)

    def test_breaker_reports_deterministically(self, small_graph,
                                               small_points):
        plan = _plan(
            FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=0.0,
                       magnitude=1e-4),
            FaultEvent(kind=FAULT_KERNEL_TIMEOUT, at_seconds=0.0,
                       magnitude=1e-4))
        arrivals = [0.0, 1e-3, 2e-3, 20e-3]
        reports = []
        for _ in range(2):
            engine = self._engine(small_graph, small_points, plan,
                                  cooldown=5e-3)
            reports.append(engine.replay(_requests(small_points,
                                                   arrivals)))
        assert reports[0].fault_report.to_bytes() == \
            reports[1].fault_report.to_bytes()


class TestDeadlines:
    def test_expired_in_queue_is_dropped(self, small_graph, small_points):
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY,
                             default_deadline_seconds=1e-3)
        # Solo request: the batch flushes at arrival + max_wait (2 ms),
        # past the 1 ms deadline — dropped undispatched.
        report = engine.replay(_requests(small_points, [0.0]))
        outcome = report.outcomes[0]
        assert outcome.status is RequestStatus.TIMED_OUT
        assert "deadline expired" in outcome.detail
        assert report.n_timed_out == 1
        assert report.fault_report.deadline_dropped_requests == 1
        assert report.n_batches == 0  # nothing reached the device

    def test_per_request_deadline_overrides_default(self, small_graph,
                                                    small_points):
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY,
                             default_deadline_seconds=1e-3)
        generous = _requests(small_points, [0.0], deadline_seconds=1.0)
        report = engine.replay(generous)
        assert report.outcomes[0].status is RequestStatus.SERVED
        assert not report.outcomes[0].deadline_missed

    def test_served_late_is_marked_not_dropped(self, small_graph,
                                               small_points):
        # Deadline lands between the flush instant and completion: the
        # request is worth dispatching but finishes late.
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY,
                             default_deadline_seconds=2.001e-3)
        report = engine.replay(_requests(small_points, [0.0]))
        outcome = report.outcomes[0]
        assert outcome.status is RequestStatus.SERVED
        assert outcome.deadline_missed
        assert report.n_deadline_missed == 1


class TestGracefulDegradation:
    def test_pressure_degrades_and_marks_the_tier(self, small_graph,
                                                  small_points):
        governor = AdmissionGovernor(tiers=((16, 8),),
                                     pressure_thresholds=(0.5,))
        policy = BatchPolicy(max_batch=32, max_wait_seconds=2e-3,
                             max_queue=32)
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=policy, governor=governor)
        # A burst of 32 single-query requests fills the batch: pressure
        # at dispatch is 32/32 = 1.0 >= 0.5 -> tier 1.
        arrivals = [i * 1e-7 for i in range(32)]
        trace = _requests(small_points, arrivals)
        report = engine.replay(trace)

        served = [o for o in report.outcomes if o.served]
        assert len(served) == 32
        assert all(o.degraded_tier == 1 for o in served)
        assert all(o.degraded for o in served)
        assert report.n_degraded == 32
        assert report.per_tier_counts() == {1: 32}
        fr = report.fault_report
        assert fr.n_degraded_batches >= 1
        assert fr.degradations[0].reason == DEGRADE_PRESSURE

        # Degraded means the tier's params, applied honestly: the
        # answers equal a direct search with the shrunken pool.
        tier_params = governor.params_for(1, PARAMS)
        flat = np.concatenate([r.queries for r in trace], axis=0)
        direct = ganns_search(small_graph, small_points, flat,
                              tier_params)
        offset = 0
        for req in trace:
            outcome = report.outcomes[req.request_id]
            n = req.n_queries
            assert np.array_equal(outcome.ids,
                                  direct.ids[offset:offset + n])
            offset += n

    def test_quiet_traffic_stays_at_tier_zero(self, small_graph,
                                              small_points):
        governor = AdmissionGovernor(tiers=((16, 8),),
                                     pressure_thresholds=(0.5,))
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY, governor=governor)
        report = engine.replay(_requests(small_points, [0.0, 10e-3]))
        assert report.n_degraded == 0
        assert all(o.degraded_tier == 0 for o in report.outcomes)

    def test_breaker_impairment_degrades_with_reason(self, small_graph,
                                                     small_points):
        # Trip the breaker, then arrive after cooldown: the half-open
        # probe dispatch runs at the deepest tier (reason "breaker").
        plan = _plan(FaultEvent(kind=FAULT_KERNEL_TIMEOUT,
                                at_seconds=0.0, magnitude=1e-4))
        governor = AdmissionGovernor(tiers=((16, 8),),
                                     pressure_thresholds=(0.99,))
        engine = ServeEngine(
            small_graph, small_points, PARAMS,
            policy=BatchPolicy(max_batch=64, max_wait_seconds=1e-4,
                               max_queue=256),
            faults=plan, retry=RetryPolicy(max_retries=0),
            breaker=BreakerPolicy(failure_threshold=1,
                                  cooldown_seconds=1e-3),
            governor=governor)
        report = engine.replay(_requests(small_points, [0.0, 10e-3]))
        assert report.outcomes[0].status is RequestStatus.FAILED
        probe = report.outcomes[1]
        assert probe.status is RequestStatus.SERVED
        assert probe.degraded_tier == 1
        reasons = {d.reason for d in report.fault_report.degradations}
        assert reasons == {DEGRADE_BREAKER}

    def test_degraded_results_never_enter_the_cache(self, small_graph,
                                                    small_points):
        governor = AdmissionGovernor(tiers=((16, 8),),
                                     pressure_thresholds=(0.5,))
        policy = BatchPolicy(max_batch=32, max_wait_seconds=2e-3,
                             max_queue=32)
        cache = ResultCache(capacity=256)
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=policy, cache=cache,
                             governor=governor)
        burst = _requests(small_points, [i * 1e-7 for i in range(32)])
        quiet = [QueryRequest(request_id=32,
                              queries=burst[0].queries.copy(),
                              arrival_seconds=1.0)]
        report = engine.replay(burst + quiet)
        assert report.outcomes[0].degraded_tier == 1
        late = report.outcomes[32]
        # The burst was degraded, so nothing was cached: the repeat
        # must be recomputed at full quality, not served from cache.
        assert late.status is RequestStatus.SERVED
        assert late.degraded_tier == 0
        assert len(cache) > 0  # the tier-0 answer was cached


class TestGoldenDeterminism:
    def _fresh_engine(self, graph, points, plan):
        return ServeEngine(
            graph, points, PARAMS,
            policy=BatchPolicy(max_batch=64, max_wait_seconds=5e-4,
                               max_queue=512),
            cache=ResultCache(capacity=512),
            faults=plan,
            governor=AdmissionGovernor(tiers=((16, 8),),
                                       pressure_thresholds=(0.5,)),
            default_deadline_seconds=20e-3)

    def test_same_trace_same_plan_byte_identical_reports(
            self, small_graph, small_points, small_queries):
        plan = named_fault_plan("aggressive", horizon_seconds=0.2,
                                seed=13)
        assert len(plan) > 0
        digests, encodings = [], []
        for _ in range(2):
            engine = self._fresh_engine(small_graph, small_points, plan)
            trace = synthetic_trace(small_queries, 800,
                                    mean_qps=80_000.0, seed=21)
            report = engine.replay(trace)
            assert report.fault_report.n_injected > 0
            encodings.append(report.to_bytes())
            digests.append(report.digest())
        assert encodings[0] == encodings[1]
        assert digests[0] == digests[1]

    def test_plan_json_round_trip_preserves_the_digest(
            self, small_graph, small_points, small_queries):
        plan = named_fault_plan("mild", horizon_seconds=0.2, seed=5)
        restored = FaultPlan.from_json(plan.to_json())
        digests = []
        for p in (plan, restored):
            engine = self._fresh_engine(small_graph, small_points, p)
            trace = synthetic_trace(small_queries, 400,
                                    mean_qps=80_000.0, seed=8)
            digests.append(engine.replay(trace).digest())
        assert digests[0] == digests[1]

    def test_different_seed_changes_the_chaos(self, small_graph,
                                              small_points,
                                              small_queries):
        digests = []
        for seed in (1, 2):
            plan = named_fault_plan("aggressive", horizon_seconds=0.2,
                                    seed=seed)
            engine = self._fresh_engine(small_graph, small_points, plan)
            trace = synthetic_trace(small_queries, 400,
                                    mean_qps=80_000.0, seed=8)
            digests.append(engine.replay(trace).digest())
        assert digests[0] != digests[1]


class TestLegacyBehaviorPreserved:
    def test_no_fault_machinery_no_fault_report(self, small_graph,
                                                small_points):
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY)
        report = engine.replay(_requests(small_points, [0.0]))
        assert report.fault_report is None
        assert "FaultReport" not in report.summary()

    def test_chaos_summary_mentions_the_fault_lines(self, small_graph,
                                                    small_points):
        plan = _plan(FaultEvent(kind=FAULT_KERNEL_STALL, at_seconds=0.0,
                                magnitude=4.0))
        engine = ServeEngine(small_graph, small_points, PARAMS,
                             policy=POLICY, faults=plan)
        report = engine.replay(_requests(small_points, [0.0]))
        text = report.summary()
        assert "FaultReport" in text
        assert "breaker" in text
        assert "degradation" in text
