"""Chaos acceptance tests: no silent wrong answers, degradation wins.

Two end-to-end properties of the fault-tolerant serving stack:

1. **No silently wrong results.**  A >= 5,000-request trace replayed
   under an aggressive fault plan must answer every served request
   byte-identically to a direct :func:`ganns_search` at the tier it was
   served at — full-quality answers match tier 0 exactly, degraded
   answers match their (explicitly marked) tier exactly, and everything
   else is an explicit failure/timeout/rejection.  Faults may cost
   time or answers, never correctness.
2. **Graceful degradation beats rejection.**  Under a sustained
   overload, the governor-enabled engine completes a strictly higher
   fraction of requests than the reject-only baseline, and the recall
   it trades away is visible per tier rather than hidden.
"""

import numpy as np
import pytest

from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.ground_truth import exact_knn
from repro.datasets.synthetic import gaussian_mixture
from repro.faults import AdmissionGovernor, RetryPolicy, named_fault_plan
from repro.metrics.recall import recall_at_k
from repro.serve import BatchPolicy, ResultCache, ServeEngine, synthetic_trace
from repro.serve.request import RequestStatus

N_REQUESTS = 5000
PARAMS = SearchParams(k=10, l_n=64)

TERMINAL_STATUSES = {RequestStatus.SERVED, RequestStatus.CACHE_HIT,
                     RequestStatus.REJECTED, RequestStatus.TIMED_OUT,
                     RequestStatus.FAILED}


@pytest.fixture(scope="module")
def query_pool():
    """2000 distinct queries from the test-fixture distribution."""
    return gaussian_mixture(2000, 24, n_clusters=8, cluster_std=0.3,
                            intrinsic_dim=8, seed=11)


class TestAggressiveChaosNeverLies:
    def test_every_answer_is_exact_at_its_tier_or_explicitly_failed(
            self, small_graph, small_points, query_pool):
        governor = AdmissionGovernor.default_for(PARAMS)
        mean_qps = 400_000.0
        plan = named_fault_plan(
            "aggressive", horizon_seconds=2.0 * N_REQUESTS / mean_qps,
            seed=29)
        engine = ServeEngine(
            small_graph, small_points, PARAMS,
            policy=BatchPolicy(max_batch=128, max_wait_seconds=5e-4,
                               max_queue=1024),
            cache=ResultCache(capacity=2048),
            faults=plan, governor=governor,
            retry=RetryPolicy(max_retries=1),
            default_deadline_seconds=10e-3)
        trace = synthetic_trace(query_pool, N_REQUESTS,
                                mean_qps=mean_qps, repeat_fraction=0.3,
                                seed=17)
        report = engine.replay(trace)

        # The chaos actually happened.
        fr = report.fault_report
        assert fr.n_injected > 0
        assert fr.n_fatal > 0
        assert report.n_degraded > 0

        # Direct per-tier reference answers over the whole pool: batch
        # composition is pure plumbing, so every served request must
        # reproduce its pool row at its tier, byte for byte.
        pool_row = {query_pool[i].tobytes(): i
                    for i in range(len(query_pool))}
        direct = {
            tier: ganns_search(small_graph, small_points, query_pool,
                               governor.params_for(tier, PARAMS))
            for tier in range(governor.n_tiers)
        }

        silently_wrong = 0
        unserved = 0
        for req in trace:
            outcome = report.outcomes[req.request_id]
            assert outcome.status in TERMINAL_STATUSES
            if not outcome.served:
                unserved += 1
                assert outcome.ids is None and outcome.dists is None
                if outcome.status in (RequestStatus.FAILED,
                                      RequestStatus.TIMED_OUT):
                    assert outcome.detail  # explicit reason, never blank
                continue
            row = pool_row[req.queries[0].tobytes()]
            ref = direct[outcome.degraded_tier]
            if not (np.array_equal(outcome.ids[0], ref.ids[row])
                    and np.array_equal(outcome.dists[0],
                                       ref.dists[row])):
                silently_wrong += 1
        assert silently_wrong == 0
        # The plan is aggressive enough that some requests fail, and
        # the stack survivable enough that most are still served.
        assert 0 < unserved < N_REQUESTS // 2
        assert report.n_served + report.n_rejected + report.n_failed \
            + report.n_timed_out == N_REQUESTS


class TestDegradationBeatsRejection:
    def test_governor_completes_more_than_reject_only_baseline(
            self, small_graph, small_points, query_pool):
        mean_qps = 1_000_000.0  # sustained overload
        policy = BatchPolicy(max_batch=128, max_wait_seconds=5e-4,
                             max_queue=256)
        plan = named_fault_plan(
            "mild", horizon_seconds=2.0 * 3000 / mean_qps, seed=3)
        trace = synthetic_trace(query_pool, 3000, mean_qps=mean_qps,
                                repeat_fraction=0.1, seed=7)

        governor = AdmissionGovernor.default_for(PARAMS)
        reports = {}
        for name, gov in (("governed", governor), ("reject_only", None)):
            engine = ServeEngine(small_graph, small_points, PARAMS,
                                 policy=policy, faults=plan,
                                 governor=gov)
            reports[name] = engine.replay(trace)

        governed = reports["governed"]
        baseline = reports["reject_only"]
        assert governed.completion_rate > baseline.completion_rate
        assert governed.n_rejected < baseline.n_rejected
        assert baseline.n_degraded == 0  # reject-only never degrades
        assert governed.n_degraded > 0

        # Per-tier recall is reported, and degrading is a quality
        # trade, not a correctness loss: every tier still recalls well
        # above chance, ordered by pool size.
        truth = exact_knn(small_points, query_pool, PARAMS.k)
        per_tier_recall = {}
        for tier in sorted(governed.per_tier_counts()):
            tier_params = governor.params_for(tier, PARAMS)
            found = ganns_search(small_graph, small_points, query_pool,
                                 tier_params)
            per_tier_recall[tier] = recall_at_k(found.ids, truth)
        assert len(per_tier_recall) >= 2  # multiple tiers actually used
        recalls = [per_tier_recall[t] for t in sorted(per_tier_recall)]
        assert all(r > 0.3 for r in recalls)
        assert recalls[0] == max(recalls)
        assert recalls[0] > recalls[-1]  # degradation is a real trade
