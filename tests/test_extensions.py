"""Tests for the extension modules (multicore GGraphCon, MIPS metric)."""

import numpy as np
import pytest

from repro.baselines.cpu_cost import CpuModel
from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.construction import build_nsw_gpu
from repro.core.params import BuildParams
from repro.errors import ConstructionError
from repro.extensions.mips import InnerProductMetric, register_ip_metric
from repro.extensions.multicore import _makespan_seconds, build_nsw_multicore

PARAMS = BuildParams(d_min=6, d_max=12, n_blocks=8)


class TestMakespan:
    def test_one_core_sums(self):
        assert _makespan_seconds([1.0, 2.0, 3.0], 1) == 6.0

    def test_many_cores_take_max(self):
        assert _makespan_seconds([1.0, 2.0, 3.0], 8) == 3.0

    def test_lpt_balancing(self):
        assert _makespan_seconds([4.0, 3.0, 2.0, 1.0], 2) == 5.0

    def test_empty(self):
        assert _makespan_seconds([], 4) == 0.0


class TestMulticoreConstruction:
    def test_graph_identical_to_gpu_construction(self, small_points):
        """Same algorithm, different working units: the graphs match."""
        points = small_points[:250]
        multicore = build_nsw_multicore(points, PARAMS, n_cores=4)
        gpu = build_nsw_gpu(points, PARAMS)
        assert multicore.graph.edge_set() == gpu.graph.edge_set()

    def test_exact_mode_satisfies_theorem(self, small_points):
        points = small_points[:180]
        multicore = build_nsw_multicore(points, PARAMS, n_cores=4,
                                        exact=True)
        sequential = build_nsw_cpu(points, PARAMS.d_min, PARAMS.d_max,
                                   exact=True)
        assert multicore.graph.edge_set() == sequential.graph.edge_set()

    def test_more_cores_build_faster(self, small_points):
        points = small_points[:300]
        one = build_nsw_multicore(points, PARAMS, n_cores=1)
        many = build_nsw_multicore(points, PARAMS, n_cores=16)
        assert many.seconds < one.seconds
        # Sub-linear but substantial scaling.
        assert one.seconds / many.seconds > 3.0

    def test_single_core_close_to_sequential_baseline(self, small_points):
        """On one core GGraphCon does roughly the sequential build's work
        (same total searches, cheaper local ones)."""
        from repro.baselines.cpu_cost import DEFAULT_CPU
        points = small_points[:300]
        one = build_nsw_multicore(points, PARAMS, n_cores=1)
        baseline = build_nsw_cpu(points, PARAMS.d_min, PARAMS.d_max)
        baseline_seconds = DEFAULT_CPU.seconds(
            baseline.counters, 3 * points.shape[1])
        assert 0.3 < one.seconds / baseline_seconds < 3.0

    def test_phase_seconds(self, small_points):
        report = build_nsw_multicore(small_points[:150], PARAMS, n_cores=4)
        assert set(report.phase_seconds) == {"local_construction", "merge"}
        assert report.seconds == pytest.approx(
            sum(report.phase_seconds.values()))
        assert report.details["n_cores"] == 4

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConstructionError, match="non-empty"):
            build_nsw_multicore(np.zeros((0, 3)), PARAMS)
        with pytest.raises(ConstructionError, match="n_cores"):
            build_nsw_multicore(np.zeros((10, 3)), PARAMS, n_cores=0)

    def test_custom_cpu_model_scales_time(self, small_points):
        points = small_points[:120]
        fast = build_nsw_multicore(points, PARAMS, n_cores=2,
                                   cpu=CpuModel(effective_flops=8e9))
        slow = build_nsw_multicore(points, PARAMS, n_cores=2,
                                   cpu=CpuModel(effective_flops=0.8e9))
        assert slow.seconds > fast.seconds


class TestInnerProductMetric:
    def test_registration_idempotent(self):
        first = register_ip_metric()
        second = register_ip_metric()
        assert first is second
        from repro.metrics.distance import get_metric
        assert get_metric("ip") is first

    def test_orders_by_inner_product(self):
        metric = InnerProductMetric()
        query = np.array([1.0, 0.0])
        points = np.array([[2.0, 0.0], [1.0, 0.0], [0.5, 5.0]])
        dists = metric.one_to_many(query, points)
        assert np.argmin(dists) == 0  # largest dot product wins

    def test_pairwise_consistency(self):
        rng = np.random.default_rng(0)
        metric = InnerProductMetric()
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(5, 6))
        full = metric.pairwise(a, b)
        for i in range(4):
            assert np.allclose(full[i], metric.one_to_many(a[i], b))

    def test_end_to_end_mips_search(self):
        """Graph build + GANNS search under metric='ip' finds the true
        maximum-inner-product neighbors."""
        register_ip_metric()
        from repro.core.ganns import ganns_search
        from repro.core.params import SearchParams
        from repro.datasets.ground_truth import exact_knn
        from repro.metrics.recall import recall_at_k

        rng = np.random.default_rng(3)
        # Latent-factor-style vectors (user/item embeddings).
        points = (rng.normal(size=(600, 8)) @ rng.normal(size=(8, 24))
                  ).astype(np.float32)
        queries = (rng.normal(size=(30, 8)) @ rng.normal(size=(8, 24))
                   ).astype(np.float32)
        graph = build_nsw_cpu(points, d_min=8, d_max=16, metric="ip").graph
        gt = exact_knn(points, queries, 10, metric="ip")
        report = ganns_search(graph, points, queries,
                              SearchParams(k=10, l_n=128))
        assert recall_at_k(report.ids, gt) > 0.7

    def test_kernel_supports_ip(self):
        register_ip_metric()
        from repro.core.ganns import ganns_search
        from repro.core.ganns_kernel import ganns_search_kernel
        from repro.core.params import SearchParams

        rng = np.random.default_rng(4)
        points = rng.normal(size=(200, 16)).astype(np.float32)
        graph = build_nsw_cpu(points, d_min=4, d_max=8, metric="ip").graph
        params = SearchParams(k=5, l_n=32)
        query = rng.normal(size=16).astype(np.float32)
        single = ganns_search_kernel(graph, points, query, params)
        batched = ganns_search(graph, points, query[None, :], params)
        assert np.array_equal(single.ids[0], batched.ids[0])


class TestDistributedConstruction:
    from repro.core.params import BuildParams as _BP

    def test_graph_matches_gpu_construction(self, small_points):
        from repro.extensions.distributed import build_nsw_distributed
        points = small_points[:200]
        dist = build_nsw_distributed(points, PARAMS, n_workers=4)
        gpu = build_nsw_gpu(points, PARAMS)
        assert dist.graph.edge_set() == gpu.graph.edge_set()

    def test_communication_accounted_separately(self, small_points):
        from repro.extensions.distributed import build_nsw_distributed
        report = build_nsw_distributed(small_points[:200], PARAMS,
                                       n_workers=4)
        assert "communication" in report.phase_seconds
        assert report.details["comm_seconds"] > 0
        assert report.seconds == pytest.approx(
            report.details["compute_seconds"]
            + report.details["comm_seconds"])

    def test_more_workers_help_until_network_binds(self, small_points):
        from repro.extensions.distributed import (NetworkModel,
                                                  build_nsw_distributed)
        points = small_points[:300]
        slow_net = NetworkModel(bandwidth_gbps=0.01, latency_ms=5.0)
        few = build_nsw_distributed(points, PARAMS, n_workers=1,
                                    network=slow_net)
        many = build_nsw_distributed(points, PARAMS, n_workers=16,
                                     network=slow_net)
        # Compute shrinks with workers but the rounds' communication
        # grows with the broadcast tree depth: on a slow network the
        # 16-worker cluster must NOT deliver anything close to 16x.
        assert few.seconds / many.seconds < 8.0

    def test_fast_network_approaches_multicore(self, small_points):
        from repro.extensions.distributed import (NetworkModel,
                                                  build_nsw_distributed)
        points = small_points[:200]
        fast_net = NetworkModel(bandwidth_gbps=100.0, latency_ms=0.001)
        dist = build_nsw_distributed(points, PARAMS, n_workers=4,
                                     cores_per_worker=2,
                                     network=fast_net)
        multicore = build_nsw_multicore(points, PARAMS, n_cores=8)
        assert dist.seconds == pytest.approx(multicore.seconds, rel=0.2)

    def test_exact_mode_theorem(self, small_points):
        from repro.extensions.distributed import build_nsw_distributed
        points = small_points[:150]
        dist = build_nsw_distributed(points, PARAMS, n_workers=4,
                                     exact=True)
        sequential = build_nsw_cpu(points, PARAMS.d_min, PARAMS.d_max,
                                   exact=True)
        assert dist.graph.edge_set() == sequential.graph.edge_set()

    def test_rejects_bad_cluster(self, small_points):
        from repro.extensions.distributed import build_nsw_distributed
        with pytest.raises(ConstructionError):
            build_nsw_distributed(small_points[:50], PARAMS, n_workers=0)

    def test_network_model_validation(self):
        from repro.extensions.distributed import NetworkModel
        with pytest.raises(ConstructionError):
            NetworkModel(bandwidth_gbps=0)
        with pytest.raises(ConstructionError):
            NetworkModel(latency_ms=-1)


class TestDistributedFailover:
    def _plan(self, *events, seed=0):
        from repro.faults import FaultPlan
        return FaultPlan(events, seed=seed)

    def _loss(self, at=0.1, target=0):
        from repro.faults import FaultEvent
        from repro.faults.plan import FAULT_WORKER_LOSS
        return FaultEvent(kind=FAULT_WORKER_LOSS, at_seconds=at,
                          target=target)

    def test_worker_loss_costs_time_never_correctness(self, small_points):
        from repro.extensions.distributed import build_nsw_distributed
        points = small_points[:200]
        clean = build_nsw_distributed(points, PARAMS, n_workers=4)
        failed = build_nsw_distributed(points, PARAMS, n_workers=4,
                                       fault_plan=self._plan(self._loss()))
        # The shard is reassigned and re-executed: same graph, more time.
        assert failed.graph.edge_set() == clean.graph.edge_set()
        assert failed.seconds > clean.seconds
        assert failed.phase_seconds["failover"] > 0
        assert failed.details["n_worker_losses"] == 1.0
        assert failed.seconds == pytest.approx(
            clean.seconds + failed.details["failover_seconds"])

    def test_each_loss_adds_failover_cost(self, small_points):
        from repro.extensions.distributed import build_nsw_distributed
        points = small_points[:200]
        one = build_nsw_distributed(points, PARAMS, n_workers=4,
                                    fault_plan=self._plan(self._loss()))
        two = build_nsw_distributed(
            points, PARAMS, n_workers=4,
            fault_plan=self._plan(self._loss(0.1, 0),
                                  self._loss(0.2, 1)))
        assert two.details["n_worker_losses"] == 2.0
        assert two.details["failover_seconds"] > \
            one.details["failover_seconds"]

    def test_losing_every_worker_raises(self, small_points):
        from repro.extensions.distributed import build_nsw_distributed
        plan = self._plan(*[self._loss(0.1 * (i + 1), i)
                            for i in range(2)])
        with pytest.raises(ConstructionError, match="all 2 workers"):
            build_nsw_distributed(small_points[:100], PARAMS,
                                  n_workers=2, fault_plan=plan)

    def test_partition_stalls_communication(self, small_points):
        from repro.extensions.distributed import build_nsw_distributed
        from repro.faults import FaultEvent
        from repro.faults.plan import FAULT_NETWORK_PARTITION
        points = small_points[:200]
        clean = build_nsw_distributed(points, PARAMS, n_workers=4)
        plan = self._plan(FaultEvent(kind=FAULT_NETWORK_PARTITION,
                                     at_seconds=0.05, magnitude=0.25))
        parted = build_nsw_distributed(points, PARAMS, n_workers=4,
                                       fault_plan=plan)
        assert parted.graph.edge_set() == clean.graph.edge_set()
        assert parted.details["partition_seconds"] == \
            pytest.approx(0.25)
        assert parted.phase_seconds["communication"] == pytest.approx(
            clean.phase_seconds["communication"] + 0.25)
        assert parted.seconds == pytest.approx(clean.seconds + 0.25)

    def test_kernel_scope_events_ignored_by_the_cluster(self,
                                                       small_points):
        from repro.extensions.distributed import build_nsw_distributed
        from repro.faults import FaultEvent
        from repro.faults.plan import FAULT_KERNEL_TIMEOUT
        points = small_points[:150]
        plan = self._plan(FaultEvent(kind=FAULT_KERNEL_TIMEOUT,
                                     at_seconds=0.1))
        clean = build_nsw_distributed(points, PARAMS, n_workers=4)
        faulted = build_nsw_distributed(points, PARAMS, n_workers=4,
                                        fault_plan=plan)
        assert faulted.seconds == pytest.approx(clean.seconds)
        assert faulted.details["n_worker_losses"] == 0.0
