"""Property-based invariants for the CAGRA-style family (hypothesis).

Three structural guarantees of :mod:`repro.core.cagra`:

* **Fixed out-degree** — a built CAGRA graph is perfectly regular:
  every vertex has out-degree exactly ``min(graph_degree, n - 1)``,
  with no padding slots left in any row.
* **Permutation invariance** — :func:`rank_prune` operates on the
  canonical rank order, so shuffling a candidate list (or injecting
  duplicates and padding) cannot change the selected edges.
* **Rank-0 survival** — :func:`reverse_merge` pins the closest half of
  each vertex's forward edges, so the rank-0 (closest) forward edge is
  never displaced by reverse traffic.

Examples stay small (a few dozen points) because each draws a fresh
point set; ``deadline=None`` since a single example pays for pairwise
distance work.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cagra import build_cagra_gpu, rank_prune, reverse_merge
from repro.core.params import BuildParams
from repro.datasets.synthetic import gaussian_mixture
from repro.graphs.adjacency import PAD_ID

_SLOW = settings(max_examples=15, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _points(n, dims, seed):
    return gaussian_mixture(n, dims, n_clusters=4, cluster_std=0.4,
                            intrinsic_dim=min(dims, 4), seed=seed)


@_SLOW
@given(n=st.integers(12, 48), degree=st.integers(2, 10),
       seed=st.integers(0, 2**16))
def test_out_degree_is_exactly_fixed(n, degree, seed):
    points = _points(n, 8, seed)
    report = build_cagra_gpu(points, BuildParams(seed=0),
                             graph_degree=degree, knn_iterations=4)
    graph = report.graph
    expect = min(degree, n - 1)
    assert graph.d_max == expect
    np.testing.assert_array_equal(graph.degrees,
                                  np.full(n, expect, dtype=graph.degrees.dtype))
    # Regularity is real, not just claimed: no padding inside any row.
    assert np.all(graph.neighbor_ids[:, :expect] != PAD_ID)


@_SLOW
@given(n=st.integers(10, 40), m=st.integers(4, 16),
       degree=st.integers(2, 8), seed=st.integers(0, 2**16))
def test_rank_prune_is_permutation_invariant(n, m, degree, seed):
    rng = np.random.default_rng(seed)
    points = _points(n, 6, seed)
    vertex = points[0]
    cand_ids = rng.choice(np.arange(1, n), size=min(m, n - 1),
                          replace=False).astype(np.int64)
    cand_dists = np.sum((points[cand_ids] - vertex) ** 2, axis=1)

    base_ids, base_dists = rank_prune(cand_ids, cand_dists, points, degree)

    perm = rng.permutation(len(cand_ids))
    perm_ids, perm_dists = rank_prune(cand_ids[perm], cand_dists[perm],
                                      points, degree)
    np.testing.assert_array_equal(base_ids, perm_ids)
    np.testing.assert_array_equal(base_dists, perm_dists)

    # Padding and duplicated candidates are canonicalised away too.
    noisy_ids = np.concatenate([cand_ids[perm], cand_ids[:2],
                                np.full(3, PAD_ID, dtype=np.int64)])
    noisy_dists = np.concatenate([cand_dists[perm], cand_dists[:2],
                                  np.full(3, np.inf)])
    noisy_kept, _ = rank_prune(noisy_ids, noisy_dists, points, degree)
    np.testing.assert_array_equal(base_ids, noisy_kept)


@_SLOW
@given(n=st.integers(8, 32), degree=st.integers(2, 8),
       seed=st.integers(0, 2**16))
def test_reverse_merge_keeps_every_rank0_edge(n, degree, seed):
    points = _points(n, 6, seed)
    width = min(degree, n - 1)
    # Forward rows: each vertex's `width` nearest others, rank-ordered.
    sq = np.sum((points[:, None, :] - points[None, :, :]) ** 2, axis=2)
    np.fill_diagonal(sq, np.inf)
    order = np.argsort(sq, axis=1, kind="stable")[:, :width]
    forward_ids = order.astype(np.int64)
    forward_dists = np.take_along_axis(sq, order, axis=1)

    merged_ids, merged_dists = reverse_merge(forward_ids, forward_dists,
                                             width)
    for vertex in range(n):
        rank0 = forward_ids[vertex, 0]
        assert rank0 in merged_ids[vertex], (
            f"vertex {vertex}: closest forward edge {rank0} dropped"
        )
    # Merged rows stay canonically sorted by (dist, id).
    for vertex in range(n):
        row_d = merged_dists[vertex]
        row_i = merged_ids[vertex]
        live = row_i != PAD_ID
        pairs = list(zip(row_d[live], row_i[live]))
        assert pairs == sorted(pairs)


def test_rank_prune_small_list_passes_through():
    points = _points(20, 6, 3)
    cand_ids = np.array([3, 5, 9], dtype=np.int64)
    cand_dists = np.sum((points[cand_ids] - points[0]) ** 2, axis=1)
    kept_ids, kept_dists = rank_prune(cand_ids, cand_dists, points, 8)
    order = np.lexsort((cand_ids, cand_dists))
    np.testing.assert_array_equal(kept_ids, cand_ids[order])
    np.testing.assert_array_equal(kept_dists, cand_dists[order])
