"""Tests for brute-force exact kNN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.ground_truth import exact_knn
from repro.errors import DatasetError


class TestExactKnn:
    def test_trivial_geometry(self):
        points = np.array([[0.0], [1.0], [2.0], [10.0]])
        queries = np.array([[0.4]])
        ids = exact_knn(points, queries, 2)
        assert np.array_equal(ids, [[0, 1]])

    def test_returns_distances_when_asked(self):
        points = np.array([[0.0], [3.0]])
        queries = np.array([[0.0]])
        ids, dists = exact_knn(points, queries, 2, return_distances=True)
        assert np.array_equal(ids, [[0, 1]])
        assert np.allclose(dists, [[0.0, 9.0]])

    def test_k_equals_n(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(5, 3))
        ids = exact_knn(points, points[:2], 5)
        assert sorted(ids[0]) == [0, 1, 2, 3, 4]

    def test_chunking_invariant(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(60, 4))
        queries = rng.normal(size=(17, 4))
        a = exact_knn(points, queries, 7, chunk_size=3)
        b = exact_knn(points, queries, 7, chunk_size=1000)
        assert np.array_equal(a, b)

    def test_tie_break_by_id(self):
        # Two points at identical distance: lower id wins.
        points = np.array([[1.0, 0.0], [0.0, 1.0], [5.0, 5.0]])
        queries = np.array([[0.0, 0.0]])
        ids = exact_knn(points, queries, 2)
        assert np.array_equal(ids, [[0, 1]])

    def test_cosine_metric(self):
        points = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.1]])
        queries = np.array([[1.0, 0.0]])
        ids = exact_knn(points, queries, 2, metric="cosine")
        assert np.array_equal(ids, [[0, 2]])

    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_results_sorted_by_distance(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(25, 4))
        queries = rng.normal(size=(3, 4))
        k = min(k, 25)
        ids, dists = exact_knn(points, queries, k, return_distances=True)
        assert (np.diff(dists, axis=1) >= -1e-12).all()
        # ids unique per row
        for row in ids:
            assert len(set(row.tolist())) == k

    def test_validation_errors(self):
        points = np.zeros((10, 3))
        queries = np.zeros((2, 3))
        with pytest.raises(DatasetError, match="k must lie"):
            exact_knn(points, queries, 0)
        with pytest.raises(DatasetError, match="k must lie"):
            exact_knn(points, queries, 11)
        with pytest.raises(DatasetError, match="chunk_size"):
            exact_knn(points, queries, 2, chunk_size=0)
        with pytest.raises(DatasetError, match="dimensionality"):
            exact_knn(points, np.zeros((2, 4)), 2)
        with pytest.raises(DatasetError, match="2-D"):
            exact_knn(np.zeros(10), queries, 2)
