"""Tests for the serving engine: demux exactness, cache accounting,
overload rejection, latency bookkeeping."""

import numpy as np
import pytest

from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.errors import ServeError
from repro.serve import (
    BatchPolicy,
    QueryRequest,
    RequestStatus,
    ResultCache,
    ServeEngine,
)

PARAMS = SearchParams(k=5, l_n=32)


def _trace_from(queries, spacing=1e-4, start=0.0, per_request=1):
    """One request per ``per_request`` consecutive query rows."""
    trace = []
    for i in range(0, len(queries), per_request):
        trace.append(QueryRequest(
            request_id=len(trace),
            queries=queries[i:i + per_request],
            arrival_seconds=start + len(trace) * spacing))
    return trace


@pytest.fixture()
def engine(small_graph, small_points):
    return ServeEngine(
        small_graph, small_points, PARAMS,
        policy=BatchPolicy(max_batch=16, max_wait_seconds=1e-3,
                           max_queue=64))


class TestDemuxExactness:
    def test_results_match_direct_search(self, engine, small_graph,
                                         small_points, small_queries):
        report = engine.replay(_trace_from(small_queries))
        direct = ganns_search(small_graph, small_points, small_queries,
                              PARAMS)
        assert report.n_served == len(small_queries)
        for i, outcome in enumerate(report.outcomes):
            assert np.array_equal(outcome.ids[0], direct.ids[i])
            assert np.array_equal(outcome.dists[0], direct.dists[i])

    def test_multi_query_requests_demux_exactly(self, engine, small_graph,
                                                small_points,
                                                small_queries):
        report = engine.replay(_trace_from(small_queries, per_request=3))
        direct = ganns_search(small_graph, small_points, small_queries,
                              PARAMS)
        offset = 0
        for outcome in report.outcomes:
            n = outcome.ids.shape[0]
            assert np.array_equal(outcome.ids,
                                  direct.ids[offset:offset + n])
            assert np.array_equal(outcome.dists,
                                  direct.dists[offset:offset + n])
            offset += n
        assert offset == len(small_queries)

    def test_replay_is_deterministic(self, small_graph, small_points,
                                     small_queries):
        def run():
            engine = ServeEngine(
                small_graph, small_points, PARAMS,
                policy=BatchPolicy(max_batch=16, max_wait_seconds=1e-3,
                                   max_queue=64),
                cache=ResultCache(capacity=32))
            return engine.replay(_trace_from(small_queries))

        a, b = run(), run()
        assert a.makespan_seconds == b.makespan_seconds
        assert a.batch_sizes == b.batch_sizes
        for oa, ob in zip(a.outcomes, b.outcomes):
            assert oa.status is ob.status
            assert oa.completion_seconds == ob.completion_seconds
            assert np.array_equal(oa.ids, ob.ids)


class TestCacheAccounting:
    def test_repeat_query_is_cache_hit_with_identical_results(
            self, small_graph, small_points, small_queries):
        engine = ServeEngine(
            small_graph, small_points, PARAMS,
            policy=BatchPolicy(max_batch=4, max_wait_seconds=1e-4,
                               max_queue=64),
            cache=ResultCache(capacity=64))
        repeated = np.concatenate([small_queries[:8], small_queries[:8]])
        # Space arrivals so the first 8 complete before the repeats.
        report = engine.replay(_trace_from(repeated, spacing=5e-3))
        statuses = [o.status for o in report.outcomes]
        assert statuses[:8] == [RequestStatus.SERVED] * 8
        assert statuses[8:] == [RequestStatus.CACHE_HIT] * 8
        for first, second in zip(report.outcomes[:8], report.outcomes[8:]):
            assert np.array_equal(first.ids, second.ids)
            assert np.array_equal(first.dists, second.dists)
        assert report.n_cache_hits == 8
        assert report.cache_hit_rate == pytest.approx(0.5)
        assert report.cache_stats.hits == 8

    def test_cache_hits_skip_the_queue(self, small_graph, small_points,
                                       small_queries):
        engine = ServeEngine(
            small_graph, small_points, PARAMS,
            policy=BatchPolicy(max_batch=4, max_wait_seconds=1e-4,
                               max_queue=64),
            cache=ResultCache(capacity=64))
        repeated = np.concatenate([small_queries[:4], small_queries[:4]])
        report = engine.replay(_trace_from(repeated, spacing=5e-3))
        for outcome in report.outcomes[4:]:
            assert outcome.latency_seconds == 0.0
            assert outcome.batch_index == -1

    def test_no_cache_means_no_hits(self, engine, small_queries):
        repeated = np.concatenate([small_queries[:4], small_queries[:4]])
        report = engine.replay(_trace_from(repeated, spacing=5e-3))
        assert report.n_cache_hits == 0
        assert report.cache_stats is None


class TestOverloadRejection:
    def test_burst_beyond_queue_cap_is_rejected(self, small_graph,
                                                small_points,
                                                small_queries):
        engine = ServeEngine(
            small_graph, small_points, PARAMS,
            policy=BatchPolicy(max_batch=8, max_wait_seconds=1.0,
                               max_queue=8))
        # 20 requests in one instant: 8 admitted (and size-flushed),
        # then the in-flight batch occupies the whole queue budget.
        trace = _trace_from(small_queries[:20], spacing=0.0)
        report = engine.replay(trace)
        assert report.n_rejected > 0
        assert report.n_served + report.n_rejected == 20
        rejected = [o for o in report.outcomes
                    if o.status is RequestStatus.REJECTED]
        for outcome in rejected:
            assert outcome.ids is None
            assert outcome.latency_seconds == 0.0
        assert report.rejection_rate == pytest.approx(
            report.n_rejected / 20)

    def test_served_results_remain_exact_under_overload(
            self, small_graph, small_points, small_queries):
        engine = ServeEngine(
            small_graph, small_points, PARAMS,
            policy=BatchPolicy(max_batch=8, max_wait_seconds=1.0,
                               max_queue=8))
        report = engine.replay(_trace_from(small_queries[:20],
                                           spacing=0.0))
        direct = ganns_search(small_graph, small_points, small_queries,
                              PARAMS)
        for i, outcome in enumerate(report.outcomes):
            if outcome.served:
                assert np.array_equal(outcome.ids[0], direct.ids[i])

    def test_queue_drains_after_burst(self, small_graph, small_points,
                                      small_queries):
        """Once the backlog completes, later arrivals are admitted."""
        engine = ServeEngine(
            small_graph, small_points, PARAMS,
            policy=BatchPolicy(max_batch=8, max_wait_seconds=1e-3,
                               max_queue=8))
        burst = _trace_from(small_queries[:16], spacing=0.0)
        late = QueryRequest(request_id=999,
                            queries=small_queries[16:17],
                            arrival_seconds=10.0)
        report = engine.replay(burst + [late])
        assert report.outcomes[-1].status is not RequestStatus.REJECTED


class TestLatencyAccounting:
    def test_latency_decomposes_into_queue_plus_compute(
            self, engine, small_queries):
        report = engine.replay(_trace_from(small_queries))
        for outcome in report.outcomes:
            assert outcome.latency_seconds == pytest.approx(
                outcome.queue_seconds + outcome.compute_seconds)
            assert outcome.queue_seconds >= 0.0
            assert outcome.compute_seconds > 0.0

    def test_deadline_flush_bounds_queue_wait_when_underloaded(
            self, small_graph, small_points, small_queries):
        """With sparse arrivals and an idle device, queue wait can't
        exceed the batching window by more than upload scheduling."""
        window = 2e-3
        engine = ServeEngine(
            small_graph, small_points, PARAMS,
            policy=BatchPolicy(max_batch=1024, max_wait_seconds=window,
                               max_queue=4096))
        report = engine.replay(_trace_from(small_queries[:10],
                                           spacing=0.05))
        # Every flush is deadline-triggered (the trace tail drains at
        # its deadline, so the window bound applies there too).
        assert all(t in ("deadline", "drain")
                   for t in report.batch_triggers)
        for outcome in report.outcomes:
            assert outcome.queue_seconds <= window + 1e-9

    def test_batches_complete_in_dispatch_order(self, engine,
                                                small_queries):
        report = engine.replay(_trace_from(small_queries))
        served = [o for o in report.outcomes if o.served]
        completions = {}
        for outcome in served:
            completions.setdefault(outcome.batch_index,
                                   outcome.completion_seconds)
        ordered = [completions[i] for i in sorted(completions)]
        assert ordered == sorted(ordered)

    def test_report_counts_and_summary(self, engine, small_queries):
        report = engine.replay(_trace_from(small_queries))
        assert report.n_requests == len(small_queries)
        assert report.served_queries == len(small_queries)
        assert sum(report.batch_sizes) == len(small_queries)
        assert report.qps > 0
        text = report.summary()
        assert "ServeReport" in text
        assert "p95" in text


class TestEngineValidation:
    def test_rejects_out_of_order_trace(self, engine, small_queries):
        trace = [
            QueryRequest(0, small_queries[0], 1.0),
            QueryRequest(1, small_queries[1], 0.5),
        ]
        with pytest.raises(ServeError, match="arrival-ordered"):
            engine.replay(trace)

    def test_rejects_dimension_mismatch(self, engine):
        bad = QueryRequest(0, np.zeros((1, 3)), 0.0)
        with pytest.raises(ServeError, match="dimensionality"):
            engine.replay([bad])

    def test_rejects_duplicate_request_object(self, engine,
                                              small_queries):
        req = QueryRequest(0, small_queries[0], 0.0)
        with pytest.raises(ServeError, match="twice"):
            engine.replay([req, req])

    def test_empty_trace_gives_empty_report(self, engine):
        report = engine.replay([])
        assert report.n_requests == 0
        assert report.n_batches == 0
        assert report.qps == 0.0
        assert report.summary()  # must not crash on empty populations
