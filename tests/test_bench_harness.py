"""Tests for the benchmark harness: workloads, report rendering, figures
registry, and the construction-timing runner."""

import numpy as np
import pytest

from repro.bench.figures import (
    PAPER_FIG6,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from repro.bench.report import (
    format_table,
    paper_vs_measured_row,
    speedup_band_note,
)
from repro.bench.runner import GraphCache, _run_construction
from repro.bench.workloads import (
    ALL_DATASETS,
    BenchConfig,
    bench_datasets,
    construction_device,
)
from repro.datasets.catalog import DATASET_SPECS, load_dataset


class TestWorkloads:
    def test_all_datasets_cover_table1(self):
        assert set(ALL_DATASETS) == set(DATASET_SPECS)

    def test_fast_subset_is_subset(self):
        assert set(bench_datasets()) <= set(bench_datasets(full=True))

    def test_dataset_points_scale_with_paper_sizes(self):
        config = BenchConfig(base_points=4000, max_points=100_000)
        assert (config.dataset_points("deep")
                == 8 * config.dataset_points("sift1m"))

    def test_max_points_cap(self):
        config = BenchConfig(base_points=4000, max_points=10_000)
        assert config.dataset_points("sift10m") == 10_000

    def test_build_params_paper_defaults(self):
        params = BenchConfig().build_params()
        assert params.d_min == 16
        assert params.d_max == 32

    def test_build_params_overrides(self):
        params = BenchConfig().build_params(d_max=64, d_min=32)
        assert params.d_max == 64

    def test_construction_device_concurrency(self):
        device = construction_device()
        assert device.concurrent_blocks(32) == 64

    def test_load_materialises_scaled_dataset(self):
        config = BenchConfig(base_points=1000, max_points=2000,
                             n_queries=10)
        dataset = config.load("nytimes")
        assert dataset.metric_name == "cosine"
        assert dataset.n_queries == 10


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows aligned

    def test_float_formatting(self):
        text = format_table(["x"], [[123456.0], [1.23456], [12.3]])
        assert "123,456" in text
        assert "1.235" in text
        assert "12.3" in text

    def test_paper_vs_measured_row(self):
        row = paper_vs_measured_row("x", 10.0, 20.0)
        assert row[-1] == "2.00x"

    def test_speedup_band_note(self):
        assert "in paper band" in speedup_band_note(1.0, 2.0, 1.5)
        assert "outside" in speedup_band_note(1.0, 2.0, 3.0)


class TestFiguresRegistry:
    def test_tables_cover_all_datasets(self):
        assert set(PAPER_TABLE2) == set(DATASET_SPECS)
        assert set(PAPER_TABLE3) == set(DATASET_SPECS)
        assert set(PAPER_FIG6) == set(DATASET_SPECS)

    def test_paper_speedups_consistent(self):
        # The quoted Table II speedups must match cpu/gpu ratios.
        row = PAPER_TABLE2["sift1m"]
        assert row["cpu"] / row["ggc_ganns"] == pytest.approx(41.8, abs=1)

    def test_fig6_headline_point(self):
        assert PAPER_FIG6["sift1m"].ganns_qps == 458_500.0


class TestConstructionRunner:
    @pytest.fixture(scope="class")
    def tiny(self):
        return load_dataset("sift1m", n_points=400, n_queries=10)

    @pytest.fixture(scope="class")
    def device(self):
        return construction_device()

    @pytest.mark.parametrize("algorithm", [
        "ggc-ganns", "ggc-song", "naive", "serial", "cpu-nsw",
        "hnsw-ganns", "cpu-hnsw",
    ])
    def test_all_algorithms_produce_timing(self, tiny, device, algorithm):
        from repro.core.params import BuildParams
        params = BuildParams(d_min=4, d_max=8, n_blocks=8)
        timing = _run_construction(tiny, params, algorithm, device)
        assert timing.seconds > 0

    def test_unknown_algorithm_rejected(self, tiny, device):
        from repro.core.params import BuildParams
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="unknown"):
            _run_construction(tiny, BuildParams(d_min=4, d_max=8),
                              "magic", device)

    def test_timing_cache_round_trip(self, tiny, device, tmp_path):
        from repro.core.params import BuildParams
        cache = GraphCache(str(tmp_path))
        params = BuildParams(d_min=4, d_max=8, n_blocks=8)
        first = cache.construction_timing(tiny, params, "ggc-ganns",
                                          device=device)
        second = cache.construction_timing(tiny, params, "ggc-ganns",
                                           device=device)
        assert first.seconds == second.seconds
        assert first.distance_seconds == second.distance_seconds

    def test_cache_keys_distinguish_devices(self, tiny, tmp_path):
        from repro.core.params import BuildParams
        from repro.gpusim.device import QUADRO_P5000
        cache = GraphCache(str(tmp_path))
        params = BuildParams(d_min=4, d_max=8, n_blocks=8)
        scaled = cache.construction_timing(tiny, params, "ggc-ganns",
                                           device=construction_device())
        full = cache.construction_timing(tiny, params, "ggc-ganns",
                                         device=QUADRO_P5000)
        # More concurrency -> strictly faster build on this workload.
        assert full.seconds < scaled.seconds


class TestPhaseBars:
    def test_bars_scale_with_time(self):
        from repro.bench.report import format_phase_bars
        text = format_phase_bars({"big": 0.3, "small": 0.1}, width=20)
        lines = text.splitlines()
        assert lines[0].strip().startswith("big")
        assert lines[0].count("#") == 20
        assert 5 <= lines[1].count("#") <= 9

    def test_shares_sum_to_one(self):
        from repro.bench.report import format_phase_bars
        text = format_phase_bars({"a": 0.5, "b": 0.5})
        assert text.count("50.0%") == 2

    def test_empty_input(self):
        from repro.bench.report import format_phase_bars
        assert "(no phases recorded)" in format_phase_bars({})

    def test_title_line(self):
        from repro.bench.report import format_phase_bars
        text = format_phase_bars({"a": 1.0}, title="Phases")
        assert text.splitlines()[0] == "Phases"
