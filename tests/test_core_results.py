"""Tests for search reports and their timing conversions."""

import numpy as np
import pytest

from repro.core.results import (
    ConstructionReport,
    SearchReport,
    make_search_tracker,
)
from repro.gpusim.tracker import PhaseCategory


def _report(n_queries=4, cycles=1000.0):
    tracker = make_search_tracker(n_queries, "ganns")
    tracker.charge("bulk_distance", cycles)
    tracker.charge("sorting", cycles / 2)
    return SearchReport(
        algorithm="ganns",
        ids=np.zeros((n_queries, 10), dtype=np.int64),
        dists=np.zeros((n_queries, 10)),
        tracker=tracker,
        n_threads=32,
        shared_mem_bytes=1024,
        iterations=np.full(n_queries, 7),
        n_distance_computations=100,
    )


class TestSearchReport:
    def test_n_queries(self):
        assert _report(6).n_queries == 6

    def test_launch_and_qps_consistent(self):
        report = _report()
        launch = report.launch()
        qps = report.queries_per_second()
        assert qps == pytest.approx(report.n_queries / launch.seconds)

    def test_qps_decreases_with_more_cycles(self):
        fast = _report(cycles=100.0)
        slow = _report(cycles=10_000.0)
        assert fast.queries_per_second() > slow.queries_per_second()

    def test_category_seconds_sum_to_launch_seconds(self):
        report = _report()
        seconds = report.category_seconds()
        assert sum(seconds.values()) == pytest.approx(
            report.launch().seconds)

    def test_structure_fraction(self):
        report = _report()
        # bulk_distance 1000 (distance), sorting 500 (structure).
        assert report.structure_fraction() == pytest.approx(1 / 3)

    def test_breakdown_uses_phase_names(self):
        breakdown = _report().breakdown()
        assert set(breakdown) == {"bulk_distance", "sorting"}

    def test_ganns_tracker_categories(self):
        tracker = make_search_tracker(1, "ganns")
        assert tracker.category_of("bulk_distance") is PhaseCategory.DISTANCE
        for phase in ("candidate_locating", "neighborhood_exploration",
                      "lazy_check", "sorting", "candidate_update"):
            assert tracker.category_of(phase) is PhaseCategory.STRUCTURE

    def test_song_tracker_categories(self):
        tracker = make_search_tracker(1, "song")
        assert tracker.category_of("bulk_distance") is PhaseCategory.DISTANCE
        assert (tracker.category_of("candidates_locating")
                is PhaseCategory.STRUCTURE)
        assert (tracker.category_of("structures_updating")
                is PhaseCategory.STRUCTURE)


class TestConstructionReport:
    def test_speedup_over(self):
        report = ConstructionReport(algorithm="x", graph=None, seconds=2.0)
        assert report.speedup_over(10.0) == 5.0

    def test_speedup_with_zero_seconds(self):
        report = ConstructionReport(algorithm="x", graph=None, seconds=0.0)
        assert report.speedup_over(1.0) == float("inf")
