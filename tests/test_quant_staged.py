"""Unit and regression tests for the quantized staged search.

Covers the plumbing around the staged pipeline (the statistical bounds
live in ``test_quant_properties.py``): mode resolution (params vs the
``REPRO_QUANT`` environment variable), parameter validation, signature
exclusion, determinism, the exactness of reported distances, footprint
accounting, the cost-model dimension mapping, and the
``resolve_compute_dtype`` mixed-dtype regression.
"""

import numpy as np
import pytest

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import ConfigurationError, SearchError
from repro.perf.distance import resolve_compute_dtype
from repro.perf.quant import (
    QUANT_ENV_VAR,
    QUANT_MODES,
    charged_dims,
    pca_rank,
    quantize_points,
    resolve_quant,
)

N, D = 150, 24

_FIXTURE = {}


def _fixture():
    if not _FIXTURE:
        points = gaussian_mixture(N, D, n_clusters=5, cluster_std=0.3,
                                  intrinsic_dim=6, seed=11) \
            .astype(np.float32)
        queries = gaussian_mixture(12, D, n_clusters=5, cluster_std=0.4,
                                   intrinsic_dim=6, seed=12) \
            .astype(np.float32)
        _FIXTURE["graph"] = build_nsw_cpu(points, d_min=8, d_max=16).graph
        _FIXTURE["points"] = points
        _FIXTURE["queries"] = queries
    return _FIXTURE["graph"], _FIXTURE["points"], _FIXTURE["queries"]


class TestResolveQuant:
    def test_explicit_modes(self):
        for mode in QUANT_MODES:
            assert resolve_quant(mode) == mode

    def test_off_forces_exact(self, monkeypatch):
        monkeypatch.setenv(QUANT_ENV_VAR, "pca")
        assert resolve_quant("off") is None

    def test_none_defers_to_environment(self, monkeypatch):
        monkeypatch.delenv(QUANT_ENV_VAR, raising=False)
        assert resolve_quant(None) is None
        monkeypatch.setenv(QUANT_ENV_VAR, "int8")
        assert resolve_quant(None) == "int8"
        monkeypatch.setenv(QUANT_ENV_VAR, "off")
        assert resolve_quant(None) is None
        monkeypatch.setenv(QUANT_ENV_VAR, "")
        assert resolve_quant(None) is None

    def test_unknown_mode_raises(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="bogus"):
            resolve_quant("bogus")
        monkeypatch.setenv(QUANT_ENV_VAR, "pq4")
        with pytest.raises(ConfigurationError, match="REPRO_QUANT"):
            resolve_quant(None)


class TestParamsValidation:
    def test_unknown_quant_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchParams(k=10, l_n=32, quant="pq4")

    @pytest.mark.parametrize("factor", [0, -1, 3, 6])
    def test_bad_rerank_factor_rejected(self, factor):
        with pytest.raises(ConfigurationError):
            SearchParams(k=10, l_n=32, rerank_factor=factor)

    def test_quant_is_signature_excluded(self):
        """Like ``backend``, quant settings don't alter the signature
        tuple itself — serving layers namespace explicitly (and
        honestly) instead of silently forking result identities."""
        exact = SearchParams(k=10, l_n=32)
        quant = SearchParams(k=10, l_n=32, quant="pca", rerank_factor=4)
        assert exact.signature() == quant.signature()


class TestStagedSearch:
    def test_quant_off_is_byte_identical_to_reference(self, monkeypatch):
        """quant="off" beats the environment: the result is the exact
        fast path, byte-identical to the reference backend."""
        monkeypatch.setenv(QUANT_ENV_VAR, "pca")
        graph, points, queries = _fixture()
        off = ganns_search(graph, points, queries,
                           SearchParams(k=10, l_n=32, backend="fast",
                                        quant="off"))
        monkeypatch.delenv(QUANT_ENV_VAR)
        ref = ganns_search(graph, points, queries,
                           SearchParams(k=10, l_n=32,
                                        backend="reference"))
        assert off.ids.tobytes() == ref.ids.tobytes()
        np.testing.assert_allclose(off.dists, ref.dists, rtol=1e-9)

    def test_environment_matches_explicit_param(self, monkeypatch):
        graph, points, queries = _fixture()
        explicit = ganns_search(
            graph, points, queries,
            SearchParams(k=10, l_n=32, backend="fast", quant="pca"))
        monkeypatch.setenv(QUANT_ENV_VAR, "pca")
        via_env = ganns_search(graph, points, queries,
                               SearchParams(k=10, l_n=32, backend="fast"))
        assert explicit.ids.tobytes() == via_env.ids.tobytes()
        assert explicit.dists.tobytes() == via_env.dists.tobytes()

    @pytest.mark.parametrize("mode", QUANT_MODES)
    def test_deterministic(self, mode):
        graph, points, queries = _fixture()
        params = SearchParams(k=10, l_n=32, backend="fast", quant=mode)
        first = ganns_search(graph, points, queries, params)
        second = ganns_search(graph, points, queries, params)
        assert first.ids.tobytes() == second.ids.tobytes()
        assert first.dists.tobytes() == second.dists.tobytes()

    @pytest.mark.parametrize("mode", QUANT_MODES)
    def test_reported_distances_are_exact(self, mode):
        """Whatever the compressed walk retained, stage 2 reports the
        true full-precision metric value for every returned id."""
        graph, points, queries = _fixture()
        report = ganns_search(
            graph, points, queries,
            SearchParams(k=10, l_n=32, backend="fast", quant=mode))
        pts64 = points.astype(np.float64)
        qs64 = queries.astype(np.float64)
        for row in range(len(queries)):
            diffs = pts64[report.ids[row]] - qs64[row]
            truth = np.einsum("kd,kd->k", diffs, diffs)
            np.testing.assert_allclose(report.dists[row], truth,
                                       rtol=1e-9)

    def test_wider_pool_widens_shared_memory(self):
        graph, points, queries = _fixture()
        narrow = ganns_search(
            graph, points, queries,
            SearchParams(k=10, l_n=32, backend="fast", quant="pca",
                         rerank_factor=1))
        wide = ganns_search(
            graph, points, queries,
            SearchParams(k=10, l_n=32, backend="fast", quant="pca",
                         rerank_factor=4))
        assert wide.shared_mem_bytes > narrow.shared_mem_bytes


class TestFootprintAndCosts:
    def test_bytes_per_vector_ordering(self):
        _, points, _ = _fixture()
        f32 = points.dtype.itemsize * D
        fp16 = quantize_points(points, "fp16").bytes_per_vector()
        int8 = quantize_points(points, "int8").bytes_per_vector()
        pca = quantize_points(points, "pca").bytes_per_vector()
        assert int8 < fp16 < f32
        assert pca < f32

    def test_charged_dims_mapping(self):
        _, points, _ = _fixture()
        assert charged_dims(quantize_points(points, "fp16")) \
            == (D + 1) // 2
        assert charged_dims(quantize_points(points, "int8")) \
            == (D + 3) // 4
        assert charged_dims(quantize_points(points, "pca")) \
            == pca_rank(D)

    def test_table_cache_reuses_by_identity(self):
        _, points, _ = _fixture()
        assert quantize_points(points, "pca") is \
            quantize_points(points, "pca")
        assert quantize_points(points, "pca") is not \
            quantize_points(points.copy(), "pca")


class TestResolveComputeDtypeRegression:
    def test_mixed_float_dtypes_raise(self):
        points = np.zeros((4, 3), dtype=np.float64)
        queries = np.zeros((2, 3), dtype=np.float32)
        with pytest.raises(SearchError, match="mixed-dtype"):
            resolve_compute_dtype(points, queries)

    def test_mixed_non_float_dtypes_raise(self):
        """The pre-fix assert only caught float/float mismatches; an
        integer query matrix slid through to a silent upcast."""
        points = np.zeros((4, 3), dtype=np.float64)
        queries = np.zeros((2, 3), dtype=np.int32)
        with pytest.raises(SearchError, match="mixed-dtype"):
            resolve_compute_dtype(points, queries)

    def test_matching_dtypes_resolve(self):
        points = np.zeros((4, 3), dtype=np.float32)
        queries = np.zeros((2, 3), dtype=np.float32)
        assert resolve_compute_dtype(points, queries) \
            == np.dtype(np.float64)
        assert resolve_compute_dtype(points, queries, np.float32) \
            == np.dtype(np.float32)

    def test_unsupported_compute_dtype_raises(self):
        points = np.zeros((4, 3), dtype=np.float32)
        with pytest.raises(SearchError, match="unsupported"):
            resolve_compute_dtype(points, points, np.int16)
