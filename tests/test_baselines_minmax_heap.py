"""Tests for the bounded min-max heap, incl. model-based property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.minmax_heap import MinMaxHeap
from repro.errors import ConfigurationError


def _check_minmax_invariant(heap: MinMaxHeap) -> None:
    """Every node on a min level is <= all its descendants; every node on
    a max level is >= all its descendants."""
    from repro.baselines.minmax_heap import _is_min_level

    items = heap._items
    for index in range(len(items)):
        stack = [2 * index + 1, 2 * index + 2]
        while stack:
            child = stack.pop()
            if child >= len(items):
                continue
            if _is_min_level(index):
                assert items[index] <= items[child]
            else:
                assert items[index] >= items[child]
            stack.extend([2 * child + 1, 2 * child + 2])


class TestBasicOperations:
    def test_push_and_min_max(self):
        heap = MinMaxHeap(bound=8)
        for dist in (3.0, 1.0, 4.0, 1.5):
            heap.push((dist, int(dist * 10)))
        assert heap.min() == (1.0, 10)
        assert heap.max() == (4.0, 40)

    def test_pop_min_ascending(self):
        heap = MinMaxHeap(bound=16)
        values = [5.0, 2.0, 8.0, 1.0, 9.0, 3.0]
        for i, v in enumerate(values):
            heap.push((v, i))
        popped = [heap.pop_min()[0] for _ in range(len(values))]
        assert popped == sorted(values)

    def test_pop_max_descending(self):
        heap = MinMaxHeap(bound=16)
        values = [5.0, 2.0, 8.0, 1.0, 9.0, 3.0]
        for i, v in enumerate(values):
            heap.push((v, i))
        popped = [heap.pop_max()[0] for _ in range(len(values))]
        assert popped == sorted(values, reverse=True)

    def test_empty_heap_raises(self):
        heap = MinMaxHeap(bound=4)
        with pytest.raises(ConfigurationError, match="empty"):
            heap.min()
        with pytest.raises(ConfigurationError, match="empty"):
            heap.max()

    def test_bad_bound(self):
        with pytest.raises(ConfigurationError, match="positive"):
            MinMaxHeap(bound=0)

    def test_len_and_bool(self):
        heap = MinMaxHeap(bound=4)
        assert not heap
        heap.push((1.0, 0))
        assert heap
        assert len(heap) == 1


class TestBoundedSemantics:
    def test_eviction_keeps_best(self):
        heap = MinMaxHeap(bound=3)
        for i, v in enumerate((5.0, 3.0, 4.0)):
            assert heap.push((v, i))
        assert heap.push((1.0, 9))  # evicts 5.0
        assert heap.as_sorted_list() == [(1.0, 9), (3.0, 1), (4.0, 2)]

    def test_worse_than_max_rejected_when_full(self):
        heap = MinMaxHeap(bound=2)
        heap.push((1.0, 0))
        heap.push((2.0, 1))
        assert not heap.push((3.0, 2))
        assert len(heap) == 2

    def test_tie_break_by_id(self):
        heap = MinMaxHeap(bound=2)
        heap.push((1.0, 5))
        heap.push((1.0, 2))
        assert not heap.push((1.0, 9))  # (1.0, 9) >= max (1.0, 5)
        assert heap.push((1.0, 1))      # better than (1.0, 5)
        assert heap.as_sorted_list() == [(1.0, 1), (1.0, 2)]


class TestProperties:
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=0,
                    max_size=200),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_truncation(self, values, bound):
        """A bounded min-max heap fed a stream keeps exactly the bound
        smallest (dist, id) pairs."""
        heap = MinMaxHeap(bound=bound)
        keys = [(v, i) for i, v in enumerate(values)]
        for key in keys:
            heap.push(key)
        assert heap.as_sorted_list() == sorted(keys)[:bound]

    @given(st.lists(st.tuples(st.booleans(),
                              st.floats(min_value=0, max_value=100)),
                    min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_mixed_operations(self, operations):
        """The structural min-max invariant holds after any interleaving
        of pushes and pops."""
        heap = MinMaxHeap(bound=16)
        reference = []
        for i, (is_push, value) in enumerate(operations):
            if is_push or not reference:
                key = (value, i)
                inserted = heap.push(key)
                if inserted:
                    reference.append(key)
                    reference.sort()
                    reference[:] = reference[:16]
                    if len(reference) > len(heap):
                        reference.pop()
            else:
                assert heap.pop_min() == reference.pop(0)
            _check_minmax_invariant(heap)
            assert heap.as_sorted_list() == sorted(reference)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_interleaved_min_max_pops(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0, 1, size=40)
        heap = MinMaxHeap(bound=64)
        for i, v in enumerate(values):
            heap.push((float(v), i))
        remaining = sorted((float(v), i) for i, v in enumerate(values))
        while remaining:
            if rng.random() < 0.5:
                assert heap.pop_min() == remaining.pop(0)
            else:
                assert heap.pop_max() == remaining.pop()
            _check_minmax_invariant(heap)
