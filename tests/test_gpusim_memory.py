"""Tests for shared-memory budgets and the PCIe transfer model."""

import pytest

from repro.errors import DeviceError
from repro.gpusim.device import QUADRO_P5000
from repro.gpusim.memory import (
    POOL_ENTRY_BYTES,
    SharedMemoryBudget,
    TransferModel,
)


class TestSharedMemoryBudget:
    def test_ganns_block_footprint(self):
        # GANNS: N + T pools only; query is register-staged.
        budget = SharedMemoryBudget(l_n=128, l_t=32)
        assert budget.total_bytes() == (128 + 32) * POOL_ENTRY_BYTES

    def test_song_block_footprint_includes_query_and_scratch(self):
        budget = SharedMemoryBudget(l_n=0, l_t=0, query_dims=128,
                                    scratch_entries=32)
        assert budget.total_bytes() == 128 * 4 + 32 * 8

    def test_validate_passes_for_paper_settings(self):
        budget = SharedMemoryBudget(l_n=128, l_t=32)
        assert budget.validate(QUADRO_P5000) == budget.total_bytes()

    def test_validate_rejects_oversized_block(self):
        budget = SharedMemoryBudget(l_n=4096 * 2, l_t=32)
        with pytest.raises(DeviceError, match="exceeds"):
            budget.validate(QUADRO_P5000)

    def test_ganns_uses_less_shared_memory_than_song(self):
        """Section III-C: GANNS avoids auxiliary buffers and register-
        stages the query, consuming less shared memory per block for
        typical settings on a high-dimensional dataset."""
        ganns = SharedMemoryBudget(l_n=64, l_t=32)
        song = SharedMemoryBudget(l_n=0, l_t=0, query_dims=960,
                                  scratch_entries=32)
        assert ganns.total_bytes() < song.total_bytes()


class TestTransferModel:
    @pytest.fixture()
    def model(self):
        return TransferModel(QUADRO_P5000)

    def test_transfer_seconds_has_latency_floor(self, model):
        assert model.transfer_seconds(0) == pytest.approx(10e-6)

    def test_transfer_scales_with_bytes(self, model):
        one_gb = model.transfer_seconds(10 ** 9)
        assert one_gb == pytest.approx(10e-6 + 0.1, rel=1e-6)

    def test_negative_bytes_rejected(self, model):
        with pytest.raises(DeviceError, match="non-negative"):
            model.transfer_seconds(-1)

    def test_paper_remark_result_size(self, model):
        """Section III-B remark: 2000 queries at k=100 produce about 1 MB
        of results, negligible against ~10 GB/s."""
        n_bytes = model.result_download_bytes(2000, 100)
        assert 1_000_000 <= n_bytes <= 2_000_000
        assert model.transfer_seconds(n_bytes) < 1e-3

    def test_round_trip_includes_both_directions(self, model):
        up = model.transfer_seconds(model.query_upload_bytes(2000, 128))
        down = model.transfer_seconds(model.result_download_bytes(2000, 10))
        assert model.round_trip_seconds(2000, 128, 10) == pytest.approx(
            up + down)

    def test_overlap_hides_transfer_behind_compute(self, model):
        assert model.overlappable(1e-3, 5e-3) == 0.0
        assert model.overlappable(5e-3, 1e-3) == pytest.approx(4e-3)

    def test_transfer_negligible_vs_search(self, model):
        """The paper's practicality claim: transfer cost is minor compared
        with querying.  A 2000-query batch's round trip must be well under
        the ~4 ms the calibrated search spends."""
        round_trip = model.round_trip_seconds(2000, 128, 10)
        assert round_trip < 0.5 * 4.3e-3
