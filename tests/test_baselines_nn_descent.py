"""Tests for CPU NN-Descent KNN-graph construction."""

import numpy as np
import pytest

from repro.baselines.nn_descent import build_knn_graph_nn_descent
from repro.datasets.ground_truth import exact_knn
from repro.errors import ConstructionError
from repro.graphs.validation import validate_graph


def _knn_graph_accuracy(graph, points, k):
    """Fraction of true kNN edges present in the graph."""
    truth = exact_knn(points, points, k + 1)[:, 1:]
    hits = 0
    for v in range(len(points)):
        hits += np.intersect1d(graph.neighbors(v), truth[v]).size
    return hits / (len(points) * k)


class TestConvergence:
    @pytest.fixture(scope="class")
    def small_cloud(self):
        from repro.datasets.synthetic import gaussian_mixture
        return gaussian_mixture(300, 12, n_clusters=6, intrinsic_dim=6,
                                seed=7)

    def test_reaches_high_knn_accuracy(self, small_cloud):
        report = build_knn_graph_nn_descent(small_cloud, k=8, seed=0)
        accuracy = _knn_graph_accuracy(report.graph, small_cloud, 8)
        assert accuracy > 0.85

    def test_updates_decay_over_iterations(self, small_cloud):
        report = build_knn_graph_nn_descent(small_cloud, k=8, seed=0)
        updates = report.updates_per_iteration
        assert len(updates) >= 2
        assert updates[-1] < updates[0]

    def test_iterations_beat_random_initialisation(self, small_cloud):
        converged = build_knn_graph_nn_descent(small_cloud, k=8, seed=0)
        one_pass = build_knn_graph_nn_descent(small_cloud, k=8,
                                              max_iterations=1, seed=0)
        assert (_knn_graph_accuracy(converged.graph, small_cloud, 8)
                > _knn_graph_accuracy(one_pass.graph, small_cloud, 8))

    def test_graph_structure_valid(self, small_cloud):
        report = build_knn_graph_nn_descent(small_cloud, k=8, seed=0)
        validate_graph(report.graph, points=small_cloud,
                       check_distances=True)
        # KNN graphs are k-regular.
        assert (report.graph.degrees == 8).all()

    def test_sampling_still_converges(self, small_cloud):
        report = build_knn_graph_nn_descent(small_cloud, k=8,
                                            sample_rate=0.5,
                                            max_iterations=20, seed=0)
        assert _knn_graph_accuracy(report.graph, small_cloud, 8) > 0.7

    def test_counters_populated(self, small_cloud):
        report = build_knn_graph_nn_descent(small_cloud, k=8, seed=0)
        assert report.counters.n_distances > 300 * 8
        assert report.counters.n_adjacency_inserts > 0


class TestValidation:
    def test_rejects_bad_k(self):
        points = np.zeros((10, 3))
        with pytest.raises(ConstructionError, match="k must lie"):
            build_knn_graph_nn_descent(points, k=0)
        with pytest.raises(ConstructionError, match="k must lie"):
            build_knn_graph_nn_descent(points, k=10)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConstructionError, match="sample_rate"):
            build_knn_graph_nn_descent(np.zeros((10, 3)), k=2,
                                       sample_rate=0.0)

    def test_rejects_empty_points(self):
        with pytest.raises(ConstructionError, match="non-empty"):
            build_knn_graph_nn_descent(np.zeros((0, 3)), k=2)

    def test_deterministic_under_seed(self):
        rng = np.random.default_rng(8)
        points = rng.normal(size=(60, 4)).astype(np.float32)
        a = build_knn_graph_nn_descent(points, k=4, seed=3)
        b = build_knn_graph_nn_descent(points, k=4, seed=3)
        assert np.array_equal(a.graph.neighbor_ids, b.graph.neighbor_ids)
