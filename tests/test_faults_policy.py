"""Tests for recovery policies: retry backoff, breaker, governor."""

import numpy as np
import pytest

from repro.core.params import SearchParams
from repro.errors import ConfigurationError
from repro.faults import AdmissionGovernor, BreakerPolicy, RetryPolicy
from repro.faults.policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(max_retries=5, base_seconds=1e-4,
                             cap_seconds=4e-4, jitter_fraction=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.backoff_seconds(a, rng) for a in (1, 2, 3, 4, 5)]
        assert delays[:3] == pytest.approx([1e-4, 2e-4, 4e-4])
        assert delays[3] == pytest.approx(4e-4)  # capped
        assert delays[4] == pytest.approx(4e-4)

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_seconds=1e-4, cap_seconds=1e-3,
                             jitter_fraction=0.5)
        a = [policy.backoff_seconds(1, np.random.default_rng(7))
             for _ in range(3)]
        assert a[0] == a[1] == a[2]  # same rng state, same draw
        rng = np.random.default_rng(7)
        for _ in range(50):
            delay = policy.backoff_seconds(1, rng)
            assert 1e-4 <= delay <= 1.5e-4

    def test_zero_jitter_still_advances_the_stream(self):
        """The draw happens whatever the fraction, so toggling jitter
        never re-times other random decisions sharing the stream."""
        policy = RetryPolicy(jitter_fraction=0.0)
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        policy.backoff_seconds(1, rng_a)
        rng_b.random()
        assert rng_a.random() == rng_b.random()

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError, match="cap_seconds"):
            RetryPolicy(base_seconds=2e-3, cap_seconds=1e-3)
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(ConfigurationError, match="attempt"):
            RetryPolicy().backoff_seconds(0, np.random.default_rng(0))


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3,
                                               cooldown_seconds=1.0))
        breaker.record_failure(0.1)
        breaker.record_failure(0.2)
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure(0.3)
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(0.5)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                               cooldown_seconds=1.0))
        breaker.record_failure(0.0)
        assert breaker.state == BREAKER_OPEN
        assert breaker.allow(1.5)  # cooldown elapsed: half-open probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.impaired
        breaker.record_success(1.6)
        assert breaker.state == BREAKER_CLOSED
        assert not breaker.impaired

    def test_half_open_probe_failure_reopens_immediately(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=5,
                                               cooldown_seconds=1.0))
        for t in (0.1, 0.2, 0.3, 0.4, 0.5):
            breaker.record_failure(t)
        assert breaker.state == BREAKER_OPEN
        assert breaker.allow(2.0)
        breaker.record_failure(2.1)  # one probe failure, not five
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow(2.5)
        assert breaker.allow(3.2)  # a fresh cooldown started at 2.1

    def test_transitions_recorded_in_time_order(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                               cooldown_seconds=0.5))
        breaker.record_failure(0.0)
        breaker.allow(1.0)
        breaker.record_success(1.1)
        states = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert states == [(BREAKER_CLOSED, BREAKER_OPEN),
                          (BREAKER_OPEN, BREAKER_HALF_OPEN),
                          (BREAKER_HALF_OPEN, BREAKER_CLOSED)]
        times = [t.seconds for t in breaker.transitions]
        assert times == sorted(times)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError, match="failure_threshold"):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigurationError, match="cooldown"):
            BreakerPolicy(cooldown_seconds=-1.0)
        with pytest.raises(ConfigurationError, match="half_open_probes"):
            BreakerPolicy(half_open_probes=0)

    def test_multi_probe_half_open_needs_a_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                               cooldown_seconds=1.0,
                                               half_open_probes=3))
        breaker.record_failure(0.0)
        assert breaker.allow(1.5)
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success(1.6)
        breaker.record_success(1.7)
        # Two of three probes in: still half-open, still impaired.
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.impaired
        assert breaker.probe_successes == 2
        breaker.record_success(1.8)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.probe_successes == 3

    def test_probe_failure_resets_the_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                               cooldown_seconds=1.0,
                                               half_open_probes=2))
        breaker.record_failure(0.0)
        assert breaker.allow(1.5)
        breaker.record_success(1.6)
        breaker.record_failure(1.7)  # probe failed: back to open
        assert breaker.state == BREAKER_OPEN
        assert breaker.allow(3.0)
        breaker.record_success(3.1)
        # The pre-failure probe does not count toward the new streak.
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.record_success(3.2)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.probe_successes == 3

    def test_default_policy_is_close_on_first_success(self):
        assert BreakerPolicy().half_open_probes == 1
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                               cooldown_seconds=1.0))
        breaker.record_failure(0.0)
        assert breaker.allow(1.5)
        breaker.record_success(1.6)
        assert breaker.state == BREAKER_CLOSED
        assert breaker.probe_successes == 1

    def test_closed_successes_are_not_probes(self):
        breaker = CircuitBreaker(BreakerPolicy())
        breaker.record_success(0.1)
        breaker.record_success(0.2)
        assert breaker.probe_successes == 0


class TestAdmissionGovernor:
    def test_select_tier_steps_with_pressure(self):
        governor = AdmissionGovernor(tiers=((32, 16), (16, 8)),
                                     pressure_thresholds=(0.5, 0.8))
        assert governor.select_tier(0.0, False) == 0
        assert governor.select_tier(0.49, False) == 0
        assert governor.select_tier(0.5, False) == 1
        assert governor.select_tier(0.79, False) == 1
        assert governor.select_tier(0.95, False) == 2

    def test_breaker_impairment_jumps_to_deepest_tier(self):
        governor = AdmissionGovernor(tiers=((32, 16), (16, 8)),
                                     pressure_thresholds=(0.5, 0.8))
        assert governor.select_tier(0.0, True) == 2
        relaxed = AdmissionGovernor(tiers=((32, 16),),
                                    pressure_thresholds=(0.5,),
                                    degrade_on_breaker=False)
        assert relaxed.select_tier(0.0, True) == 0

    def test_params_for_swaps_the_pool(self):
        base = SearchParams(k=5, l_n=64)
        governor = AdmissionGovernor(tiers=((32, 16), (16, 8)),
                                     pressure_thresholds=(0.5, 0.8))
        assert governor.params_for(0, base) is base
        tier1 = governor.params_for(1, base)
        assert (tier1.l_n, tier1.e, tier1.k) == (32, 16, 5)
        tier2 = governor.params_for(2, base)
        assert (tier2.l_n, tier2.e) == (16, 8)
        with pytest.raises(ConfigurationError, match="tier"):
            governor.params_for(3, base)

    def test_params_for_refuses_pool_smaller_than_k(self):
        governor = AdmissionGovernor(tiers=((8, 4),),
                                     pressure_thresholds=(0.5,))
        with pytest.raises(ConfigurationError, match="cannot hold"):
            governor.params_for(1, SearchParams(k=10, l_n=64))

    def test_default_for_halves_down_to_k_floor(self):
        governor = AdmissionGovernor.default_for(SearchParams(k=10,
                                                              l_n=64))
        assert [t[0] for t in governor.tiers] == [32, 16]
        assert all(t[0] >= 16 for t in governor.tiers)  # next_pow2(10)
        shallow = AdmissionGovernor.default_for(SearchParams(k=10,
                                                             l_n=32))
        assert [t[0] for t in shallow.tiers] == [16]
        with pytest.raises(ConfigurationError, match="no degraded tier"):
            AdmissionGovernor.default_for(SearchParams(k=10, l_n=16))

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            AdmissionGovernor(tiers=(), pressure_thresholds=())
        with pytest.raises(ConfigurationError, match="thresholds"):
            AdmissionGovernor(tiers=((32, 16), (16, 8)),
                              pressure_thresholds=(0.5,))
        with pytest.raises(ConfigurationError, match="ascending"):
            AdmissionGovernor(tiers=((32, 16), (16, 8)),
                              pressure_thresholds=(0.8, 0.5))
        with pytest.raises(ConfigurationError, match="strictly decrease"):
            AdmissionGovernor(tiers=((32, 16), (32, 8)),
                              pressure_thresholds=(0.5, 0.8))
        with pytest.raises(ConfigurationError, match="lie in"):
            AdmissionGovernor(tiers=((32, 64),),
                              pressure_thresholds=(0.5,))
