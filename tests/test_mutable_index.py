"""Tests for the crash-safe mutable index: lifecycle, WAL, snapshots."""

import numpy as np
import pytest

from repro.core.params import BuildParams, SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import MutableIndexError
from repro.metrics.distance import get_metric
from repro.mutable import (
    DurableStore,
    MutableIndex,
    OP_DELETE,
    OP_INSERT,
    WalRecord,
    WriteAheadLog,
    compact_graph,
    default_build_params,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.span import SpanTracer
from repro.serve.cache import ResultCache
from repro.serve.engine import ServeEngine

PARAMS = default_build_params()
SEARCH = SearchParams(k=5, l_n=32)


def _corpus(n=120, d=8, seed=0):
    return gaussian_mixture(n, d, n_clusters=6,
                            seed=seed).astype(np.float64)


@pytest.fixture(scope="module")
def built():
    """One seed build shared by the read-only tests."""
    return MutableIndex.build(_corpus(), PARAMS)


def _fresh():
    return MutableIndex.build(_corpus(), PARAMS)


class TestBuild:
    def test_build_validates_and_logs_base_record(self, built):
        built.validate()
        records = built.store.surviving_records()
        assert len(records) == 1
        assert records[0].op == OP_INSERT
        assert records[0].lsn == 1
        assert built.store.meta["d_min"] == PARAMS.d_min

    def test_counts(self, built):
        assert built.n_slots == 120
        assert built.n_live == 120
        assert built.n_tombstones == 0
        assert built.epoch == 0

    def test_points_cast_to_float64(self, built):
        assert built.points.dtype == np.float64

    def test_digest_is_deterministic(self, built):
        assert _fresh().digest() == built.digest()


class TestInsert:
    def test_ids_are_a_contiguous_tail(self):
        index = _fresh()
        ids = index.insert(_corpus(7, seed=9), now=1.0)
        assert np.array_equal(ids, np.arange(120, 127))
        assert index.n_slots == 127
        assert index.epoch == 1
        index.validate()

    def test_inserted_points_are_searchable(self):
        index = _fresh()
        new = _corpus(5, seed=9)
        ids = index.insert(new, now=1.0)
        got, _ = index.search(new, SEARCH.with_overrides(k=1))
        assert set(got[:, 0]) == set(ids.tolist())

    def test_wal_records_the_batch(self):
        index = _fresh()
        new = _corpus(4, seed=9)
        index.insert(new, now=1.0)
        record = index.store.surviving_records()[-1]
        assert record.op == OP_INSERT
        assert np.array_equal(record.points, new)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(MutableIndexError, match="dimensionality"):
            _fresh().insert(np.zeros((2, 3)))

    def test_publishes_metrics(self):
        index = _fresh()
        metrics = MetricsRegistry()
        index.insert(_corpus(3, seed=9), now=1.0, metrics=metrics)
        assert metrics.value("mutate.inserts") == 1
        assert metrics.value("mutate.points_inserted") == 3
        assert metrics.value("mutate.epoch") == 1


class TestDelete:
    def test_deleted_ids_never_returned(self):
        index = _fresh()
        queries = index.points[:10].copy()
        index.delete([0, 5, 9], now=1.0)
        ids, _ = index.search(queries, SEARCH)
        returned = ids[ids >= 0]
        assert not np.any(np.isin(returned, [0, 5, 9]))

    def test_double_delete_rejected(self):
        index = _fresh()
        index.delete([3], now=1.0)
        with pytest.raises(MutableIndexError, match="already tombstoned"):
            index.delete([3], now=2.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(MutableIndexError, match="out of range"):
            _fresh().delete([500])

    def test_deleting_everything_rejected(self):
        index = _fresh()
        with pytest.raises(MutableIndexError, match="last live"):
            index.delete(np.arange(120))

    def test_entry_moves_off_tombstone(self):
        index = _fresh()
        assert index.entry == 0
        index.delete([0], now=1.0)
        assert index.entry == index._first_live()
        assert not index.tombstones[index.entry]

    def test_empty_delete_is_a_no_op(self):
        index = _fresh()
        assert index.delete([]) == 0
        assert index.epoch == 0


class TestCompaction:
    def test_detaches_and_validates(self):
        index = _fresh()
        index.delete([2, 40, 77], now=1.0)
        stats = index.compact(now=2.0)
        assert stats.n_dead == 3
        assert np.all(index.graph.degrees[[2, 40, 77]] == 0)
        index.validate()  # reachable-tombstone contract now enforced

    def test_is_deterministic(self):
        results = []
        for _ in range(2):
            index = _fresh()
            index.delete([2, 40, 77], now=1.0)
            index.compact(now=2.0)
            results.append(index.digest())
        assert results[0] == results[1]

    def test_bridges_keep_live_graph_searchable(self):
        index = _fresh()
        dead = list(range(10, 40))
        index.delete(dead, now=1.0)
        index.compact(now=2.0)
        ids, _ = index.search(index.points[:8].copy(), SEARCH)
        assert np.all(ids >= 0)  # full k results despite the holes
        assert not np.any(np.isin(ids, dead))

    def test_fresh_deletes_after_compaction_validate(self):
        # New tombstones legitimately keep routing until the next pass.
        index = _fresh()
        index.delete([5], now=1.0)
        index.compact(now=2.0)
        index.delete([6], now=3.0)
        index.validate()

    def _unreachable_live(self, index):
        from collections import deque
        g = index.graph
        seen = {index.entry}
        queue = deque([index.entry])
        while queue:
            u = queue.popleft()
            for v in g.neighbor_ids[u, :int(g.degrees[u])]:
                v = int(v)
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return sorted(set(map(int, index.live_ids())) - seen)

    def test_deleting_a_hub_cannot_disconnect_live_vertices(self):
        # Regression: deleting the few inter-cluster hub vertices used
        # to cut off whole clusters — the capacity-bounded bridge merge
        # dropped the far bridge edges in favor of closer neighbors.
        params = BuildParams(d_min=8, d_max=16, n_blocks=4,
                             n_threads=32)
        corpus = gaussian_mixture(80, 8, n_clusters=4,
                                  seed=0).astype(np.float64)
        index = MutableIndex.build(corpus, params)
        rng = np.random.default_rng(8)
        index.delete(np.sort(rng.choice(80, size=7, replace=False)),
                     now=1.0)
        index.compact(now=2.0)
        index.validate()
        assert self._unreachable_live(index) == []

    def test_adjacent_dead_vertices_bridge_as_one_hole(self):
        # A live path crossing a chain of dead vertices has no single
        # dead vertex whose bridge members span it; components must be
        # repaired as a unit.
        index = _fresh()
        v = 10
        chain = sorted({v, *map(int, index.graph.neighbors(v)[:2])})
        index.delete(chain, now=1.0)
        index.compact(now=2.0)
        index.validate()
        assert self._unreachable_live(index) == []

    def test_compact_graph_rejects_bad_mask(self, built):
        with pytest.raises(MutableIndexError, match="shape"):
            compact_graph(built.graph.copy(), built.points,
                          np.zeros(3, dtype=bool))


class TestSearchOverfetch:
    def test_k_preserved_with_many_tombstones(self):
        index = _fresh()
        index.delete(np.arange(30), now=1.0)  # no compaction
        ids, dists = index.search(index.points[40:44].copy(), SEARCH)
        assert ids.shape == (4, SEARCH.k)
        assert np.all(ids >= 0)
        assert np.all(np.isfinite(dists))

    def test_results_sorted_by_distance(self):
        index = _fresh()
        index.delete([1, 2], now=1.0)
        _, dists = index.search(index.points[:6].copy(), SEARCH)
        for row in dists:
            finite = row[np.isfinite(row)]
            assert np.all(np.diff(finite) >= 0)


class TestWal:
    def test_lsn_must_increase(self):
        wal = WriteAheadLog()
        wal.append(WalRecord(lsn=1, op=OP_DELETE, at_seconds=0.0,
                             ids=np.array([1])))
        with pytest.raises(MutableIndexError, match="lsn"):
            wal.append(WalRecord(lsn=1, op=OP_DELETE, at_seconds=1.0,
                                 ids=np.array([2])))

    def test_record_payload_validation(self):
        with pytest.raises(MutableIndexError, match="points"):
            WalRecord(lsn=1, op=OP_INSERT, at_seconds=0.0)
        with pytest.raises(MutableIndexError, match="ids"):
            WalRecord(lsn=1, op=OP_DELETE, at_seconds=0.0)
        with pytest.raises(MutableIndexError, match="unknown WAL op"):
            WalRecord(lsn=1, op="truncate", at_seconds=0.0)

    def test_record_json_round_trip(self):
        record = WalRecord(lsn=3, op=OP_INSERT, at_seconds=1.5,
                           points=np.arange(6.0).reshape(2, 3))
        import json
        restored = WalRecord.from_dict(json.loads(record.to_json()))
        assert restored.lsn == 3
        assert np.array_equal(restored.points, record.points)

    def test_checkpoint_truncates_folded_records(self):
        store = DurableStore()
        store.append(OP_DELETE, 0.0, ids=np.array([1]))
        store.append(OP_DELETE, 1.0, ids=np.array([2]))
        store.install_checkpoint(b"blob", 1)
        assert len(store.surviving_records()) == 1
        assert store.surviving_records()[0].lsn == 2
        with pytest.raises(MutableIndexError, match="backwards"):
            store.install_checkpoint(b"blob2", 0)

    def test_store_digest_tracks_content(self):
        a, b = DurableStore(), DurableStore()
        assert a.digest() == b.digest()
        a.append(OP_DELETE, 0.0, ids=np.array([1]))
        assert a.digest() != b.digest()


class TestCheckpoint:
    def test_round_trip_restores_identical_state(self):
        index = _fresh()
        index.insert(_corpus(6, seed=9), now=1.0)
        index.delete([3, 17], now=2.0)
        index.compact(now=3.0)
        blob = index._to_checkpoint_bytes(index.store.next_lsn - 1)
        restored = MutableIndex.from_checkpoint_bytes(
            blob, index.store)
        assert restored.digest() == index.digest()
        assert restored.build_params == index.build_params
        assert np.array_equal(restored.compacted_tombstones,
                              index.compacted_tombstones)
        assert restored.mutation_seconds == index.mutation_seconds

    def test_checkpoint_installs_and_truncates(self):
        index = _fresh()
        index.delete([3], now=1.0)
        lsn = index.checkpoint(now=2.0)
        assert lsn == 2
        assert index.store.checkpoint is not None
        assert len(index.store.surviving_records()) == 0


class TestSnapshots:
    def test_snapshot_replays_byte_identically_across_mutations(self):
        index = _fresh()
        queries = _corpus(6, seed=11)
        handle = index.snapshot()
        before = handle.search(queries, SEARCH)
        index.insert(_corpus(9, seed=12), now=1.0)
        index.delete([4, 8, 15], now=2.0)
        index.compact(now=3.0)
        after = handle.search(queries, SEARCH)
        assert before.ids.tobytes() == after.ids.tobytes()
        assert before.dists.tobytes() == after.dists.tobytes()

    def test_serving_view_excludes_tombstones_without_filtering(self):
        index = _fresh()
        index.delete([0, 7, 13], now=1.0)
        handle = index.snapshot()
        view_graph, _, entry = handle.serving_view()
        assert np.all(view_graph.degrees[[0, 7, 13]] == 0)
        assert not handle.tombstones[entry]
        report = handle.search(index.points[:6].copy(), SEARCH)
        returned = report.ids[report.ids >= 0]
        assert not np.any(np.isin(returned, [0, 7, 13]))

    def test_snapshot_digest_pins_epoch(self):
        index = _fresh()
        a = index.snapshot()
        index.insert(_corpus(2, seed=13), now=1.0)
        b = index.snapshot()
        assert a.epoch == 0 and b.epoch == 1
        assert a.digest() != b.digest()
        assert a.n_slots == 120 and b.n_slots == 122

    def test_live_ids_excludes_tombstones(self):
        index = _fresh()
        index.delete([1, 2], now=1.0)
        handle = index.snapshot()
        assert handle.n_live == 118
        assert not np.any(np.isin(handle.live_ids(), [1, 2]))


class TestServeFromSnapshot:
    def test_engine_serves_pinned_view(self):
        from repro.serve.trace import synthetic_trace

        index = _fresh()
        index.delete([0, 3], now=1.0)
        handle = index.snapshot()
        cache = ResultCache(capacity=64)
        engine = ServeEngine.from_snapshot(
            handle, params=SEARCH, cache=cache)
        assert engine.snapshot_epoch == handle.epoch
        assert cache.version == handle.epoch
        trace = synthetic_trace(index.points[:20].copy(), 30,
                                mean_qps=1e4, seed=0)
        report = engine.replay(trace)
        for _, (ids, _) in report.results().items():
            returned = ids[ids >= 0]
            assert not np.any(np.isin(returned, [0, 3]))

    def test_pinned_replay_is_byte_deterministic_under_mutation(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.serve.trace import synthetic_trace

        index = _fresh()
        index.delete([7, 30], now=1.0)
        handle = index.snapshot()
        trace = synthetic_trace(index.points[:20].copy(), 40,
                                mean_qps=1e4, seed=3)

        def replay():
            engine = ServeEngine.from_snapshot(handle, params=SEARCH)
            metrics = MetricsRegistry()
            report = engine.replay(trace, metrics=metrics)
            report.verify_against_metrics()
            return report.to_bytes()

        before = replay()
        # Land every mutation kind on the live index, then replay the
        # pinned epoch again: the bytes must not move.
        index.insert(_corpus(10, seed=5), now=2.0)
        index.delete([40, 41, 55], now=3.0)
        index.compact(now=4.0)
        index.checkpoint(now=5.0)
        assert replay() == before

    def test_cache_version_bumps_across_epochs(self):
        index = _fresh()
        cache = ResultCache(capacity=64)
        ServeEngine.from_snapshot(index.snapshot(), cache=cache)
        assert cache.version == 0
        index.delete([5], now=1.0)
        q, ids, dists = (np.zeros(8), np.arange(5), np.zeros(5))
        cache.put(q, SEARCH.signature(), ids, dists)
        ServeEngine.from_snapshot(index.snapshot(), cache=cache)
        assert cache.version == 1
        assert cache.get(q, SEARCH.signature()) is None  # evicted


class TestClusterFromSnapshot:
    def test_external_id_mapping(self):
        from repro.cluster.engine import ClusterEngine

        index = _fresh()
        index.delete([0, 1, 2], now=1.0)
        handle = index.snapshot()
        engine = ClusterEngine.from_snapshot(
            handle, n_shards=2, n_replicas=1,
            params=SearchParams(k=3, l_n=32))
        assert engine.snapshot_epoch == handle.epoch
        assert len(engine.points) == handle.n_live
        # Dense row 0 is external id 3 (ids 0-2 are tombstoned).
        mapped = engine.map_to_external(np.array([[0, -1]]))
        assert mapped[0, 0] == 3
        assert mapped[0, 1] == -1
        # Mapped ids are slot ids: the corpora agree point-for-point.
        metric = get_metric("euclidean")
        assert np.allclose(engine.points[0],
                           index.points[int(mapped[0, 0])])
        assert metric.one_to_many(
            engine.points[0], index.points[[3]])[0] == 0.0

    def test_identity_mapping_without_snapshot(self):
        from repro.cluster.engine import ClusterEngine

        engine = ClusterEngine(_corpus(80), n_shards=2, n_replicas=1,
                               params=SearchParams(k=3, l_n=32))
        ids = np.array([[4, -1, 2]])
        assert np.array_equal(engine.map_to_external(ids), ids)


class TestObservability:
    def test_spans_validate_and_attributes_land(self):
        tracer = SpanTracer()
        index = _fresh()
        index.insert(_corpus(3, seed=9), now=1.0, tracer=tracer)
        index.delete([2], now=2.0, tracer=tracer)
        index.compact(now=3.0, tracer=tracer)
        index.checkpoint(now=4.0, tracer=tracer)
        tracer.finish()
        tracer.validate()
        names = [s.name for s in tracer.find("mutate.insert")]
        assert names == ["mutate.insert"]
        (compaction,) = tracer.find("compaction.pass")
        assert compaction.attributes["n_dead"] == 1
        (ckpt,) = tracer.find("recovery.checkpoint")
        assert ckpt.attributes["last_lsn"] == 4
