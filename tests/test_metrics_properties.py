"""Metric-axiom property tests.

Proximity-graph search only needs a consistent "smaller is closer"
score, but the guarantees each metric *does* make must hold everywhere:
squared Euclidean respects the triangle inequality after a square root,
cosine distance is bounded and shift-free, inner product is bilinear.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.extensions.mips import InnerProductMetric
from repro.metrics.distance import CosineMetric, EuclideanMetric

vectors = arrays(np.float64, (6,),
                 elements=st.floats(min_value=-50, max_value=50))


class TestEuclideanAxioms:
    metric = EuclideanMetric()

    @given(vectors, vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality_after_sqrt(self, x, y, z):
        d = self.metric.one_to_many
        xy = np.sqrt(d(x, y[None, :])[0])
        yz = np.sqrt(d(y, z[None, :])[0])
        xz = np.sqrt(d(x, z[None, :])[0])
        assert xz <= xy + yz + 1e-9

    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_translation_invariance(self, x, y):
        shift = np.full_like(x, 3.7)
        base = self.metric.one_to_many(x, y[None, :])[0]
        moved = self.metric.one_to_many(x + shift,
                                        (y + shift)[None, :])[0]
        assert moved == pytest.approx(base, rel=1e-9, abs=1e-9)

    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_non_negative(self, x, y):
        assert self.metric.one_to_many(x, y[None, :])[0] >= 0.0


class TestCosineAxioms:
    metric = CosineMetric()

    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, x, y):
        d = self.metric.one_to_many(x, y[None, :])[0]
        assert -1e-9 <= d <= 2.0 + 1e-9

    @given(vectors, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_positive_scaling_invariance(self, x, scale):
        rng = np.random.default_rng(0)
        others = rng.normal(size=(4, len(x)))
        base = self.metric.one_to_many(x, others)
        scaled = self.metric.one_to_many(scale * x, others)
        assert np.allclose(base, scaled, atol=1e-9)

    @given(vectors)
    @settings(max_examples=60, deadline=None)
    def test_negation_reflects(self, x):
        from hypothesis import assume
        assume(np.linalg.norm(x) > 1e-6)
        d = self.metric.one_to_many(x, (-x)[None, :])[0]
        assert d == pytest.approx(2.0, abs=1e-9)


class TestInnerProductAxioms:
    metric = InnerProductMetric()

    @given(vectors, vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_bilinearity(self, q, a, b):
        d = self.metric.one_to_many
        combined = d(q, (a + b)[None, :])[0]
        separate = d(q, a[None, :])[0] + d(q, b[None, :])[0]
        assert combined == pytest.approx(separate, rel=1e-9, abs=1e-6)

    @given(vectors, vectors, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_query_scaling_preserves_order(self, q, a, scale):
        from hypothesis import assume
        rng = np.random.default_rng(1)
        others = rng.normal(size=(6, len(q)))
        base = self.metric.one_to_many(q, others)
        # Ordering is only preserved where float arithmetic can see it:
        # a denormal query really does collapse to zero under scaling,
        # and near-tied products may swap under rounding.
        spread = np.min(np.diff(np.sort(base)))
        assume(spread > 1e-9 * max(1.0, float(np.max(np.abs(base)))))
        base_order = np.argsort(base)
        scaled_order = np.argsort(self.metric.one_to_many(scale * q,
                                                          others))
        assert np.array_equal(base_order, scaled_order)


class TestCrossMetricConsistency:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_cosine_equals_euclidean_on_unit_sphere(self, seed):
        """On unit vectors, squared Euclidean = 2 x cosine distance, so
        both metrics rank neighbors identically there."""
        rng = np.random.default_rng(seed)
        q = rng.normal(size=8)
        q /= np.linalg.norm(q)
        pts = rng.normal(size=(10, 8))
        pts /= np.linalg.norm(pts, axis=1, keepdims=True)
        euclid = EuclideanMetric().one_to_many(q, pts)
        cosine = CosineMetric().one_to_many(q, pts)
        assert np.allclose(euclid, 2.0 * cosine, atol=1e-9)
