"""Tests for the cycle cost formulas (Section III-C complexity shapes)."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim.costs import CostTable, DEFAULT_COSTS


class TestCostTableValidation:
    def test_default_table_valid(self):
        assert DEFAULT_COSTS.alu_cycles > 0

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError, match="shuffle_cycles"):
            CostTable(shuffle_cycles=0)

    def test_with_overrides(self):
        other = DEFAULT_COSTS.with_overrides(time_scale=1.0)
        assert other.time_scale == 1.0
        assert other.alu_cycles == DEFAULT_COSTS.alu_cycles


class TestDistanceCosts:
    def test_vector_load_scales_inversely_with_threads(self):
        c = DEFAULT_COSTS
        t4 = c.vector_load_cycles(128, 4)
        t32 = c.vector_load_cycles(128, 32)
        assert t4 > t32
        # Dominated by the per-word streaming term: near 8x between 4 and
        # 32 threads, softened by the fixed overhead.
        assert 3.0 < t4 / t32 < 8.0

    def test_distance_compute_includes_warp_reduction(self):
        c = DEFAULT_COSTS
        base = c.distance_compute_cycles(32, 32)
        # 1 dim per thread -> 2 cycles compute + 5 shuffle steps.
        assert base == pytest.approx(2 + 5 * c.shuffle_cycles)

    def test_bulk_distance_linear_in_candidates(self):
        c = DEFAULT_COSTS
        one = c.bulk_distance_cycles(1, 128, 32)
        many = c.bulk_distance_cycles(10, 128, 32)
        assert many == pytest.approx(10 * one)

    def test_bulk_distance_zero_candidates(self):
        assert DEFAULT_COSTS.bulk_distance_cycles(0, 128, 32) == 0.0

    def test_distance_grows_with_dimensionality(self):
        c = DEFAULT_COSTS
        assert (c.single_distance_cycles(960, 32)
                > c.single_distance_cycles(128, 32)
                > c.single_distance_cycles(32, 32))


class TestGannsPhaseCosts:
    """The phase costs must follow the paper's complexity table."""

    def test_candidate_locate_is_ln_over_nt(self):
        c = DEFAULT_COSTS
        assert (c.ganns_candidate_locate_cycles(64, 32)
                == 2 * c.ganns_candidate_locate_cycles(32, 32))

    def test_locate_parallelizes_with_threads(self):
        c = DEFAULT_COSTS
        assert (c.ganns_candidate_locate_cycles(128, 32)
                < c.ganns_candidate_locate_cycles(128, 4))

    def test_sort_cost_matches_log_squared(self):
        c = DEFAULT_COSTS
        # log2(32)=5 -> 15 stages; 16 pairs/stage over 32 threads -> 1 round.
        assert (c.ganns_sort_cycles(32, 32)
                == 15 * 1 * c.compare_exchange_cycles)

    def test_sort_trivial_sizes(self):
        assert DEFAULT_COSTS.ganns_sort_cycles(1, 32) == 0.0

    def test_merge_cost_log_linear(self):
        c = DEFAULT_COSTS
        small = c.ganns_merge_cycles(32, 32, 32)
        big = c.ganns_merge_cycles(128, 32, 32)
        assert big > small

    def test_structure_cycles_is_sum_of_phases(self):
        c = DEFAULT_COSTS
        total = c.ganns_structure_cycles(64, 32, 32)
        parts = (c.ganns_candidate_locate_cycles(64, 32)
                 + c.ganns_explore_cycles(32, 32)
                 + c.ganns_lazy_check_cycles(64, 32, 32)
                 + c.ganns_sort_cycles(32, 32)
                 + c.ganns_merge_cycles(64, 32, 32))
        assert total == pytest.approx(parts)

    def test_structure_parallelizes_with_threads(self):
        """GANNS's key property: structure ops speed up with n_t."""
        c = DEFAULT_COSTS
        slow = c.ganns_structure_cycles(64, 32, 4)
        fast = c.ganns_structure_cycles(64, 32, 32)
        assert slow / fast > 3.0


class TestSongStageCosts:
    def test_locate_serial_in_degree(self):
        c = DEFAULT_COSTS
        assert (c.song_locate_cycles(32, 64)
                > c.song_locate_cycles(16, 64))

    def test_locate_does_not_parallelize(self):
        """SONG's host-thread cost has no n_t argument at all: the paper's
        bottleneck is structural, not tunable."""
        c = DEFAULT_COSTS
        import inspect
        params = inspect.signature(c.song_locate_cycles).parameters
        assert "n_threads" not in params

    def test_update_log_in_queue_length(self):
        c = DEFAULT_COSTS
        assert (c.song_update_cycles(16, 128)
                > c.song_update_cycles(16, 8))

    def test_song_structure_dominates_ganns_structure(self):
        """The core claim: per iteration, SONG's serialized structure work
        far exceeds GANNS's parallel structure work at n_t = 32."""
        c = DEFAULT_COSTS
        song = c.song_locate_cycles(32, 64) + c.song_update_cycles(16, 64)
        ganns = c.ganns_structure_cycles(64, 32, 32)
        assert song / ganns > 3.0


class TestConstructionCosts:
    def test_backward_insert_scales_with_dmax(self):
        c = DEFAULT_COSTS
        assert (c.backward_insert_cycles(128, 32)
                > c.backward_insert_cycles(32, 32))

    def test_bitonic_sort_cycles_grow_superlinearly(self):
        c = DEFAULT_COSTS
        small = c.bitonic_sort_cycles(256, 32)
        big = c.bitonic_sort_cycles(1024, 32)
        assert big > 4 * small  # n log^2 n growth

    def test_prefix_sum_cheaper_than_sort(self):
        c = DEFAULT_COSTS
        assert (c.prefix_sum_cycles(1024, 32)
                < c.bitonic_sort_cycles(1024, 32))

    def test_adjacency_merge_grows_with_batch(self):
        c = DEFAULT_COSTS
        assert (c.adjacency_merge_cycles(32, 64, 32)
                > c.adjacency_merge_cycles(32, 4, 32))
