#!/usr/bin/env python
"""Cross-family index bake-off (Table: recall / cycles / memory per family).

Builds every registered index family (``nsw``, ``hnsw``, ``knn``,
``cagra``, ...) over the same dataset stand-ins and reports, per
(dataset, family) cell:

- **recall@10** against exact ground truth,
- **search cycles** (simulated-kernel cycle total over the query batch),
- **construction cycles** (the build's simulated seconds converted back
  through the device clock),
- **graph memory bytes**,
- **vector footprint** — bytes per vector of the raw float64/float32
  representations next to the family's quantized tables (fp16, int8,
  pca; built through the :meth:`~repro.core.backend.IndexBackend.
  quantize` hook, same code path the staged search traverses — see
  ``docs/quantization.md``).

All cycle figures come from the family's :class:`~repro.core.backend.
IndexBackend` cost-model hooks, so the comparison is apples-to-apples
across families.  The headline contract — checked by
``scripts/check_bakeoff_smoke.py`` in CI — is that CAGRA's fixed-degree
construction lands below NSW's construction cycles while both hold
recall@10 >= 0.9.

    python benchmarks/bench_bakeoff.py --quick --output bakeoff.json
    python scripts/check_bakeoff_smoke.py bakeoff.json
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import GannsIndex, load_dataset, recall_at_k
from repro.core import BuildParams, backend_families, get_backend
from repro.gpusim import DEFAULT_COSTS, QUADRO_P5000

SCHEMA = "repro.bench_bakeoff/v2"

#: Quantized representations reported in the footprint columns.
QUANT_MODES = ("fp16", "int8", "pca")

#: Families benchmarked by default: every registered one.
FAMILIES = backend_families()

#: (name, n_points, n_queries) stand-ins; quick mode keeps only the first.
DATASETS = [
    ("sift1m", 500, 100),
    ("nytimes", 900, 150),
]


def _vector_footprint(backend, index):
    """Bytes/vector of the raw and quantized point representations.

    The quantized figures amortize side tables (PCA basis, int8 scale
    rows, cached norms) over the point count, so they are honest
    storage costs, not just code widths.
    """
    n_dims = index.points.shape[1]
    footprint = {
        "float64": float(8 * n_dims),
        "float32": float(4 * n_dims),
    }
    for mode in QUANT_MODES:
        table = backend.quantize(index.points, mode, metric=index.metric)
        footprint[mode] = table.bytes_per_vector()
    return footprint


def _bakeoff_cell(dataset, family, k=10, l_n=64, seed=7):
    """Build + search one (dataset, family) cell; returns its metrics."""
    backend = get_backend(family)
    params = BuildParams(d_min=8, d_max=16, seed=seed)
    index = GannsIndex.build(dataset.points, graph_type=family,
                             params=params)
    report = index.search_report(dataset.queries, k=k, l_n=l_n)
    recall = recall_at_k(report.ids, dataset.ground_truth(k))
    return {
        "dataset": dataset.name,
        "family": family,
        "n_points": int(dataset.n_points),
        "n_queries": int(dataset.n_queries),
        "recall_at_10": float(recall),
        "search_cycles": backend.search_cycles(report),
        "search_cycles_per_query": (
            backend.search_cycles(report) / dataset.n_queries),
        "construction_cycles": backend.construction_cycles(
            index.build_report, QUADRO_P5000, DEFAULT_COSTS),
        "memory_bytes": backend.memory_bytes(index.graph),
        "vector_bytes": _vector_footprint(backend, index),
    }


def run_bakeoff(quick, families=FAMILIES):
    """Run the grid; returns the JSON document."""
    datasets = DATASETS[:1] if quick else DATASETS
    cells = []
    for name, n_points, n_queries in datasets:
        dataset = load_dataset(name, n_points=n_points,
                               n_queries=n_queries)
        for family in families:
            cells.append(_bakeoff_cell(dataset, family))
    return {
        "schema": SCHEMA,
        "quick": quick,
        "families": list(families),
        "datasets": [name for name, _, _ in datasets],
        "cells": cells,
    }


def print_table(doc):
    """Render the per-family comparison table."""
    header = (f"{'dataset':<12} {'family':<8} {'recall@10':>9} "
              f"{'search cyc':>12} {'build cyc':>12} {'mem KiB':>9} "
              f"{'f32 B/v':>8} {'fp16':>6} {'int8':>6} {'pca':>6}")
    print(header)
    print("-" * len(header))
    for cell in doc["cells"]:
        vb = cell["vector_bytes"]
        print(f"{cell['dataset']:<12} {cell['family']:<8} "
              f"{cell['recall_at_10']:>9.3f} "
              f"{cell['search_cycles']:>12.0f} "
              f"{cell['construction_cycles']:>12.0f} "
              f"{cell['memory_bytes'] / 1024:>9.1f} "
              f"{vb['float32']:>8.0f} {vb['fp16']:>6.0f} "
              f"{vb['int8']:>6.0f} {vb['pca']:>6.0f}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run only the CI smoke dataset")
    parser.add_argument("--families", nargs="*", default=None,
                        help="subset of families (default: all registered)")
    parser.add_argument("--output", default="BENCH_bakeoff.json",
                        help="where to write the JSON document")
    args = parser.parse_args(argv)

    families = tuple(args.families) if args.families else FAMILIES
    doc = run_bakeoff(quick=args.quick, families=families)
    with open(args.output, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")

    print_table(doc)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
