"""Table III — HNSW construction vs single-thread CPU, all ten datasets.

Same scheme as Table II, with the HNSW extension of Section IV-D: the GPU
builds each layer with GGraphCon level-by-level (using the ID shuffle);
the CPU baseline is the modeled single-thread GraphCon_HNSW.
"""

from __future__ import annotations

from repro.bench.figures import PAPER_TABLE3
from repro.bench.report import format_table
from repro.bench.workloads import ALL_DATASETS


def test_table3_hnsw_construction(config, cache, datasets, emit, benchmark,
                                  cdevice):
    params = config.build_params()
    rows = []
    speedups = {}
    for name in ALL_DATASETS:
        dataset = datasets[name]
        cpu = cache.construction_timing(dataset, params, "cpu-hnsw",
                                        device=cdevice)
        ganns = cache.construction_timing(dataset, params, "hnsw-ganns",
                                      device=cdevice)
        song = cache.construction_timing(dataset, params, "hnsw-song",
                                     device=cdevice)
        ganns_speedup = cpu.seconds / ganns.seconds
        song_speedup = cpu.seconds / song.seconds
        speedups[name] = ganns_speedup
        paper = PAPER_TABLE3[name]
        rows.append([
            name, dataset.n_points,
            cpu.seconds,
            f"{ganns.seconds:.2f} ({ganns_speedup:.0f}x)",
            f"{song.seconds:.2f} ({song_speedup:.0f}x)",
            f"{paper['cpu']:.0f}s",
            f"{paper['cpu'] / paper['ggc_ganns']:.0f}x",
            f"{paper['cpu'] / paper['ggc_song']:.0f}x",
        ])

    table = format_table(
        ["dataset", "n", "cpu (s)", "ggc_ganns", "ggc_song",
         "paper cpu", "paper ganns", "paper song"], rows,
        title="Table III: HNSW construction vs single-thread CPU")
    emit("table3_hnsw", table)

    for name, speedup in speedups.items():
        assert speedup > 3.0, f"{name}: GPU HNSW construction must win"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
