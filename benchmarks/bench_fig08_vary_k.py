"""Figure 8 — throughput vs the result count k at recall ≈ 0.8.

The paper varies k from 1 to 100 on SIFT1M and GIST and reports that the
GANNS-over-SONG speedup stays roughly stable (5-5.3x on SIFT1M, 1.5-2x on
GIST).  Here the accuracy knobs are retuned per k so both algorithms sit
near the same recall, then the speedups across k are compared.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import PAPER_FIG8
from repro.bench.report import format_table
from repro.bench.runner import qps_at_recall, sweep_ganns, sweep_song

K_VALUES = (1, 10, 50, 100)
TARGET_RECALL = 0.8


@pytest.mark.parametrize("name", ["sift1m", "gist"])
def test_fig08_vary_k(name, config, cache, datasets, emit, benchmark):
    dataset = datasets[name]
    graph = cache.nsw_graph(dataset, config.build_params())

    rows = []
    speedups = []
    for k in K_VALUES:
        # The pool must hold at least k results; scale settings with k.
        ganns_settings = [(l_n, e) for l_n, e in config.ganns_settings
                          if l_n >= k]
        song_settings = [pq for pq in config.song_settings if pq >= k]
        ganns_curve = sweep_ganns(graph, dataset, k, ganns_settings)
        song_curve = sweep_song(graph, dataset, k, song_settings)
        ganns_at = qps_at_recall(ganns_curve, TARGET_RECALL)
        song_at = qps_at_recall(song_curve, TARGET_RECALL)
        speedup = ganns_at / song_at
        speedups.append(speedup)
        rows.append([k, ganns_at, song_at, f"{speedup:.2f}x"])

    lo, hi = PAPER_FIG8[name]
    table = format_table(
        ["k", "ganns qps@0.8", "song qps@0.8", "speedup"], rows,
        title=f"Figure 8 [{name}]: throughput vs k at recall "
              f"{TARGET_RECALL}")
    table += (f"\nspeedup range {min(speedups):.2f}-{max(speedups):.2f}x "
              f"(paper: {lo:g}-{hi:g}x)")
    emit(f"fig08_{name}", table)

    assert min(speedups) > 1.0
    # Stability: the spread across k stays within a small factor, as in
    # the paper ("the speedup remains relatively stable as k increases").
    assert max(speedups) / min(speedups) < 3.0

    from repro.core.ganns import ganns_search
    from repro.core.params import SearchParams
    benchmark.pedantic(
        ganns_search, args=(graph, dataset.points, dataset.queries[:100],
                            SearchParams(k=100, l_n=128)),
        rounds=1, iterations=1)
