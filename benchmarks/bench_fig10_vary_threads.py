"""Figure 10 — effect of threads-per-block n_t on SIFT1M.

The paper varies n_t from 4 to 32 and reports, per algorithm, the
distance-computation time and the data-structure-operation time:

- distance time improves ~4x for both (100 ms -> 24 ms);
- GANNS structure time improves ~6x (71 ms -> 12.3 ms);
- SONG structure time does not improve at all — the host thread.
"""

from __future__ import annotations

from repro.baselines.song import SongParams, song_search
from repro.bench.figures import PAPER_FIG10
from repro.bench.report import format_table
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.gpusim.tracker import PhaseCategory

THREADS = (4, 8, 16, 32)


def _category_ms(report):
    seconds = report.category_seconds()
    return (seconds.get(PhaseCategory.DISTANCE, 0.0) * 1e3,
            seconds.get(PhaseCategory.STRUCTURE, 0.0) * 1e3)


def test_fig10_threads_per_block(config, cache, datasets, emit, benchmark):
    dataset = datasets["sift1m"]
    graph = cache.nsw_graph(dataset, config.build_params())

    rows = []
    ganns_struct = {}
    ganns_dist = {}
    song_struct = {}
    for n_t in THREADS:
        ganns = ganns_search(graph, dataset.points, dataset.queries,
                             SearchParams(k=config.k, l_n=64, e=48,
                                          n_threads=n_t))
        song = song_search(graph, dataset.points, dataset.queries,
                           SongParams(k=config.k, pq_bound=64,
                                      n_threads=n_t))
        g_dist, g_struct = _category_ms(ganns)
        s_dist, s_struct = _category_ms(song)
        ganns_dist[n_t], ganns_struct[n_t] = g_dist, g_struct
        song_struct[n_t] = s_struct
        rows.append([n_t, g_dist, g_struct, s_dist, s_struct])

    table = format_table(
        ["n_t", "ganns dist (ms)", "ganns struct (ms)",
         "song dist (ms)", "song struct (ms)"], rows,
        title="Figure 10 [sift1m]: per-stage time vs threads per block")
    paper_d = PAPER_FIG10["distance_ms"]
    paper_s = PAPER_FIG10["ganns_structure_ms"]
    table += (f"\npaper: distance {paper_d[4]:g} -> {paper_d[32]:g} ms, "
              f"GANNS structure {paper_s[4]:g} -> {paper_s[32]:g} ms, "
              f"SONG structure flat")
    emit("fig10_sift1m", table)

    # Shapes: both distance and GANNS-structure scale with n_t; SONG
    # structure does not.
    assert ganns_dist[4] / ganns_dist[32] > 2.5
    assert ganns_struct[4] / ganns_struct[32] > 3.0
    assert song_struct[4] / song_struct[32] < 1.3

    benchmark.pedantic(
        ganns_search, args=(graph, dataset.points, dataset.queries,
                            SearchParams(k=config.k, l_n=64, e=48,
                                         n_threads=4)),
        rounds=1, iterations=1)
