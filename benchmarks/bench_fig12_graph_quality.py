"""Figure 12 — graph quality: recall vs e on three constructions.

On SIFT1M and UKBench stand-ins the paper searches (with GANNS, sweeping
the explored-vertex budget e) graphs built by GNaiveParallel, GGraphCon
and the sequential CPU GraphCon_NSW.  Expected shape: GNaiveParallel's
recall tops out far below the other two (~0.70 vs ~0.92 on SIFT1M at
e = 100), while GGraphCon matches the sequential build.
"""

from __future__ import annotations

import pytest

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.bench.figures import PAPER_FIG12
from repro.bench.report import format_table
from repro.core.ganns import ganns_search
from repro.core.naive import build_nsw_naive_parallel
from repro.core.params import SearchParams
from repro.metrics.recall import recall_at_k

E_VALUES = (8, 16, 32, 64, 100)


@pytest.mark.parametrize("name", ["sift1m", "ukbench"])
def test_fig12_graph_quality(name, config, cache, datasets, emit,
                             benchmark):
    dataset = datasets[name]
    params = config.build_params()
    ground_truth = dataset.ground_truth(config.k)

    ggc_graph = cache.nsw_graph(dataset, params)
    cpu_graph = cache.nsw_graph(dataset, params, builder="cpu")
    # GNaiveParallel at the paper's batching: one point per thread block
    # per round.  Its quality defect is structural (no in-batch links,
    # racy lost-update backward edges), not batch-size-dependent.
    naive_graph = build_nsw_naive_parallel(
        dataset.points, params, metric=dataset.metric_name,
        batch_size=params.n_blocks).graph

    rows = []
    recalls = {"ggc": {}, "cpu": {}, "naive": {}}
    for e in E_VALUES:
        l_n = 128
        search = SearchParams(k=config.k, l_n=l_n, e=min(e, l_n))
        row = [e]
        for label, graph in (("naive", naive_graph), ("ggc", ggc_graph),
                             ("cpu", cpu_graph)):
            report = ganns_search(graph, dataset.points, dataset.queries,
                                  search)
            recall = recall_at_k(report.ids, ground_truth)
            recalls[label][e] = recall
            row.append(recall)
        rows.append(row)

    table = format_table(
        ["e", "gnaiveparallel", "ggraphcon", "graphcon_nsw (cpu)"], rows,
        title=f"Figure 12 [{name}]: graph quality (recall vs e)")
    table += (f"\npaper: naive ceiling ~{PAPER_FIG12['naive_ceiling']:g}, "
              f"ggraphcon/cpu ~{PAPER_FIG12['ggc_ceiling']:g} on SIFT1M")
    emit(f"fig12_{name}", table)

    top_e = E_VALUES[-1]
    # GGraphCon tracks the sequential build...
    assert abs(recalls["ggc"][top_e] - recalls["cpu"][top_e]) < 0.08
    # ...and the naive scheme is visibly worse.
    assert recalls["naive"][top_e] < recalls["ggc"][top_e] - 0.03

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
