"""Figure 9 — effect of dimensionality n_d on GIST at recall ≈ 0.8.

The paper truncates GIST from 960 down to 60 dimensions and finds the
GANNS-over-SONG speedup grows from ~1.5x to ~6x as dimensionality drops:
distance computation shrinks, so SONG's serialized structure operations
dominate ever harder while GANNS parallelizes them away.
"""

from __future__ import annotations

from repro.bench.figures import PAPER_FIG9
from repro.bench.report import format_table
from repro.bench.runner import qps_at_recall, sweep_ganns, sweep_song

DIMS = (960, 480, 240, 120, 60)
TARGET_RECALL = 0.8


def test_fig09_dimensionality(config, cache, datasets, emit, benchmark):
    base = datasets["gist"]

    rows = []
    speedups = {}
    for n_dims in DIMS:
        view = base.truncate_dims(n_dims)
        graph = cache.nsw_graph(view, config.build_params())
        ganns_curve = sweep_ganns(graph, view, config.k,
                                  config.ganns_settings)
        song_curve = sweep_song(graph, view, config.k,
                                config.song_settings)
        ganns_at = qps_at_recall(ganns_curve, TARGET_RECALL)
        song_at = qps_at_recall(song_curve, TARGET_RECALL)
        speedups[n_dims] = ganns_at / song_at
        rows.append([n_dims, ganns_at, song_at,
                     f"{speedups[n_dims]:.2f}x"])

    table = format_table(
        ["n_d", "ganns qps@0.8", "song qps@0.8", "speedup"], rows,
        title="Figure 9 [gist]: effect of dimensionality at recall 0.8")
    table += (f"\npaper: speedup grows from ~{PAPER_FIG9[960]:g}x at 960 "
              f"dims to ~{PAPER_FIG9[60]:g}x at 60 dims")
    emit("fig09_gist", table)

    # The paper's shape: lower dimensionality -> larger speedup.
    assert speedups[60] > speedups[960], \
        "speedup must grow as dimensionality shrinks"
    assert speedups[60] / speedups[960] > 1.5

    from repro.core.ganns import ganns_search
    from repro.core.params import SearchParams
    view = base.truncate_dims(60)
    graph = cache.nsw_graph(view, config.build_params())
    benchmark.pedantic(
        ganns_search, args=(graph, view.points, view.queries,
                            SearchParams(k=config.k, l_n=64)),
        rounds=1, iterations=1)
