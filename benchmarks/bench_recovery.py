#!/usr/bin/env python
"""Recovery benchmark: MTTR vs shard size and WAL depth.

A Scalability study of the self-healing layer's repair-time budget on
the simulated clock (everything here is deterministic — no host
timing):

- **Shard-size sweep** — one replica death over increasingly large
  static shards; MTTR decomposes into detect (heartbeat) + transfer
  (rate-limited repair lane) + deserialize (device decode) + verify
  (anti-entropy digest round trip).
- **WAL-depth sweep** — store-backed shards whose rebuilds must
  replay an ever deeper post-checkpoint WAL delta; the catch-up
  charge is computed through :mod:`repro.mutable.recovery`.

Results merge into the committed ``BENCH_wallclock.json`` under the
``recovery`` key (regenerate with ``make bench-recovery``)::

    PYTHONPATH=src python benchmarks/bench_recovery.py \
        --output BENCH_wallclock.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                "src"))

SHARD_SIZES = (250, 500, 1000, 2000)
# Op counts past the op-16 checkpoint whose surviving WAL delta
# (and replay charge) grows strictly: 1, 3, 5, 6 records.
WAL_OPS = (17, 19, 22, 23)
N_DIMS = 32
HEARTBEAT_SECONDS = 1e-3


def shard_size_sweep(controller):
    """MTTR components for one clean rebuild per shard size."""
    from repro.core.backend import get_backend
    from repro.datasets.synthetic import gaussian_mixture
    from repro.heal import StaticShardSource

    backend = get_backend("nsw")
    rows = []
    for n_points in SHARD_SIZES:
        points = gaussian_mixture(n_points, N_DIMS, n_clusters=8,
                                  cluster_std=0.4, seed=13)
        graph = backend.serving_graph(points, d_min=8, d_max=16,
                                      metric="euclidean")
        source = StaticShardSource(graph, points)
        transfer = controller.transfer_seconds(source.snapshot_bytes)
        deserialize = controller.deserialize_seconds(
            source.snapshot_bytes)
        verify = controller.verify_seconds()
        mttr = (HEARTBEAT_SECONDS + transfer + deserialize + verify)
        rows.append({
            "n_points": n_points,
            "snapshot_bytes": source.snapshot_bytes,
            "detect_seconds": HEARTBEAT_SECONDS,
            "transfer_seconds": transfer,
            "deserialize_seconds": deserialize,
            "verify_seconds": verify,
            "mttr_seconds": mttr,
        })
        print(f"  shard {n_points:5d} pts: "
              f"{source.snapshot_bytes / 1024:8.1f} KiB, "
              f"MTTR {mttr * 1e3:7.3f} ms "
              f"(transfer {transfer * 1e3:.3f} ms, "
              f"deserialize {deserialize * 1e3:.3f} ms)")
    return rows


def wal_depth_sweep(controller):
    """Catch-up charge as the post-checkpoint WAL delta deepens."""
    from repro.heal import StoreShardSource
    from repro.mutable import run_mutation_sim

    rows = []
    for n_ops in WAL_OPS:
        report = run_mutation_sim(n_points=200, n_dims=16,
                                  n_ops=n_ops, seed=2,
                                  compact_every=50,
                                  checkpoint_every=8)
        source = StoreShardSource(report.store)
        transfer = controller.transfer_seconds(source.snapshot_bytes)
        deserialize = controller.deserialize_seconds(
            source.snapshot_bytes)
        catchup = source.catchup_seconds
        mttr = (HEARTBEAT_SECONDS + transfer + deserialize + catchup
                + controller.verify_seconds())
        rows.append({
            "n_ops": n_ops,
            "wal_records": source.wal_records,
            "snapshot_bytes": source.snapshot_bytes,
            "catchup_seconds": catchup,
            "mttr_seconds": mttr,
        })
        print(f"  {n_ops:3d} ops -> {source.wal_records:2d} WAL "
              f"records: catch-up {catchup * 1e3:7.3f} ms, "
              f"MTTR {mttr * 1e3:7.3f} ms")
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_wallclock.json",
                        help="JSON file to merge the 'recovery' key "
                             "into (default BENCH_wallclock.json)")
    args = parser.parse_args(argv)

    from repro.heal import HealPolicy, RepairController

    policy = HealPolicy()
    controller = RepairController(policy)
    print("recovery benchmark (simulated seconds, deterministic)")
    print(f"shard-size sweep (dims={N_DIMS}, heartbeat "
          f"{HEARTBEAT_SECONDS * 1e3:g} ms):")
    shard_rows = shard_size_sweep(controller)
    print(f"WAL-depth sweep (checkpoint every 8 ops):")
    wal_rows = wal_depth_sweep(controller)

    doc = {}
    if os.path.exists(args.output):
        with open(args.output, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    doc["recovery"] = {
        "schema": "recovery-v1",
        "heartbeat_seconds": HEARTBEAT_SECONDS,
        "policy": {
            "repair_bandwidth_fraction":
                policy.repair_bandwidth_fraction,
            "deserialize_cycles_per_byte":
                policy.deserialize_cycles_per_byte,
            "digest_bytes": policy.digest_bytes,
        },
        "shard_size_sweep": shard_rows,
        "wal_depth_sweep": wal_rows,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output} (recovery key)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
