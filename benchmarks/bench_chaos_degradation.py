"""Ablation: graceful degradation vs reject-only under overload + faults.

This is not a paper figure — the paper benchmarks fault-free offline
throughput (Section V).  It is an ablation of the fault-tolerance layer
(docs/fault_model.md): the same overloaded trace, the same injected
fault plan, replayed twice — once with the admission governor stepping
search quality down through its tiers under pressure, once with the
PR-1 reject-only baseline.

The table shows the trade: the governor converts rejections into
explicitly-marked degraded answers (higher completion rate), and the
quality given up is visible per tier as recall against exact ground
truth rather than hidden behind a binary served/rejected split.
"""

from __future__ import annotations

import pytest

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.bench.report import format_table
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.catalog import load_dataset
from repro.datasets.ground_truth import exact_knn
from repro.faults import AdmissionGovernor, named_fault_plan
from repro.metrics.recall import recall_at_k
from repro.serve import BatchPolicy, ServeEngine, synthetic_trace

N_REQUESTS = 4000
MEAN_QPS = 1_000_000.0  # sustained overload: arrivals outrun the device
PARAMS = SearchParams(k=10, l_n=64)


@pytest.fixture(scope="module")
def chaos_setup():
    dataset = load_dataset("sift1m", n_points=1500, n_queries=400)
    graph = build_nsw_cpu(dataset.points, d_min=8, d_max=16).graph
    trace = synthetic_trace(dataset.queries, N_REQUESTS,
                            mean_qps=MEAN_QPS, repeat_fraction=0.1,
                            seed=7)
    plan = named_fault_plan(
        "mild", horizon_seconds=2.0 * N_REQUESTS / MEAN_QPS, seed=3)
    return dataset, graph, trace, plan


def _replay(setup, governor):
    dataset, graph, trace, plan = setup
    policy = BatchPolicy(max_batch=128, max_wait_seconds=5e-4,
                         max_queue=256)
    engine = ServeEngine(graph, dataset.points, PARAMS, policy=policy,
                         faults=plan, governor=governor)
    return engine.replay(trace)


def test_degradation_vs_rejection(chaos_setup, emit):
    dataset, graph, _, _ = chaos_setup
    governor = AdmissionGovernor.default_for(PARAMS)
    governed = _replay(chaos_setup, governor)
    baseline = _replay(chaos_setup, None)

    rows = []
    for mode, report in (("governor", governed),
                         ("reject-only", baseline)):
        tiers = report.per_tier_counts()
        rows.append([
            mode,
            f"{report.completion_rate:.1%}",
            report.n_served, report.n_rejected, report.n_failed,
            ", ".join(f"t{t}: {n}" for t, n in sorted(tiers.items())),
            report.p95_latency * 1e3,
        ])
    table_a = format_table(
        ["mode", "completed", "served", "rejected", "failed",
         "served per tier", "p95 ms"],
        rows,
        title=f"Graceful degradation vs rejection "
              f"({N_REQUESTS} requests @ {MEAN_QPS:,.0f}/s, "
              f"queue cap 256, plan 'mild')")

    # Per-tier recall against exact ground truth over the query pool:
    # what each degradation step actually costs in answer quality.
    truth = exact_knn(dataset.points, dataset.queries, PARAMS.k)
    recall_rows = []
    for tier in sorted(governed.per_tier_counts()):
        tier_params = governor.params_for(tier, PARAMS)
        found = ganns_search(graph, dataset.points, dataset.queries,
                             tier_params)
        recall_rows.append([
            f"tier {tier}", tier_params.l_n, tier_params.e,
            f"{recall_at_k(found.ids, truth):.3f}",
            governed.per_tier_counts()[tier],
        ])
    table_b = format_table(
        ["tier", "l_n", "e", f"recall@{PARAMS.k}", "requests served"],
        recall_rows,
        title="Per-tier recall (the quality the governor trades away)")

    emit("chaos_degradation", table_a + "\n\n" + table_b)

    # Degradation strictly beats rejection on completion under overload.
    assert governed.completion_rate > baseline.completion_rate
    assert governed.n_rejected < baseline.n_rejected
    # The baseline never degrades; the governor visibly does.
    assert baseline.n_degraded == 0
    assert governed.n_degraded > 0
