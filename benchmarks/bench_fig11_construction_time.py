"""Figure 11 — NSW construction time across schemes.

Compares GGraphCon_GANNS, GGraphCon_SONG and GNaiveParallel (and, on the
SIFT1M stand-in, GSerial — the paper quotes its 3810 s against
GGraphCon's 8.5 s in the text).  Expected shape:

- GGraphCon_GANNS is the fastest GGraphCon variant (2-3.3x over
  GGraphCon_SONG on regular datasets, 1.4-2.2x on hard ones);
- GNaiveParallel only slightly outperforms GGraphCon_SONG — the
  merge-phase bookkeeping is cheap;
- GSerial is catastrophically slower.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.figures import PAPER_GGC_KERNEL_SPEEDUP
from repro.bench.report import format_table
from repro.bench.workloads import bench_datasets
from repro.datasets.catalog import DATASET_SPECS

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))
DATASETS = bench_datasets(full=FULL)


@pytest.mark.parametrize("name", DATASETS)
def test_fig11_construction_time(name, config, cache, datasets, emit,
                                 benchmark, cdevice):
    dataset = datasets[name]
    params = config.build_params()

    ganns = cache.construction_timing(dataset, params, "ggc-ganns",
                                      device=cdevice)
    song = cache.construction_timing(dataset, params, "ggc-song",
                                     device=cdevice)
    naive = cache.construction_timing(dataset, params, "naive",
                                      device=cdevice)

    rows = [
        ["ggraphcon_ganns", ganns.seconds],
        ["ggraphcon_song", song.seconds],
        ["gnaiveparallel(song)", naive.seconds],
    ]
    kernel_speedup = song.seconds / ganns.seconds
    hard = DATASET_SPECS[name].hard
    lo, hi = PAPER_GGC_KERNEL_SPEEDUP["hard" if hard else "regular"]

    lines = [format_table(
        ["scheme", "simulated seconds"], rows,
        title=f"Figure 11 [{name}]: NSW construction time "
              f"(n={dataset.n_points}, d_max={params.d_max})")]
    lines.append(
        f"GGC_GANNS over GGC_SONG: {kernel_speedup:.2f}x "
        f"(paper band for {'hard' if hard else 'regular'} datasets: "
        f"{lo:g}-{hi:g}x)")
    lines.append(
        f"GNaiveParallel vs GGC_SONG: "
        f"{song.seconds / naive.seconds:.2f}x faster "
        f"(paper: 'only slightly outperforms')")

    if name == "sift1m":
        serial = cache.construction_timing(dataset, params, "serial",
                                           device=cdevice)
        lines.append(
            f"GSerial: {serial.seconds:.1f} s — "
            f"{serial.seconds / ganns.seconds:.0f}x slower than "
            f"GGC_GANNS (paper: 3810 s vs 8.5 s ≈ 448x)")
        assert serial.seconds / ganns.seconds > 10

    emit(f"fig11_{name}", "\n".join(lines))

    if hard:
        # On hard/high-dimensional stand-ins GANNS's lazy recomputation
        # is inflated by the small scale; near-parity is the honest
        # outcome (the paper reports 1.4-2.2x at full scale).
        assert kernel_speedup > 0.7
    else:
        assert kernel_speedup > 1.2, \
            "the GANNS kernel must accelerate construction"
    assert naive.seconds < song.seconds, \
        "naive parallel must be slightly faster given the same kernel"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
