"""Figure 14 — construction-time scaling with the number of thread blocks.

The paper builds the SIFT1M NSW graph with 50 to 800 thread blocks
(16x more) and reports ~10-13x speedup for both the distance-computation
and the data-structure components of both GGraphCon variants — close to,
but below, the theoretical 16x, because group imbalance and the serial
merge order leave gaps.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import PAPER_FIG14_SPEEDUP
from repro.bench.report import format_table

BLOCKS = (4, 8, 16, 32, 64)


@pytest.mark.parametrize("kernel", ["ganns", "song"])
def test_fig14_thread_blocks(kernel, config, cache, datasets, emit,
                             benchmark, cdevice):
    dataset = datasets["sift1m"]

    rows = []
    times = {}
    for n_blocks in BLOCKS:
        params = config.build_params(n_blocks=n_blocks)
        timing = cache.construction_timing(dataset, params,
                                           f"ggc-{kernel}",
                                           device=cdevice)
        times[n_blocks] = timing
        rows.append([n_blocks, timing.seconds,
                     timing.distance_seconds, timing.structure_seconds])

    speedup = times[BLOCKS[0]].seconds / times[BLOCKS[-1]].seconds
    dist_speedup = (times[BLOCKS[0]].distance_seconds
                    / times[BLOCKS[-1]].distance_seconds)
    struct_speedup = (times[BLOCKS[0]].structure_seconds
                      / times[BLOCKS[-1]].structure_seconds)
    lo, hi = PAPER_FIG14_SPEEDUP

    table = format_table(
        ["n_blocks", "total (s)", "distance (s)", "structure (s)"], rows,
        title=f"Figure 14 [sift1m, ggc_{kernel}]: construction vs blocks "
              f"(scaled device, {BLOCKS[0]}..{BLOCKS[-1]} blocks ~ paper 50..800)")
    table += (f"\n{BLOCKS[0]} -> {BLOCKS[-1]} blocks (16x): total {speedup:.1f}x, distance "
              f"{dist_speedup:.1f}x, structure {struct_speedup:.1f}x "
              f"(paper: ~{lo:g}-{hi:g}x; theoretical 16x)")
    emit(f"fig14_{kernel}", table)

    assert speedup > 3.0, "block scaling must pay off substantially"
    assert speedup < 16.5, "cannot beat the theoretical maximum"
    # Monotone improvement across the sweep.
    seconds = [times[b].seconds for b in BLOCKS]
    assert all(a >= b for a, b in zip(seconds, seconds[1:]))

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
