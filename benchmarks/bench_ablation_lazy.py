"""Ablation — the two lazy strategies that define GANNS.

Not a paper figure, but the design choices DESIGN.md calls out:

1. *Lazy check* (phase 4) on vs off: without the duplicate guard,
   re-discovered vertices flood the pool and recall collapses at the same
   budget, while distance work balloons.
2. *Lazy update vs eager queues*: GANNS's sorted-pool maintenance vs
   SONG's host-thread queue updates under the same cost model — the
   per-iteration structure-cycle gap that powers every speedup in the
   evaluation.
"""

from __future__ import annotations

from repro.baselines.song import SongParams, song_search
from repro.bench.report import format_table
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.gpusim.costs import DEFAULT_COSTS
from repro.gpusim.tracker import PhaseCategory
from repro.metrics.recall import recall_at_k


def test_ablation_lazy_check(config, cache, datasets, emit, benchmark):
    dataset = datasets["sift1m"]
    graph = cache.nsw_graph(dataset, config.build_params())
    ground_truth = dataset.ground_truth(config.k)
    search = SearchParams(k=config.k, l_n=64)

    with_check = ganns_search(graph, dataset.points, dataset.queries,
                              search)
    without = ganns_search(graph, dataset.points, dataset.queries,
                           search, lazy_check=False)

    rows = [
        ["lazy check ON", recall_at_k(with_check.ids, ground_truth),
         with_check.n_distance_computations,
         with_check.queries_per_second()],
        ["lazy check OFF", recall_at_k(without.ids, ground_truth),
         without.n_distance_computations,
         without.queries_per_second()],
    ]
    table = format_table(
        ["variant", "recall", "distances computed", "queries/s"], rows,
        title="Ablation: GANNS phase (4) lazy check on/off (sift1m)")
    emit("ablation_lazy_check", table)

    assert rows[0][1] > rows[1][1] + 0.2, \
        "removing lazy check must collapse recall at fixed budget"

    benchmark.pedantic(
        ganns_search, args=(graph, dataset.points, dataset.queries,
                            search),
        kwargs={"lazy_check": False}, rounds=1, iterations=1)


def test_ablation_lazy_update_vs_eager_queue(config, cache, datasets,
                                             emit, benchmark):
    dataset = datasets["sift1m"]
    graph = cache.nsw_graph(dataset, config.build_params())

    ganns = ganns_search(graph, dataset.points, dataset.queries,
                         SearchParams(k=config.k, l_n=64))
    song = song_search(graph, dataset.points, dataset.queries,
                       SongParams(k=config.k, pq_bound=64))

    def per_iteration(report):
        total_iters = max(float(report.iterations.sum()), 1.0)
        totals = report.tracker.category_totals()
        return (totals.get(PhaseCategory.STRUCTURE, 0.0) / total_iters,
                totals.get(PhaseCategory.DISTANCE, 0.0) / total_iters)

    g_struct, g_dist = per_iteration(ganns)
    s_struct, s_dist = per_iteration(song)
    rows = [
        ["ganns (lazy update)", g_struct, g_dist],
        ["song (eager queues)", s_struct, s_dist],
    ]
    table = format_table(
        ["variant", "structure cycles/iter", "distance cycles/iter"],
        rows,
        title="Ablation: lazy update vs eager queue maintenance (sift1m)")
    theory = DEFAULT_COSTS.ganns_structure_cycles(64, graph.d_max, 32)
    table += (f"\nGANNS analytic structure cycles/iteration: {theory:.0f} "
              f"(matches the charged average)")
    emit("ablation_lazy_update", table)

    assert s_struct / g_struct > 3.0, \
        "eager host-thread queues must cost several times more per " \
        "iteration"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
