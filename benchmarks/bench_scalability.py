"""Scalability — dataset-size sweep (evaluation goal (4) of Section V).

The paper demonstrates scalability by including 3M/8M/10M-point datasets
(UQ_V, DEEP, SIFT10M) in every table; this bench makes the size axis
explicit on one distribution: the SIFT stand-in at 2x steps.  Expected
shape: recall at a fixed budget degrades only slowly with n, search
throughput declines gently (longer walks), and construction time grows
roughly linearly in n.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_table
from repro.bench.runner import sweep_ganns
from repro.core.params import SearchParams
from repro.core.ganns import ganns_search
from repro.datasets.catalog import load_dataset
from repro.metrics.recall import recall_at_k

SIZES = (2000, 4000, 8000)


def test_scalability_dataset_size(config, cache, datasets, emit,
                                  benchmark, cdevice):
    rows = []
    recalls = []
    qps_values = []
    build_seconds = []
    for n in SIZES:
        dataset = load_dataset("sift1m", n_points=n,
                               n_queries=config.n_queries)
        params = config.build_params()
        graph = cache.nsw_graph(dataset, params)
        timing = cache.construction_timing(dataset, params, "ggc-ganns",
                                           device=cdevice)
        report = ganns_search(graph, dataset.points, dataset.queries,
                              SearchParams(k=config.k, l_n=128, e=96))
        recall = recall_at_k(report.ids, dataset.ground_truth(config.k))
        recalls.append(recall)
        qps_values.append(report.queries_per_second())
        build_seconds.append(timing.seconds)
        rows.append([n, recall, qps_values[-1], timing.seconds])

    table = format_table(
        ["n", "recall (l_n=128,e=96)", "queries/s", "build (s)"], rows,
        title="Scalability: SIFT stand-in size sweep")
    growth = build_seconds[-1] / build_seconds[0]
    table += (f"\nbuild-time growth over 4x points: {growth:.1f}x "
              f"(near-linear expected); recall drift: "
              f"{max(recalls) - min(recalls):.3f}")
    emit("scalability_size", table)

    # Recall at a fixed budget degrades gracefully, not off a cliff.
    assert min(recalls) > max(recalls) - 0.35
    # Construction scales sub-quadratically.
    assert growth < 4.0 * 2.5
    # Throughput declines with n but stays the same order of magnitude.
    assert qps_values[-1] > qps_values[0] / 10

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
