"""Ablation — diversity pruning on top of GGraphCon (extension).

The related-work graphs (DPG, NSG, FANNG, HNSW's heuristic) all prune
NSW-style rows for directional diversity.  This ablation composes that
refinement with the paper's pipeline — build with GGraphCon on the GPU,
prune, search with GANNS — and reports the recall-per-budget gain and
the edge reduction.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.graphs.pruning import prune_diversify, pruning_stats
from repro.metrics.recall import recall_at_k


def test_ablation_diversity_pruning(config, cache, datasets, emit,
                                    benchmark):
    dataset = datasets["sift1m"]
    ground_truth = dataset.ground_truth(config.k)
    raw = cache.nsw_graph(dataset, config.build_params())
    pruned = prune_diversify(raw, dataset.points, alpha=1.0,
                             min_degree=8)
    stats = pruning_stats(raw, pruned)

    rows = []
    gains = []
    for e in (8, 16, 32, 64):
        search = SearchParams(k=config.k, l_n=64, e=e)
        raw_report = ganns_search(raw, dataset.points, dataset.queries,
                                  search)
        pruned_report = ganns_search(pruned, dataset.points,
                                     dataset.queries, search)
        raw_recall = recall_at_k(raw_report.ids, ground_truth)
        pruned_recall = recall_at_k(pruned_report.ids, ground_truth)
        gains.append(pruned_recall - raw_recall)
        rows.append([e, raw_recall, pruned_recall,
                     raw_report.queries_per_second(),
                     pruned_report.queries_per_second()])

    table = format_table(
        ["e", "raw recall", "pruned recall", "raw q/s", "pruned q/s"],
        rows,
        title="Ablation: diversity pruning over GGraphCon (sift1m)")
    table += (f"\nedges kept: {stats['kept_fraction']:.1%} "
              f"(mean degree {stats['mean_degree_before']:.1f} -> "
              f"{stats['mean_degree_after']:.1f}); pruning trades some "
              f"recall at a fixed e for much cheaper iterations — "
              f"compare throughput at matched recall")
    emit("ablation_pruning", table)

    assert stats["kept_fraction"] < 1.0
    # The trade: every budget gets faster...
    for row in rows:
        assert row[4] > row[3], "pruned iterations must be cheaper"
    # ...and recall does not collapse.
    assert min(gains) > -0.25

    benchmark.pedantic(
        prune_diversify, args=(raw, dataset.points),
        kwargs={"alpha": 1.0, "min_degree": 8}, rounds=1, iterations=1)
