"""Ablation — GGraphCon group count, and the CPU-GPU transfer remark.

1. *Group count*: GGraphCon partitions points into t + 1 groups; more
   groups means more inter-block parallelism in phase 1 but more merge
   iterations in phase 2.  This sweep shows the time curve and that graph
   quality stays flat — the scheme's whole point is that correctness does
   not depend on the partitioning.
2. *Transfer remark* (Section III-B): the CPU-GPU round trip for a 2000-
   query batch is negligible against the search itself, and stream
   overlap hides it entirely.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.core.construction import build_nsw_gpu
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.gpusim.device import QUADRO_P5000
from repro.gpusim.memory import TransferModel
from repro.metrics.recall import recall_at_k

GROUP_COUNTS = (4, 16, 64, 200, 400)


def test_ablation_group_count(config, cache, datasets, emit, benchmark):
    dataset = datasets["sift1m"]
    ground_truth = dataset.ground_truth(config.k)

    rows = []
    recalls = []
    for n_groups in GROUP_COUNTS:
        params = config.build_params(n_blocks=n_groups)
        report = build_nsw_gpu(dataset.points, params,
                               metric=dataset.metric_name)
        search = ganns_search(report.graph, dataset.points,
                              dataset.queries,
                              SearchParams(k=config.k, l_n=64))
        recall = recall_at_k(search.ids, ground_truth)
        recalls.append(recall)
        rows.append([n_groups, report.seconds,
                     report.phase_seconds.get("local_construction", 0.0),
                     report.phase_seconds.get("merge_search", 0.0),
                     recall])

    table = format_table(
        ["groups", "total (s)", "local phase (s)", "merge phase (s)",
         "search recall"], rows,
        title="Ablation: GGraphCon group count (sift1m)")
    table += ("\nquality is partition-invariant; time trades local-phase "
              "serialization against merge bookkeeping")
    emit("ablation_groups", table)

    assert max(recalls) - min(recalls) < 0.08, \
        "graph quality must not depend on the partitioning"
    # Too few groups wastes parallelism: the 4-group build is slowest.
    totals = [row[1] for row in rows]
    assert totals[0] == max(totals)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_transfer_remark(config, cache, datasets, emit, benchmark):
    dataset = datasets["sift1m"]
    graph = cache.nsw_graph(dataset, config.build_params())
    model = TransferModel(QUADRO_P5000)

    report = ganns_search(graph, dataset.points, dataset.queries,
                          SearchParams(k=100, l_n=128))
    compute = report.launch().seconds
    # Scale the remark to the paper's batch: 2000 queries, k = 100.
    per_query = compute / report.n_queries
    compute_2000 = per_query * 2000
    transfer = model.round_trip_seconds(2000, dataset.n_dims, 100)
    exposed = model.overlappable(transfer, compute_2000)

    rows = [
        ["search compute (2000 queries)", compute_2000 * 1e3],
        ["PCIe round trip (2000 queries, k=100)", transfer * 1e3],
        ["exposed transfer after stream overlap", exposed * 1e3],
    ]
    table = format_table(["quantity", "milliseconds"], rows,
                         title="Section III-B remark: data transfer is "
                               "negligible")
    table += (f"\ntransfer/compute = {transfer / compute_2000:.3f} "
              f"(paper: 'the time of data transfer ... is negligible')")
    emit("transfer_remark", table)

    assert transfer < 0.25 * compute_2000
    assert exposed == 0.0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
