"""Ablation — visited-marking strategies (the Section III-A argument).

The paper rejects the bitmap ("high latency of the random memory
accesses ... and the limited on-chip memory") and notes the bloom
filter's accuracy hazard before SONG settles on the open-addressing
hash — and GANNS then removes the structure entirely via lazy check.
This benchmark runs SONG under all three strategies plus GANNS and
shows the quantitative version of that argument.
"""

from __future__ import annotations

from repro.baselines.song import SongParams, song_search
from repro.baselines.visited import Bitmap, make_visited_set
from repro.bench.report import format_table
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.gpusim.device import QUADRO_P5000
from repro.metrics.recall import recall_at_k


def test_ablation_visited_strategies(config, cache, datasets, emit,
                                     benchmark):
    dataset = datasets["sift1m"]
    graph = cache.nsw_graph(dataset, config.build_params())
    ground_truth = dataset.ground_truth(config.k)

    rows = []
    qps = {}
    for strategy in ("hash", "bloom", "bitmap"):
        report = song_search(graph, dataset.points, dataset.queries,
                             SongParams(k=config.k, pq_bound=64,
                                        visited_strategy=strategy))
        qps[strategy] = report.queries_per_second()
        rows.append([f"song/{strategy}",
                     recall_at_k(report.ids, ground_truth),
                     qps[strategy], report.structure_fraction()])

    deleting = song_search(graph, dataset.points, dataset.queries,
                           SongParams(k=config.k, pq_bound=64,
                                      visited_deletion=True))
    qps["hash+deletion"] = deleting.queries_per_second()
    rows.append(["song/hash+deletion (fixed 2k H)",
                 recall_at_k(deleting.ids, ground_truth),
                 qps["hash+deletion"], deleting.structure_fraction()])

    ganns = ganns_search(graph, dataset.points, dataset.queries,
                         SearchParams(k=config.k, l_n=64))
    qps["ganns"] = ganns.queries_per_second()
    rows.append(["ganns/lazy-check",
                 recall_at_k(ganns.ids, ground_truth),
                 qps["ganns"], ganns.structure_fraction()])

    table = format_table(
        ["variant", "recall", "queries/s", "structure share"], rows,
        title="Ablation: visited-marking strategies (sift1m)")
    bitmap_mem = Bitmap(n_vertices=1_000_000).memory_bytes()
    table += (f"\nbitmap at the paper's 1M-point scale: {bitmap_mem:,} B "
              f"per query block — vs {QUADRO_P5000.shared_mem_per_block_bytes:,} B "
              f"of shared memory (Section III-A's objection)")
    emit("ablation_visited", table)

    # The paper's ranking: hash beats bitmap; lazy check beats them all.
    assert qps["hash"] > qps["bitmap"]
    assert qps["ganns"] > qps["hash"]

    benchmark.pedantic(
        song_search, args=(graph, dataset.points, dataset.queries[:50],
                           SongParams(k=config.k, pq_bound=64,
                                      visited_strategy="bitmap")),
        rounds=1, iterations=1)
