"""Figure 13 — construction time vs d_max (GloVe200, UKBench).

The paper varies d_max from 32 to 128 (with d_min = d_max / 2) and finds
the construction time of both GGraphCon variants grows gently and almost
linearly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import format_table

D_MAX_VALUES = (32, 64, 96, 128)


@pytest.mark.parametrize("name", ["glove200", "ukbench"])
def test_fig13_vary_dmax(name, config, cache, datasets, emit, benchmark,
                                  cdevice):
    dataset = datasets[name]

    rows = []
    ganns_times = []
    song_times = []
    for d_max in D_MAX_VALUES:
        params = config.build_params(d_min=d_max // 2, d_max=d_max)
        ganns = cache.construction_timing(dataset, params, "ggc-ganns",
                                      device=cdevice)
        song = cache.construction_timing(dataset, params, "ggc-song",
                                     device=cdevice)
        ganns_times.append(ganns.seconds)
        song_times.append(song.seconds)
        rows.append([d_max, d_max // 2, ganns.seconds, song.seconds])

    table = format_table(
        ["d_max", "d_min", "ggc_ganns (s)", "ggc_song (s)"], rows,
        title=f"Figure 13 [{name}]: construction time vs d_max")

    # Linearity check: fit seconds ~ a * d_max + b and measure R^2.
    def r_squared(times):
        x = np.asarray(D_MAX_VALUES, dtype=np.float64)
        y = np.asarray(times)
        coeffs = np.polyfit(x, y, 1)
        fitted = np.polyval(coeffs, x)
        residual = ((y - fitted) ** 2).sum()
        total = ((y - y.mean()) ** 2).sum()
        return 1.0 - residual / total if total else 1.0

    r2_ganns = r_squared(ganns_times)
    r2_song = r_squared(song_times)
    table += (f"\nlinear-fit R^2: ggc_ganns {r2_ganns:.3f}, ggc_song "
              f"{r2_song:.3f} (paper: 'almost linear')")
    emit(f"fig13_{name}", table)

    assert ganns_times[-1] > ganns_times[0], "time must grow with d_max"
    assert r2_ganns > 0.9 and r2_song > 0.9, "growth must be near-linear"
    # Sub-quadratic in the degree budget: d_max and d_min (and with it
    # the construction beam width) all quadruple across the sweep, so a
    # naive bound is 16x; "almost linear" growth stays well inside it.
    assert ganns_times[-1] / ganns_times[0] < 16.0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
