#!/usr/bin/env python
"""Wall-clock benchmark: fast execution backend vs the reference path.

Unlike the ``bench_fig*.py`` suite (which measures *simulated* cycles),
this harness times real host seconds.  Each workload builds its
fixtures once, runs both backends best-of-N, asserts the two backends
returned identical neighbor ids, and records the speedup.  The result
is written as JSON; the committed ``BENCH_wallclock.json`` at the repo
root is the tracked baseline (regenerate with ``make bench-wallclock``).

    PYTHONPATH=src python benchmarks/bench_wallclock.py            # full
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quick    # CI

``--quick`` runs only the ``smoke`` workload, which the CI perf gate
(``scripts/check_perf_smoke.py``) requires to stay >= 1.5x.  The full
set adds batched-search workloads shaped like the paper's Figure 6
throughput runs and a serving replay; the acceptance baseline requires
>= 3x on at least one of them.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.perf.backend import FAST, REFERENCE
from repro.serve.engine import ServeEngine
from repro.serve.scheduler import BatchPolicy
from repro.serve.trace import synthetic_trace

SCHEMA = "repro.bench_wallclock/v1"


def _best_of(fn, repeats):
    """Best-of-``repeats`` wall-clock seconds, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _search_workload(name, n, dims, n_queries, l_n, dtype, repeats):
    """Batched GANNS search, fig06-style: one graph, one query batch."""
    dtype = np.dtype(dtype)
    points = gaussian_mixture(n, dims, seed=0).astype(dtype)
    queries = gaussian_mixture(n_queries, dims, seed=1).astype(dtype)
    graph = build_nsw_cpu(points, d_min=8, d_max=16).graph

    def run(backend):
        params = SearchParams(k=10, l_n=l_n, backend=backend)
        return _best_of(
            lambda: ganns_search(graph, points, queries, params,
                                 dtype=dtype), repeats)

    ref_seconds, ref = run(REFERENCE)
    fast_seconds, fast = run(FAST)
    return {
        "name": name,
        "kind": "ganns_search",
        "config": {"n_points": n, "n_dims": dims, "n_queries": n_queries,
                   "l_n": l_n, "dtype": dtype.name},
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "ids_match": ref.ids.tobytes() == fast.ids.tobytes(),
    }


def _serve_workload(name, repeats):
    """Serving replay: thousands of micro-batches through ServeEngine.

    The arena cache earns its keep here — every dispatch reuses the
    same buffers, so the fast path's steady-state allocation rate is
    near zero.
    """
    dtype = np.dtype(np.float32)
    points = gaussian_mixture(8000, 64, seed=0).astype(dtype)
    pool = gaussian_mixture(1500, 64, seed=1).astype(dtype)
    graph = build_nsw_cpu(points, d_min=8, d_max=16).graph
    trace = synthetic_trace(pool, 3000, mean_qps=240_000.0,
                            queries_per_request=4, seed=7)
    # Throughput-tier policy: wide micro-batches keep the kernel in its
    # batched regime, which is where the arena + GEMM path pays off.
    policy = BatchPolicy(max_batch=1024, max_wait_seconds=0.004,
                         max_queue=16384)

    def run(backend):
        engine = ServeEngine(
            graph, points,
            params=SearchParams(k=10, l_n=64, backend=backend),
            policy=policy)
        return _best_of(lambda: engine.replay(trace), repeats)

    ref_seconds, ref = run(REFERENCE)
    fast_seconds, fast = run(FAST)
    ref_ids = {o.request_id: o.ids.tobytes()
               for o in ref.outcomes if o.served}
    fast_ids = {o.request_id: o.ids.tobytes()
                for o in fast.outcomes if o.served}
    return {
        "name": name,
        "kind": "serve_replay",
        "config": {"n_points": 8000, "n_dims": 64, "n_requests": 3000,
                   "queries_per_request": 4, "l_n": 64,
                   "max_batch": 1024, "dtype": dtype.name},
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "ids_match": ref_ids == fast_ids,
    }


def run_workloads(quick, repeats):
    """Run the selected workload set; returns the JSON document."""
    workloads = [
        _search_workload("smoke", n=4000, dims=64, n_queries=1000,
                         l_n=64, dtype=np.float32, repeats=repeats),
    ]
    if not quick:
        workloads.append(_search_workload(
            "fig06_batch_d128", n=8000, dims=128, n_queries=2000,
            l_n=64, dtype=np.float32, repeats=repeats))
        workloads.append(_search_workload(
            "fig06_batch_d256", n=8000, dims=256, n_queries=2000,
            l_n=64, dtype=np.float32, repeats=repeats))
        workloads.append(_serve_workload("serve_replay", repeats=repeats))
    return {
        "schema": SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "workloads": workloads,
        "best_speedup": max(w["speedup"] for w in workloads),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run only the CI smoke workload")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--output", default="BENCH_wallclock.json",
                        help="where to write the JSON document")
    args = parser.parse_args(argv)

    doc = run_workloads(quick=args.quick, repeats=args.repeats)
    with open(args.output, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")

    print(f"{'workload':<20} {'reference':>10} {'fast':>10} {'speedup':>9}"
          f" {'ids':>5}")
    for w in doc["workloads"]:
        print(f"{w['name']:<20} {w['reference_seconds']:>9.2f}s "
              f"{w['fast_seconds']:>9.2f}s {w['speedup']:>8.2f}x "
              f"{'ok' if w['ids_match'] else 'DRIFT':>5}")
    print(f"wrote {args.output}")
    if not all(w["ids_match"] for w in doc["workloads"]):
        print("ERROR: backends disagree on neighbor ids", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
