#!/usr/bin/env python
"""Wall-clock benchmark: fast / quantized backends vs the reference path.

Unlike the ``bench_fig*.py`` suite (which measures *simulated* cycles),
this harness times real host seconds.  Each workload builds its
fixtures once, runs every configured variant best-of-N, and records the
speedups.  The result is written as JSON; the committed
``BENCH_wallclock.json`` at the repo root is the tracked baseline
(regenerate with ``make bench-wallclock``).

    PYTHONPATH=src python benchmarks/bench_wallclock.py              # full
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quick      # CI
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quant-smoke

Workload kinds (the paper's Figure 6 batched-search shapes plus the
Figure 10/11-style construction runs):

- ``ganns_search`` — exact search, reference vs fast; the two backends
  must return byte-identical neighbor ids (``ids_match``).
- ``quant_search`` — quantized staged search (compressed traversal +
  exact rerank; see ``docs/quantization.md``).  **Lossy**, so instead
  of ``ids_match`` these rows carry honest accounting: recall@10 of
  the exact and quantized searches against brute-force ground truth
  (``recall_exact`` / ``recall_quant`` / ``recall_delta``), the
  bytes-per-vector footprint of both representations, and a
  ``deterministic`` flag (two runs byte-identical).
- ``construction`` — graph builds: GGraphCon NSW reference vs fast
  (``digest_match`` replaces ``ids_match``), and the CAGRA build as a
  single-backend timing with a determinism check.
- ``serve_replay`` — thousands of micro-batches through ServeEngine.

``--quick`` runs only the ``smoke`` workload, which the CI perf gate
(``scripts/check_perf_smoke.py``) requires to stay >= 1.5x.
``--quant-smoke`` runs only the ``quant_smoke`` workload for the CI
quant gate (``scripts/check_quant_smoke.py``): quantized staged search
>= 1.5x over the exact fast backend with recall@10 within 0.02 — the
reference backend is not timed there, so ``reference_seconds`` is null.
The full set's acceptance baseline requires >= 3x on at least one exact
workload and >= 4x reference-relative on a quantized d=256 workload
with recall@10 within 0.01 of exact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.core.cagra import build_cagra_gpu
from repro.core.construction import build_nsw_gpu
from repro.core.ganns import ganns_search
from repro.core.params import BuildParams, SearchParams
from repro.datasets.ground_truth import exact_knn
from repro.datasets.synthetic import gaussian_mixture
from repro.graphs import graph_digest
from repro.metrics.recall import recall_at_k
from repro.perf.backend import FAST, REFERENCE
from repro.perf.quant import quantize_points
from repro.serve.engine import ServeEngine
from repro.serve.scheduler import BatchPolicy
from repro.serve.trace import synthetic_trace

SCHEMA = "repro.bench_wallclock/v2"

K = 10


def _best_of(fn, repeats):
    """Best-of-``repeats`` wall-clock seconds, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _search_fixture(n, dims, n_queries):
    """One graph + query batch, fig06-style (shared across variants)."""
    points = gaussian_mixture(n, dims, seed=0).astype(np.float32)
    queries = gaussian_mixture(n_queries, dims, seed=1).astype(np.float32)
    graph = build_nsw_cpu(points, d_min=8, d_max=16).graph
    return graph, points, queries


def _search_workload(name, n, dims, n_queries, l_n, dtype, repeats,
                     fixture=None):
    """Batched exact GANNS search: reference vs fast, ids must match."""
    dtype = np.dtype(dtype)
    graph, points, queries = fixture or _search_fixture(n, dims, n_queries)

    def run(backend):
        params = SearchParams(k=K, l_n=l_n, backend=backend)
        return _best_of(
            lambda: ganns_search(graph, points, queries, params,
                                 dtype=dtype), repeats)

    ref_seconds, ref = run(REFERENCE)
    fast_seconds, fast = run(FAST)
    return {
        "name": name,
        "kind": "ganns_search",
        "config": {"n_points": n, "n_dims": dims, "n_queries": n_queries,
                   "l_n": l_n, "dtype": dtype.name},
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "ids_match": ref.ids.tobytes() == fast.ids.tobytes(),
    }


def _quant_workload(name, fixture, n, dims, n_queries, l_n, quant,
                    rerank_factor, repeats, fast_seconds=None,
                    ref_seconds=None):
    """Quantized staged search with honest recall/footprint accounting.

    ``fast_seconds``/``ref_seconds`` let callers share exact-path
    timings measured once per fixture; ``ref_seconds=None`` records the
    row without a reference-relative speedup (CI quant-smoke mode).
    """
    graph, points, queries = fixture
    gt = exact_knn(points, queries, K, graph.metric_name)

    def run(**extra):
        params = SearchParams(k=K, l_n=l_n, backend=FAST, **extra)
        return _best_of(
            lambda: ganns_search(graph, points, queries, params), repeats)

    if fast_seconds is None:
        fast_seconds, exact_rep = run()
    else:
        _, exact_rep = _best_of(
            lambda: ganns_search(
                graph, points, queries,
                SearchParams(k=K, l_n=l_n, backend=FAST)), 1)
    quant_seconds, quant_rep = run(quant=quant, rerank_factor=rerank_factor)
    _, again = run(quant=quant, rerank_factor=rerank_factor)
    deterministic = (quant_rep.ids.tobytes() == again.ids.tobytes()
                     and quant_rep.dists.tobytes() == again.dists.tobytes())

    recall_exact = recall_at_k(exact_rep.ids, gt)
    recall_quant = recall_at_k(quant_rep.ids, gt)
    table = quantize_points(points, quant, graph.metric_name)
    exact_bpv = float(points.dtype.itemsize * dims)
    quant_bpv = table.bytes_per_vector()
    return {
        "name": name,
        "kind": "quant_search",
        "config": {"n_points": n, "n_dims": dims, "n_queries": n_queries,
                   "l_n": l_n, "quant": quant,
                   "rerank_factor": rerank_factor,
                   "dtype": points.dtype.name},
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "quant_seconds": quant_seconds,
        "speedup": (None if ref_seconds is None
                    else ref_seconds / quant_seconds),
        "speedup_vs_fast": fast_seconds / quant_seconds,
        "recall_exact": recall_exact,
        "recall_quant": recall_quant,
        "recall_delta": recall_exact - recall_quant,
        "bytes_per_vector_exact": exact_bpv,
        "bytes_per_vector_quant": quant_bpv,
        "footprint_reduction": exact_bpv / quant_bpv,
        "deterministic": deterministic,
    }


def _d256_workloads(repeats):
    """The fig06 d=256 exact row plus quantized variants on one fixture.

    The quantized rows reuse the exact row's reference/fast seconds, so
    every d=256 speedup in the document is measured on the same graph,
    same queries, same machine state.
    """
    n, dims, n_queries, l_n = 8000, 256, 2000, 64
    fixture = _search_fixture(n, dims, n_queries)
    exact_row = _search_workload(
        "fig06_batch_d256", n=n, dims=dims, n_queries=n_queries, l_n=l_n,
        dtype=np.float32, repeats=repeats, fixture=fixture)
    rows = [exact_row]
    for quant, rerank_factor in (("pca", 1), ("pca", 2), ("int8", 1)):
        rows.append(_quant_workload(
            f"quant_d256_{quant}_rf{rerank_factor}", fixture,
            n=n, dims=dims, n_queries=n_queries, l_n=l_n, quant=quant,
            rerank_factor=rerank_factor, repeats=repeats,
            fast_seconds=exact_row["fast_seconds"],
            ref_seconds=exact_row["reference_seconds"]))
    return rows


def _quant_smoke_workload(repeats):
    """The CI quant gate's workload: pca rf=1 vs exact fast, d=256.

    Wide query batch (m=4000) so the staged path's advantage is well
    clear of the 1.5x gate; the reference backend is skipped to keep
    the CI job short.
    """
    n, dims, n_queries, l_n = 8000, 256, 4000, 64
    fixture = _search_fixture(n, dims, n_queries)
    return _quant_workload(
        "quant_smoke", fixture, n=n, dims=dims, n_queries=n_queries,
        l_n=l_n, quant="pca", rerank_factor=1, repeats=repeats)


def _nsw_construction_workload(repeats):
    """GGraphCon NSW build (Figure 10-style): reference vs fast.

    The two backends must produce byte-identical adjacency
    (``digest_match`` — the construction analogue of ``ids_match``).
    """
    n, dims = 4000, 64
    points = gaussian_mixture(n, dims, seed=0).astype(np.float32)
    params = BuildParams(d_min=8, d_max=16, n_blocks=100)

    def run(backend):
        return _best_of(
            lambda: build_nsw_gpu(points, params, backend=backend),
            repeats)

    ref_seconds, ref = run(REFERENCE)
    fast_seconds, fast = run(FAST)
    return {
        "name": "build_nsw_d64",
        "kind": "construction",
        "config": {"n_points": n, "n_dims": dims, "d_min": 8, "d_max": 16,
                   "n_blocks": 100, "dtype": "float32"},
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "digest_match": (graph_digest(ref.graph)
                         == graph_digest(fast.graph)),
    }


def _cagra_construction_workload():
    """CAGRA build (Figure 11-style): single-backend timing.

    ``build_cagra_gpu`` has no reference/fast split, so this row
    records absolute seconds plus a determinism check (two builds must
    produce the same graph digest).
    """
    n, dims = 2000, 64
    points = gaussian_mixture(n, dims, seed=0).astype(np.float32)
    params = BuildParams(d_min=8, d_max=16)

    def run():
        return build_cagra_gpu(points, params, graph_degree=16,
                               knn_iterations=4)

    seconds, first = _best_of(run, 1)
    again = run()
    return {
        "name": "build_cagra_d64",
        "kind": "construction",
        "config": {"n_points": n, "n_dims": dims, "graph_degree": 16,
                   "knn_iterations": 4, "dtype": "float32"},
        "build_seconds": seconds,
        "digest_match": graph_digest(first.graph)
                        == graph_digest(again.graph),
    }


def _serve_workload(name, repeats):
    """Serving replay: thousands of micro-batches through ServeEngine.

    The arena cache earns its keep here — every dispatch reuses the
    same buffers, so the fast path's steady-state allocation rate is
    near zero.
    """
    dtype = np.dtype(np.float32)
    points = gaussian_mixture(8000, 64, seed=0).astype(dtype)
    pool = gaussian_mixture(1500, 64, seed=1).astype(dtype)
    graph = build_nsw_cpu(points, d_min=8, d_max=16).graph
    trace = synthetic_trace(pool, 3000, mean_qps=240_000.0,
                            queries_per_request=4, seed=7)
    # Throughput-tier policy: wide micro-batches keep the kernel in its
    # batched regime, which is where the arena + GEMM path pays off.
    policy = BatchPolicy(max_batch=1024, max_wait_seconds=0.004,
                         max_queue=16384)

    def run(backend):
        engine = ServeEngine(
            graph, points,
            params=SearchParams(k=K, l_n=64, backend=backend),
            policy=policy)
        return _best_of(lambda: engine.replay(trace), repeats)

    ref_seconds, ref = run(REFERENCE)
    fast_seconds, fast = run(FAST)
    ref_ids = {o.request_id: o.ids.tobytes()
               for o in ref.outcomes if o.served}
    fast_ids = {o.request_id: o.ids.tobytes()
                for o in fast.outcomes if o.served}
    return {
        "name": name,
        "kind": "serve_replay",
        "config": {"n_points": 8000, "n_dims": 64, "n_requests": 3000,
                   "queries_per_request": 4, "l_n": 64,
                   "max_batch": 1024, "dtype": dtype.name},
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "ids_match": ref_ids == fast_ids,
    }


def run_workloads(quick, repeats, quant_smoke=False):
    """Run the selected workload set; returns the JSON document."""
    if quant_smoke:
        workloads = [_quant_smoke_workload(repeats)]
    else:
        workloads = [
            _search_workload("smoke", n=4000, dims=64, n_queries=1000,
                             l_n=64, dtype=np.float32, repeats=repeats),
        ]
        if not quick:
            workloads.append(_search_workload(
                "fig06_batch_d128", n=8000, dims=128, n_queries=2000,
                l_n=64, dtype=np.float32, repeats=repeats))
            workloads.extend(_d256_workloads(repeats))
            workloads.append(_quant_smoke_workload(repeats))
            workloads.append(_nsw_construction_workload(repeats))
            workloads.append(_cagra_construction_workload())
            workloads.append(_serve_workload("serve_replay",
                                             repeats=repeats))
    speedups = [w["speedup"] for w in workloads
                if w.get("speedup") is not None]
    return {
        "schema": SCHEMA,
        "quick": quick,
        "quant_smoke": quant_smoke,
        "repeats": repeats,
        "workloads": workloads,
        "best_speedup": max(speedups) if speedups else None,
    }


def _fmt_seconds(value):
    return "      -" if value is None else f"{value:>6.2f}s"


def print_table(doc):
    """Human-readable summary of the JSON document."""
    print(f"{'workload':<22} {'reference':>9} {'fast':>7} {'quant':>7}"
          f" {'speedup':>8} {'ok':>3}")
    for w in doc["workloads"]:
        if w["kind"] == "quant_search":
            speed = w["speedup"] if w["speedup"] is not None \
                else w["speedup_vs_fast"]
            ok = w["deterministic"] and abs(w["recall_delta"]) <= 0.02
            print(f"{w['name']:<22} {_fmt_seconds(w['reference_seconds'])}"
                  f" {_fmt_seconds(w['fast_seconds'])}"
                  f" {_fmt_seconds(w['quant_seconds'])}"
                  f" {speed:>7.2f}x {'yes' if ok else 'NO':>3}")
            print(f"{'':<22}   recall {w['recall_quant']:.4f}"
                  f" (exact {w['recall_exact']:.4f},"
                  f" delta {w['recall_delta']:+.4f}),"
                  f" {w['bytes_per_vector_quant']:.0f} B/vec"
                  f" ({w['footprint_reduction']:.1f}x smaller)")
        elif "speedup" in w:
            ok = w.get("ids_match", w.get("digest_match", False))
            print(f"{w['name']:<22} {_fmt_seconds(w['reference_seconds'])}"
                  f" {_fmt_seconds(w['fast_seconds'])} {'':>7}"
                  f" {w['speedup']:>7.2f}x {'yes' if ok else 'NO':>3}")
        else:
            print(f"{w['name']:<22} {'':>9} {'':>7} {'':>7}"
                  f" {w['build_seconds']:>6.2f}s"
                  f" {'yes' if w['digest_match'] else 'NO':>3}")
    if doc["best_speedup"] is not None:
        print(f"\nbest speedup: {doc['best_speedup']:.2f}x")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run only the CI smoke workload")
    parser.add_argument("--quant-smoke", action="store_true",
                        help="run only the CI quant-smoke workload")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--output", default="BENCH_wallclock.json",
                        help="where to write the JSON document")
    args = parser.parse_args(argv)

    doc = run_workloads(quick=args.quick, repeats=args.repeats,
                        quant_smoke=args.quant_smoke)
    with open(args.output, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")

    print_table(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
