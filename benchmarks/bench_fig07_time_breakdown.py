"""Figure 7 — execution-time breakdown at recall ≈ 0.8.

For each dataset, pick the operating point of each algorithm nearest
recall 0.8 and split its simulated time into distance computation vs
data-structure operations.  The paper's headline: SONG spends 50-90% on
structure operations; GANNS's structure share is much smaller (and a bit
higher on the hard datasets, which keep more candidates alive).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.figures import PAPER_FIG7_SONG_STRUCTURE_SHARE
from repro.bench.report import format_table
from repro.bench.runner import closest_point, sweep_ganns, sweep_song
from repro.bench.workloads import bench_datasets
from repro.gpusim.tracker import PhaseCategory

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))
DATASETS = bench_datasets(full=FULL)
TARGET_RECALL = 0.8


@pytest.mark.parametrize("name", DATASETS)
def test_fig07_breakdown(name, config, cache, datasets, emit, benchmark):
    dataset = datasets[name]
    graph = cache.nsw_graph(dataset, config.build_params())

    ganns_curve = sweep_ganns(graph, dataset, config.k,
                              config.ganns_settings, keep_reports=True)
    song_curve = sweep_song(graph, dataset, config.k,
                            config.song_settings, keep_reports=True)
    ganns_point = closest_point(ganns_curve, TARGET_RECALL)
    song_point = closest_point(song_curve, TARGET_RECALL)

    rows = []
    for label, point in (("ganns", ganns_point), ("song", song_point)):
        seconds = point.report.category_seconds()
        distance = seconds.get(PhaseCategory.DISTANCE, 0.0)
        structure = seconds.get(PhaseCategory.STRUCTURE, 0.0)
        total = distance + structure
        rows.append([label, point.recall, distance * 1e3, structure * 1e3,
                     structure / total if total else 0.0])

    table = format_table(
        ["algo", "recall", "distance (ms)", "structure (ms)",
         "structure share"], rows,
        title=f"Figure 7 [{name}]: time breakdown near recall "
              f"{TARGET_RECALL}")
    lo, hi = PAPER_FIG7_SONG_STRUCTURE_SHARE
    song_share = rows[1][4]
    ganns_share = rows[0][4]
    table += (f"\nSONG structure share {song_share:.2f} "
              f"(paper band: {lo:.2f}-{hi:.2f}+); "
              f"GANNS structure share {ganns_share:.2f}")
    emit(f"fig07_{name}", table)

    assert song_share > 0.5, "SONG must be structure-dominated"
    assert ganns_share < song_share, \
        "GANNS must shift the balance toward distance computation"

    from repro.baselines.song import SongParams, song_search
    benchmark.pedantic(
        song_search, args=(graph, dataset.points, dataset.queries[:100],
                           SongParams(k=config.k,
                                      pq_bound=song_point.setting[0])),
        rounds=1, iterations=1)
