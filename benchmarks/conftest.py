"""Shared benchmark fixtures.

Every benchmark prints its paper-vs-measured table to stdout *and* writes
it to ``benchmarks/results/<name>.txt``, so a full ``pytest benchmarks/
--benchmark-only`` run leaves a browsable record behind (EXPERIMENTS.md is
assembled from those files).

Built graphs and simulated construction timings are cached on disk under
``.bench_cache/`` so re-runs and benches that share workloads don't pay
twice.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.bench.runner import GraphCache
from repro.bench.workloads import DEFAULT_CONFIG, construction_device
from repro.datasets.catalog import Dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def config():
    """The shared benchmark sizing configuration."""
    return DEFAULT_CONFIG


@pytest.fixture(scope="session")
def cache():
    """Disk-backed graph/timing cache shared by all benchmarks."""
    return GraphCache()


@pytest.fixture(scope="session")
def datasets(config) -> Dict[str, Dataset]:
    """Lazily materialised datasets, shared across benchmark files."""
    loaded: Dict[str, Dataset] = {}

    class _Loader(dict):
        def __missing__(self, name: str) -> Dataset:
            dataset = config.load(name)
            self[name] = dataset
            return dataset

    return _Loader(loaded)


@pytest.fixture(scope="session")
def emit():
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def cdevice():
    """Scaled device used by every construction benchmark."""
    return construction_device()
