"""Ablation: serving latency vs throughput across micro-batch windows.

This is not a paper figure — the paper benchmarks offline batched
throughput only (Section V).  It is an ablation of the online serving
layer built on top of the same kernels; see docs/serving.md.

The serving engine's ``max_wait`` knob trades latency for batch size:
a wider window accumulates more queries per kernel launch (higher
device efficiency, fewer launches) at the cost of queue wait on every
request.  This bench replays one Poisson trace at a fixed arrival rate
under a sweep of windows and prints the trade-off curve, plus one row
with the result cache enabled to show what query repetition buys.

The cache-off sweep isolates the scheduler: every request must ride a
dispatched batch, so mean batch size and queue wait are pure functions
of the window.
"""

from __future__ import annotations

import pytest

from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.bench.report import format_table
from repro.core.params import SearchParams
from repro.datasets.catalog import load_dataset
from repro.serve import BatchPolicy, ResultCache, ServeEngine, synthetic_trace

WINDOWS_MS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
N_REQUESTS = 4000
MEAN_QPS = 50_000.0
MAX_BATCH = 512


@pytest.fixture(scope="module")
def serving_setup():
    dataset = load_dataset("sift1m", n_points=1500, n_queries=400)
    graph = build_nsw_cpu(dataset.points, d_min=8, d_max=16).graph
    params = SearchParams(k=10, l_n=64)
    trace = synthetic_trace(dataset.queries, N_REQUESTS,
                            mean_qps=MEAN_QPS, repeat_fraction=0.3,
                            seed=11)
    return dataset, graph, params, trace


def _replay(setup, window_ms: float, cache_entries: int):
    dataset, graph, params, trace = setup
    policy = BatchPolicy(max_batch=MAX_BATCH,
                         max_wait_seconds=window_ms * 1e-3,
                         max_queue=16_384)
    cache = ResultCache(cache_entries) if cache_entries else None
    engine = ServeEngine(graph, dataset.points, params, policy=policy,
                         cache=cache)
    return engine.replay(trace)


def test_serving_latency_vs_window(serving_setup, emit):
    rows = []
    reports = []
    for window_ms in WINDOWS_MS:
        report = _replay(serving_setup, window_ms, cache_entries=0)
        reports.append(report)
        rows.append([f"{window_ms:g} ms", report.n_batches,
                     report.mean_batch_size,
                     report.p50_latency * 1e3, report.p95_latency * 1e3,
                     report.p99_latency * 1e3, report.qps,
                     f"{report.gpu_utilisation:.1%}"])
    cached = _replay(serving_setup, 1.0, cache_entries=4096)
    rows.append(["1 ms + cache", cached.n_batches,
                 cached.mean_batch_size,
                 cached.p50_latency * 1e3, cached.p95_latency * 1e3,
                 cached.p99_latency * 1e3, cached.qps,
                 f"{cached.gpu_utilisation:.1%}"])

    emit("serving_latency", format_table(
        ["window", "batches", "mean batch", "p50 ms", "p95 ms",
         "p99 ms", "queries/s", "gpu busy"],
        rows,
        title=f"Serving latency vs batch window "
              f"({N_REQUESTS} requests @ {MEAN_QPS:,.0f}/s, "
              f"max_batch={MAX_BATCH})"))

    # Wider windows aggregate more queries per dispatch...
    assert reports[-1].mean_batch_size > reports[0].mean_batch_size
    # ...at the price of queue latency on the tail (compared against the
    # narrowest *stable* window — see below for the narrowest one).
    assert reports[-1].p95_latency > reports[1].p95_latency
    # The narrowest window under-batches: per-launch overhead dominates,
    # the device saturates and queueing collapses the latency profile —
    # the reason micro-batching exists at all.
    assert reports[0].gpu_utilisation > 0.95
    assert reports[0].p95_latency > reports[-1].p95_latency
    # Every configuration serves every request (no overload here).
    assert all(r.n_rejected == 0 for r in reports)
    # The cache strictly reduces dispatched work on a repeating trace.
    assert cached.served_queries == reports[2].served_queries
    assert sum(cached.batch_sizes) < sum(reports[2].batch_sizes)
