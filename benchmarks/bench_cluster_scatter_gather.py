"""Scalability — sharded scatter-gather serving vs shard count.

GGNN-style multi-GPU serving splits the index across shards and pays a
coordinator-side merge for every query; the cluster engine makes that
trade measurable on the simulated clock.  This sweep replays one fixed
trace through 1/2/4/8-shard topologies (2 replicas each) and tabulates:

- cluster p99 vs the slowest shard's p99 (tail amplification — the
  scatter-gather waits on the stragglers),
- merge overhead in cycles and milliseconds (grows with shard count:
  ``n_shards - 1`` pairwise bitonic merges per query),
- answer quality against exact brute force: the merge is exact over
  the per-shard candidate runs, and each shard's beam search covers a
  *smaller* sub-corpus more thoroughly at fixed ``l_n``, so recall
  must never degrade as the corpus is split (the GGNN sharding
  effect).
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import format_table
from repro.cluster import ClusterEngine
from repro.core.params import SearchParams
from repro.datasets.ground_truth import exact_knn
from repro.metrics.recall import recall_per_query
from repro.serve import synthetic_trace

SHARD_COUNTS = (1, 2, 4, 8)
N_REPLICAS = 2
N_REQUESTS = 300
MEAN_QPS = 15_000.0


def test_cluster_scatter_gather_scalability(config, datasets, emit,
                                            benchmark):
    dataset = datasets["sift1m"]
    params = SearchParams(k=config.k, l_n=64)
    trace = synthetic_trace(dataset.queries, N_REQUESTS,
                            mean_qps=MEAN_QPS, seed=9)
    truth = dataset.ground_truth(config.k)
    pool_row = {dataset.queries[i].tobytes(): i
                for i in range(len(dataset.queries))}

    rows = []
    recalls = []
    for n_shards in SHARD_COUNTS:
        engine = ClusterEngine(dataset.points, n_shards=n_shards,
                               n_replicas=N_REPLICAS, params=params,
                               metric=dataset.metric_name)
        report = engine.replay(trace)
        assert report.n_served == N_REQUESTS
        returned = np.full((len(dataset.queries), config.k), -1,
                           dtype=np.int64)
        for pos, outcome in enumerate(report.outcomes):
            row = pool_row[trace[pos].queries[0].tobytes()]
            returned[row] = outcome.ids[0]
        answered = (returned >= 0).any(axis=1)
        recall = float(recall_per_query(
            returned[answered], truth[answered]).mean())
        recalls.append(recall)
        rows.append([
            f"{n_shards}x{N_REPLICAS}",
            report.p50_latency * 1e3,
            report.p99_latency * 1e3,
            max(report.shard_p99s(), default=0.0) * 1e3,
            report.tail_amplification,
            report.merge_overhead_cycles / max(report.n_requests, 1),
            report.merge_overhead_seconds * 1e3,
            recall,
        ])

    table = format_table(
        ["topology", "p50 (ms)", "p99 (ms)", "slowest shard p99 (ms)",
         "tail amp", "merge cyc/req", "merge (ms)", "recall"], rows,
        title="Scalability: scatter-gather serving vs shard count "
              "(sift1m)")
    table += ("\nthe exact merge never loses candidates — sharding "
              "only sharpens per-shard search at fixed l_n, while "
              "merge overhead grows with the shard count")
    emit("cluster_scatter_gather", table)

    # The merge is exact over per-shard runs, and smaller shards are
    # searched more thoroughly at fixed l_n: recall never degrades.
    assert all(a <= b + 1e-9 for a, b in zip(recalls, recalls[1:]))
    # Merge overhead must grow monotonically with the shard count.
    merge_cycles = [row[5] for row in rows]
    assert all(a <= b for a, b in zip(merge_cycles, merge_cycles[1:]))

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
