"""Figure 6 — throughput (queries/s) vs recall, GANNS vs SONG, k = 10.

For each dataset stand-in: build the NSW graph (GGraphCon, d_max=32,
d_min=16 — the paper's defaults), sweep each algorithm's accuracy knob,
print the two curves, and compare the GANNS-over-SONG speedup at recall
0.8 against the paper's band.  On the SIFT1M stand-in the absolute GANNS
throughput at recall ~0.795 is also compared with the paper's quoted
458.5k queries/s (the calibration point).

Run the full ten-dataset version with ``REPRO_BENCH_FULL=1``.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.figures import PAPER_FIG6
from repro.bench.report import format_table, speedup_band_note
from repro.bench.runner import qps_at_recall, sweep_ganns, sweep_song
from repro.bench.workloads import bench_datasets

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))
DATASETS = bench_datasets(full=FULL)
TARGET_RECALL = 0.8


@pytest.mark.parametrize("name", DATASETS)
def test_fig06_throughput_vs_recall(name, config, cache, datasets, emit,
                                    benchmark):
    dataset = datasets[name]
    params = config.build_params()
    graph = cache.nsw_graph(dataset, params)

    ganns_curve = sweep_ganns(graph, dataset, config.k,
                              config.ganns_settings)
    song_curve = sweep_song(graph, dataset, config.k, config.song_settings)

    rows = []
    for point in ganns_curve:
        rows.append(["ganns", f"l_n={point.setting[0]} e={point.setting[1]}",
                     point.recall, point.qps])
    for point in song_curve:
        rows.append(["song", f"pq={point.setting[0]}", point.recall,
                     point.qps])

    ganns_at = qps_at_recall(ganns_curve, TARGET_RECALL)
    song_at = qps_at_recall(song_curve, TARGET_RECALL)
    speedup = ganns_at / song_at if song_at else float("inf")
    paper = PAPER_FIG6[name]

    lines = [format_table(
        ["algo", "setting", "recall", "queries/s"], rows,
        title=f"Figure 6 [{name}]: throughput vs recall "
              f"(k={config.k}, n={dataset.n_points})")]
    note = speedup_band_note(paper.speedup_low - 2.0,
                             paper.speedup_high + 2.0, speedup)
    lines.append(
        f"GANNS/SONG speedup @ recall {TARGET_RECALL}: {speedup:.2f}x "
        f"({note}; paper reports "
        f"~{paper.speedup_low:g}-{paper.speedup_high:g}x)")
    if paper.ganns_qps:
        measured = qps_at_recall(ganns_curve, paper.recall)
        lines.append(
            f"GANNS throughput @ recall {paper.recall}: {measured:,.0f} "
            f"queries/s (paper: {paper.ganns_qps:,.0f})")
    emit(f"fig06_{name}", "\n".join(lines))

    assert speedup > 1.0, "GANNS must outperform SONG at matched recall"
    best_recall = max(p.recall for p in ganns_curve)
    assert best_recall > 0.7, "sweep must reach a usable recall range"

    # pytest-benchmark hook: time one mid-budget GANNS batch.
    l_n, e = config.ganns_settings[2]
    from repro.core.ganns import ganns_search
    from repro.core.params import SearchParams
    benchmark.pedantic(
        ganns_search, args=(graph, dataset.points, dataset.queries,
                            SearchParams(k=config.k, l_n=l_n, e=e)),
        rounds=1, iterations=1)
