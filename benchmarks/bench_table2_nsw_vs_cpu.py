"""Table II — NSW construction vs single-thread CPU, all ten datasets.

For each Table I stand-in: modeled single-thread CPU construction time
(GraphCon_NSW), simulated GGraphCon_GANNS and GGraphCon_SONG times, and
their speedups, printed next to the paper's reported values.  Absolute
seconds differ (the stand-ins are smaller); the shape to reproduce is the
speedup structure — GGC_GANNS in the tens-x over CPU on every dataset and
consistently ahead of GGC_SONG.
"""

from __future__ import annotations

from repro.bench.figures import PAPER_TABLE2, PAPER_TABLE2_SPEEDUP_BAND
from repro.bench.report import format_table
from repro.bench.workloads import ALL_DATASETS


def test_table2_nsw_construction(config, cache, datasets, emit, benchmark,
                                  cdevice):
    params = config.build_params()
    rows = []
    ganns_speedups = {}
    for name in ALL_DATASETS:
        dataset = datasets[name]
        cpu = cache.construction_timing(dataset, params, "cpu-nsw",
                                        device=cdevice)
        ganns = cache.construction_timing(dataset, params, "ggc-ganns",
                                      device=cdevice)
        song = cache.construction_timing(dataset, params, "ggc-song",
                                     device=cdevice)
        ganns_speedup = cpu.seconds / ganns.seconds
        song_speedup = cpu.seconds / song.seconds
        ganns_speedups[name] = ganns_speedup
        paper = PAPER_TABLE2[name]
        rows.append([
            name, dataset.n_points,
            cpu.seconds,
            f"{ganns.seconds:.2f} ({ganns_speedup:.0f}x)",
            f"{song.seconds:.2f} ({song_speedup:.0f}x)",
            f"{paper['cpu']:.0f}s",
            f"{paper['cpu'] / paper['ggc_ganns']:.0f}x",
            f"{paper['cpu'] / paper['ggc_song']:.0f}x",
        ])

    table = format_table(
        ["dataset", "n", "cpu (s)", "ggc_ganns", "ggc_song",
         "paper cpu", "paper ganns", "paper song"], rows,
        title="Table II: NSW construction vs single-thread CPU")
    lo, hi = PAPER_TABLE2_SPEEDUP_BAND
    measured_lo = min(ganns_speedups.values())
    measured_hi = max(ganns_speedups.values())
    table += (f"\nGGC_GANNS speedup range: {measured_lo:.0f}-"
              f"{measured_hi:.0f}x (paper: {lo:g}-{hi:g}x across datasets,"
              f" 40-50x on most)")
    emit("table2_nsw", table)

    for name, speedup in ganns_speedups.items():
        assert speedup > 3.0, f"{name}: GPU construction must win clearly"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
